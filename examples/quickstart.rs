//! Quickstart: stand up the repository, load one catalog file, query it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use skycat::gen::{generate_file, GenConfig};
use skydb::expr::{CmpOp, Expr};
use skydb::{DbConfig, Key, Server, Value};
use skyloader::{load_catalog_file, LoaderConfig};

fn main() {
    // 1. A database server with the paper's environment (8 CPUs, GigE,
    //    three RAID devices). TimeScale::ZERO: model costs are accounted
    //    but not slept, so this example runs instantly.
    let server = Server::start(DbConfig::paper(skysim::time::TimeScale::ZERO));

    // 2. The 23-table Palomar-Quest schema + static dimension tables +
    //    tonight's observation header.
    skycat::create_all(server.engine()).expect("create schema");
    skycat::seed_static(server.engine()).expect("seed dimensions");
    skycat::seed_observation(server.engine(), 1, 100).expect("seed observation");
    println!("repository ready: {} tables", server.engine().table_count());

    // 3. A synthetic catalog file (we do not have the proprietary survey
    //    data; the generator produces the same interleaved, tagged format).
    let file = generate_file(&GenConfig::small(42, 100), 0);
    println!(
        "catalog file {}: {} lines, {} bytes",
        file.name,
        file.line_count(),
        file.byte_len()
    );

    // 4. Bulk load it with the paper's production settings: batch-size 40,
    //    array-size 1000, one commit per file.
    let session = server.connect();
    let report = load_catalog_file(&session, &LoaderConfig::paper(), &file).expect("load");
    println!(
        "loaded {} rows in {} batched calls, {} commit(s), {} bulk-loading cycles",
        report.rows_loaded, report.batch_calls, report.commits, report.cycles
    );
    for (table, n) in &report.loaded_by_table {
        println!("  {table:<24} {n:>6}");
    }

    // 5. Query: bright objects via a filtered scan…
    let engine = server.engine();
    let objects = engine.table_id("objects").expect("objects table");
    let schema = engine.schema(objects);
    let mag_col = schema.column_index("mag_auto").expect("mag_auto");
    let bright = engine
        .scan_where(objects, Some(&Expr::cmp(mag_col, CmpOp::Lt, 16.0f64)))
        .expect("scan");
    println!("objects brighter than mag 16: {}", bright.len());

    // …and a point lookup by primary key.
    if let Some(Value::Int(first_id)) = bright.first().map(|r| r[0].clone()) {
        let row = engine
            .pk_get(objects, &Key(vec![Value::Int(first_id)]))
            .expect("lookup")
            .expect("row exists");
        println!(
            "object {first_id}: ra={} dec={} htmid={}",
            row[2], row[3], row[4]
        );
    }

    // 6. What did it cost on the modeled 2005 hardware?
    let cost = skyloader::ModeledCost::measure(&server, report.client_paging);
    println!(
        "modeled cost: network {:.1} ms, server CPU {:.1} ms, disk {:.1} ms (total {:.1} ms)",
        cost.network_us as f64 / 1000.0,
        cost.server_cpu_us as f64 / 1000.0,
        cost.disk_us as f64 / 1000.0,
        cost.total().as_secs_f64() * 1000.0
    );
}
