//! A production night: 28 skewed catalog files loaded by 5 parallel
//! loaders with on-the-fly assignment and the full §4.5 tuning —
//! secondary indexes dropped during the load and rebuilt afterwards.
//!
//! ```sh
//! cargo run --release --example nightly_ingest
//! ```

use std::sync::Arc;

use skycat::gen::{aggregate_expected, generate_observation, GenConfig};
use skydb::{DbConfig, Server};
use skyloader::{load_night, LoaderConfig, TuningGuideline};
use skysim::cluster::AssignmentPolicy;
use skysim::time::TimeScale;

fn main() {
    // Apply the paper's tuning guidelines (§4.5).
    println!("tuning checklist:");
    for g in skyloader::tune::TUNING_GUIDELINES {
        println!("  §{}: {}", g.section(), g.describe());
    }
    println!();

    let server: Arc<Server> = Server::start(DbConfig::paper(TimeScale::ZERO));
    skycat::create_all(server.engine()).expect("schema");
    skycat::seed_static(server.engine()).expect("dimensions");
    skycat::seed_observation(server.engine(), 1, 100).expect("observation");

    // §4.5.1: during the catch-up load, keep only the htmid index ("some
    // very selective indices that are crucial to the scientific research
    // queries ... have been maintained during the intensive data loading").
    server
        .engine()
        .create_index("objects", "idx_objects_htmid", &["htmid"], false)
        .expect("htmid index");
    let _ = TuningGuideline::DelayIndexBuilding; // composite indexes come later

    // One observation: 28 catalog files of varying size (§4.4).
    let files = generate_observation(&GenConfig::night(2005, 100).with_error_rate(0.01));
    let expected = aggregate_expected(&files);
    println!(
        "observation: {} files, {} rows ({} corrupt objects injected)",
        files.len(),
        expected.total_emitted(),
        expected.corrupted_objects
    );

    // Load with 5 parallel loaders — the paper's production choice.
    let report = load_night(
        &server,
        &files,
        &LoaderConfig::paper(),
        5,
        AssignmentPolicy::Dynamic,
    )
    .expect("night load succeeds");
    println!(
        "night loaded: {} rows committed, {} skipped, wall {:.2?}, node imbalance {:.2}",
        report.rows_loaded(),
        report.rows_skipped(),
        report.makespan,
        report.node_imbalance
    );
    for (table, n) in report.loaded_by_table() {
        println!("  {table:<24} {n:>7}");
    }

    // Verify against the generator's exact expectations.
    let mut mismatches = 0;
    for (table, expect) in &expected.loadable {
        let tid = server.engine().table_id(table).expect("table");
        let got = server.engine().row_count(tid);
        if got != *expect {
            println!("MISMATCH {table}: expected {expect}, got {got}");
            mismatches += 1;
        }
    }
    assert_eq!(mismatches, 0, "row counts must match the generator exactly");
    println!("row counts verified against the generator: exact match");

    // §4.5.1 epilogue: the catch-up phase is over — rebuild the composite
    // photometry index that was too expensive to maintain during loading.
    server
        .engine()
        .create_index(
            "objects",
            "idx_objects_photo",
            &["ra", "dec", "flux"],
            false,
        )
        .expect("rebuild composite index");
    println!(
        "secondary indexes now present on objects: {:?}",
        server.engine().index_names("objects").expect("names")
    );

    let stats = server.engine().stats().snapshot();
    println!(
        "engine: {} batch calls, {} commits, {} lock waits, {} FK violations caught",
        stats.batch_calls,
        stats.commits,
        server.engine().lock_waits(),
        stats.fk_violations
    );
}
