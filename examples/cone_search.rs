//! Why the htmid index is worth maintaining during the load (§4.5.1):
//! cone searches — "find every object within θ of (ra, dec)" — become a
//! handful of B-tree range scans over HTM trixel id ranges.
//!
//! ```sh
//! cargo run --release --example cone_search
//! ```

use skycat::gen::{generate_file, GenConfig};
use skydb::{DbConfig, Key, Server, Value};
use skyhtm::{cone_cover, separation_deg, Cone, CATALOG_DEPTH};
use skyloader::{load_catalog_file, LoaderConfig};
use skysim::time::TimeScale;

fn main() {
    let server = Server::start(DbConfig::paper(TimeScale::ZERO));
    skycat::create_all(server.engine()).expect("schema");
    skycat::seed_static(server.engine()).expect("dimensions");
    skycat::seed_observation(server.engine(), 1, 100).expect("observation");

    // The selective index the paper keeps during loading.
    server
        .engine()
        .create_index("objects", "idx_objects_htmid", &["htmid"], false)
        .expect("htmid index");

    // Load a generous file so the cone has something to find.
    let file = generate_file(
        &GenConfig::night(33, 100)
            .with_frames_per_ccd(8)
            .with_objects_per_frame(80),
        0,
    );
    let session = server.connect();
    let report = load_catalog_file(&session, &LoaderConfig::paper(), &file).expect("load");
    println!(
        "loaded {} rows ({} objects)",
        report.rows_loaded, report.loaded_by_table["objects"]
    );

    // The generated file covers a stripe near ra 150, dec -1.2..1.2; aim
    // the cone into it.
    let (ra0, dec0, radius_arcmin) = (150.25, 0.0, 12.0);
    let cone = Cone::from_radec_arcmin(ra0, dec0, radius_arcmin);
    let ranges = cone_cover(&cone, CATALOG_DEPTH);
    println!(
        "cone ({ra0}, {dec0}) r={radius_arcmin}' covers {} htmid ranges at depth {}",
        ranges.len(),
        CATALOG_DEPTH
    );

    // Index path: range scans over the cover, then an exact distance check
    // on the candidates ("filter-and-refine").
    let engine = server.engine();
    let mut candidates = 0usize;
    let mut hits: Vec<(i64, f64, f64)> = Vec::new();
    for (lo, hi) in &ranges {
        let rows = engine
            .index_range(
                "objects",
                "idx_objects_htmid",
                &Key(vec![Value::Int(*lo as i64)]),
                &Key(vec![Value::Int(*hi as i64)]),
            )
            .expect("range scan");
        candidates += rows.len();
        for row in rows {
            let (Value::Int(id), Value::Float(ra), Value::Float(dec)) =
                (row[0].clone(), row[2].clone(), row[3].clone())
            else {
                continue;
            };
            if separation_deg(ra0, dec0, ra, dec) * 60.0 <= radius_arcmin {
                hits.push((id, ra, dec));
            }
        }
    }
    println!(
        "index path: {candidates} candidates from the cover, {} true matches",
        hits.len()
    );

    // Cross-check against a brute-force scan of every object.
    let objects = engine.table_id("objects").expect("objects");
    let all = engine.scan_where(objects, None).expect("scan");
    let brute: Vec<i64> = all
        .iter()
        .filter_map(|row| {
            let (Value::Int(id), Value::Float(ra), Value::Float(dec)) =
                (row[0].clone(), row[2].clone(), row[3].clone())
            else {
                return None;
            };
            (separation_deg(ra0, dec0, ra, dec) * 60.0 <= radius_arcmin).then_some(id)
        })
        .collect();
    assert_eq!(
        {
            let mut a: Vec<i64> = hits.iter().map(|(id, _, _)| *id).collect();
            a.sort_unstable();
            a
        },
        {
            let mut b = brute.clone();
            b.sort_unstable();
            b
        },
        "index cone search must agree with the brute-force scan"
    );
    println!(
        "verified against brute force over {} objects: exact agreement",
        all.len()
    );
    for (id, ra, dec) in hits.iter().take(5) {
        println!(
            "  object {id}: ra={ra:.4} dec={dec:.4} (sep {:.2}')",
            separation_deg(ra0, dec0, *ra, *dec) * 60.0
        );
    }
}
