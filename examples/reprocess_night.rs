//! Pipeline reprocessing: a night was extracted with a buggy pipeline
//! version; re-extract and swap the derived rows — delete the observation's
//! chain (child-before-parent, the mirror of Fig. 2) and bulk load v2.
//!
//! ```sh
//! cargo run --release --example reprocess_night
//! ```

use skycat::gen::{generate_file, GenConfig};
use skydb::{DbConfig, Server};
use skyloader::{load_catalog_file, reprocess_observation, LoaderConfig};
use skysim::time::TimeScale;

fn main() {
    let server = Server::start(DbConfig::paper(TimeScale::ZERO));
    skycat::create_all(server.engine()).expect("schema");
    skycat::seed_static(server.engine()).expect("dimensions");
    skycat::seed_observation(server.engine(), 1, 100).expect("observation");

    // v1 extraction: pipeline bug corrupts 8% of object rows.
    let v1 = generate_file(&GenConfig::night(1999, 100).with_error_rate(0.08), 0);
    let session = server.connect();
    let r1 = load_catalog_file(&session, &LoaderConfig::paper(), &v1).expect("v1 load");
    println!(
        "v1 extraction loaded: {} rows ({} skipped as corrupt — data lost to the bug!)",
        r1.rows_loaded, r1.rows_skipped
    );

    // The pipeline is fixed; the same observation is re-extracted cleanly.
    let v2 = generate_file(&GenConfig::night(1999, 100), 0);
    let (purge, night) = reprocess_observation(
        &server,
        100,
        std::slice::from_ref(&v2),
        &LoaderConfig::paper(),
        2,
    )
    .expect("reprocess");

    println!("\npurged v1 rows (child-before-parent order):");
    for (table, n) in &purge.deleted_by_table {
        if *n > 0 {
            println!("  {table:<24} {n:>7}");
        }
    }
    println!(
        "\nv2 loaded: {} rows, {} skipped",
        night.rows_loaded(),
        night.rows_skipped()
    );

    // Verify the repository now holds exactly the clean extraction.
    for (table, expect) in &v2.expected.loadable {
        let tid = server.engine().table_id(table).expect("table");
        let got = server.engine().row_count(tid);
        assert_eq!(got, *expect, "{table}");
    }
    println!(
        "repository now matches the v2 extraction exactly — {} recovered rows",
        night.rows_loaded() - r1.rows_loaded
    );
}
