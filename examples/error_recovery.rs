//! Error handling and crash recovery, end to end:
//!
//! 1. load a catalog file with 10% corrupted object rows — the Fig. 3
//!    algorithm skips exactly the bad rows and keeps everything else;
//! 2. kill a load mid-file and resume it from the checkpoint journal
//!    without losing or duplicating a single row.
//!
//! ```sh
//! cargo run --example error_recovery
//! ```

use skycat::gen::{generate_file, GenConfig};
use skydb::{DbConfig, Server};
use skyloader::{
    load_catalog_file, load_catalog_text_with_journal, CommitPolicy, LoadJournal, LoaderConfig,
};
use skysim::time::TimeScale;

fn fresh_server() -> std::sync::Arc<Server> {
    let server = Server::start(DbConfig::paper(TimeScale::ZERO));
    skycat::create_all(server.engine()).expect("schema");
    skycat::seed_static(server.engine()).expect("dimensions");
    skycat::seed_observation(server.engine(), 1, 100).expect("observation");
    server
}

fn main() {
    // ---- Part 1: row-level recovery (skip the error row, repack, go on).
    let dirty = generate_file(&GenConfig::night(7, 100).with_error_rate(0.10), 0);
    println!(
        "dirty file: {} rows emitted, {} objects corrupted at generation",
        dirty.expected.total_emitted(),
        dirty.expected.corrupted_objects
    );

    let server = fresh_server();
    let session = server.connect();
    let report = load_catalog_file(&session, &LoaderConfig::paper(), &dirty).expect("load");
    println!(
        "loaded {} rows, skipped {} ({} batched calls)",
        report.rows_loaded, report.rows_skipped, report.batch_calls
    );
    println!("skips by cause:");
    for (kind, n) in &report.skipped_by_kind {
        println!("  {kind:<14} {n:>5}");
    }
    println!("first few skip records:");
    for rec in report.skip_details.iter().take(5) {
        println!("  [{:?}] {}: {}", rec.kind, rec.table, rec.reason);
    }
    assert_eq!(report.rows_loaded, dirty.expected.total_loadable());
    println!("=> exactly the generator-predicted rows survived\n");

    // ---- Part 2: process-level recovery via the checkpoint journal.
    let clean = generate_file(&GenConfig::night(8, 100), 1);
    let server = fresh_server();
    let journal = LoadJournal::new();
    let cfg = LoaderConfig::paper()
        .with_commit_policy(CommitPolicy::PerFlush)
        .with_array_size(500);

    // Simulate a crash: only two thirds of the file "arrives", then the
    // loader dies (its open transaction rolls back).
    let cut: usize = clean
        .text
        .lines()
        .take(clean.line_count() * 2 / 3)
        .map(|l| l.len() + 1)
        .sum();
    let session = server.connect();
    let partial =
        load_catalog_text_with_journal(&session, &cfg, &clean.name, &clean.text[..cut], &journal)
            .expect("partial load");
    session
        .rollback()
        .expect("crash: uncommitted tail discarded");
    println!(
        "crash after {} committed lines (journal) — {} rows were loaded before the crash",
        journal.committed_lines(&clean.name),
        partial.rows_loaded
    );

    // Restart: the journal resumes past the committed prefix.
    let session = server.connect();
    let resumed =
        load_catalog_text_with_journal(&session, &cfg, &clean.name, &clean.text, &journal)
            .expect("resume");
    println!(
        "resume skipped {} committed lines, loaded {} more rows",
        resumed.lines_resumed, resumed.rows_loaded
    );

    for (table, expect) in &clean.expected.loadable {
        let tid = server.engine().table_id(table).expect("table");
        assert_eq!(server.engine().row_count(tid), *expect, "{table}");
    }
    println!("=> final row counts exact: nothing lost, nothing duplicated");
}
