//! §5.2's advice, automated: "experimenting with a variety of batch sizes
//! and choosing one that is close to optimal for a typical data file can
//! improve performance markedly over a random choice."
//!
//! Sweeps batch-size and array-size over a sample catalog file on the
//! modeled 2005 hardware and prints the sweet spots.
//!
//! ```sh
//! cargo run --release --example tuning_sweep
//! ```

use std::sync::Arc;

use skycat::gen::{generate_file, GenConfig};
use skydb::{DbConfig, Server};
use skyloader::{autotune_array_size, autotune_batch_size, LoaderConfig};
use skysim::time::TimeScale;

fn factory() -> Arc<Server> {
    let server = Server::start(DbConfig::paper(TimeScale::ZERO));
    skycat::create_all(server.engine()).expect("schema");
    skycat::seed_static(server.engine()).expect("dimensions");
    skycat::seed_observation(server.engine(), 1, 100).expect("observation");
    server
}

fn main() {
    // A "typical data file" — one CCD group's worth of a night.
    let sample = generate_file(&GenConfig::night(11, 100).with_frames_per_ccd(6), 0);
    println!(
        "sample file: {} rows, {} KB\n",
        sample.expected.total_emitted(),
        sample.byte_len() / 1024
    );

    let base = LoaderConfig::paper();

    println!("batch-size sweep (modeled 2005 cost per candidate):");
    let batches = autotune_batch_size(factory, &sample, &base, &[10, 20, 30, 40, 50, 60]);
    for p in &batches.points {
        let marker = if p.value == batches.best {
            "  <== best"
        } else {
            ""
        };
        println!(
            "  batch {:>3}: {:>9.1} ms{marker}",
            p.value,
            p.modeled_us as f64 / 1000.0
        );
    }
    println!();

    println!("array-size sweep:");
    let arrays = autotune_array_size(
        factory,
        &sample,
        &base.clone().with_batch_size(batches.best),
        &[250, 500, 750, 1000, 1250, 1500],
    );
    for p in &arrays.points {
        let marker = if p.value == arrays.best {
            "  <== best"
        } else {
            ""
        };
        println!(
            "  array {:>4}: {:>9.1} ms{marker}",
            p.value,
            p.modeled_us as f64 / 1000.0
        );
    }
    println!();

    println!(
        "recommended configuration for this data file: batch-size {}, array-size {}",
        batches.best, arrays.best
    );
    println!("(the paper settled on batch-size 40, array-size 1000 for Palomar-Quest)");
}
