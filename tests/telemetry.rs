//! Telemetry-spine properties, end to end through the facade:
//!
//! * registry snapshots are **monotone** over a load — counters never go
//!   backwards, no matter what the night throws at the loader;
//! * the span ring is **bounded** — a chaos soak with kills, stalls and a
//!   crash never grows the ring past its configured capacity, and drops
//!   are accounted rather than silent.

use std::sync::Arc;

use proptest::prelude::*;

use skydb::{DbConfig, Server};
use skyloader::{run_chaos_with_obs, ChaosConfig, LoaderConfig};

fn fresh_server() -> Arc<Server> {
    let server = Server::start(DbConfig::test());
    skycat::create_all(server.engine()).unwrap();
    skycat::seed_static(server.engine()).unwrap();
    skycat::seed_observation(server.engine(), 1, 100).unwrap();
    server
}

/// Every counter in `a` is ≤ its value in `b` (missing in `b` means 0).
fn monotone(
    a: &std::collections::BTreeMap<String, u64>,
    b: &std::collections::BTreeMap<String, u64>,
) -> bool {
    a.iter().all(|(k, v)| b.get(k).copied().unwrap_or(0) >= *v)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    #[test]
    fn snapshots_are_monotone_across_a_load(seed in 0u64..1000, error_rate in 0.0f64..0.1) {
        let files = skycat::gen::generate_observation(
            &skycat::gen::GenConfig::night(seed, 100)
                .with_files(2)
                .with_error_rate(error_rate),
        );
        let server = fresh_server();
        let session = server.connect();
        let mut prev = server.obs_snapshot();
        for f in &files {
            skyloader::load_catalog_file(&session, &LoaderConfig::test(), f).unwrap();
            let cur = server.obs_snapshot();
            prop_assert!(
                monotone(&prev.counters, &cur.counters),
                "a counter went backwards between files"
            );
            prev = cur;
        }
    }

    #[test]
    fn span_ring_stays_bounded_under_chaos(seed in 0u64..64) {
        let obs = Arc::new(skyobs::Registry::with_span_capacity(32));
        let cfg = ChaosConfig {
            seed,
            files: 2,
            nodes: 2,
            quick: true,
            loader_kill_at: Some(1),
            loader_stall_at: Some(2),
            ..ChaosConfig::default()
        };
        let report = run_chaos_with_obs(&cfg, &obs).unwrap();
        prop_assert!(report.exactly_once(), "soak lost rows: {:?}", report.mismatches);
        prop_assert!(
            obs.spans().len() <= obs.span_capacity(),
            "ring holds {} spans over its bound of {}",
            obs.spans().len(),
            obs.span_capacity()
        );
        // A soak this size seals far more than 32 segments, so the ring
        // must have wrapped — and wrapping is accounted, not silent.
        prop_assert!(obs.spans_dropped() > 0, "expected the ring to wrap");
        prop_assert_eq!(obs.spans().len(), obs.span_capacity());
    }
}
