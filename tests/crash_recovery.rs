//! Crash recovery end to end: the loader's checkpoint journal (process
//! level) composed with the engine's WAL redo (database level).

use std::sync::Arc;

use proptest::prelude::*;

use skycat::gen::{generate_file, GenConfig};
use skydb::engine::Engine;
use skydb::fault::{FaultPlan, FaultPlanConfig};
use skydb::{DbConfig, Server};
use skyloader::{
    load_catalog_file, load_catalog_text_with_journal, CommitPolicy, LoadJournal, LoaderConfig,
};

fn fresh_server() -> Arc<Server> {
    let server = Server::start(DbConfig::test());
    skycat::create_all(server.engine()).expect("schema");
    skycat::seed_static(server.engine()).expect("dimensions");
    skycat::seed_observation(server.engine(), 1, 100).expect("observation");
    server
}

/// All schemas needed to re-run DDL during recovery.
fn schemas() -> Vec<skydb::TableSchema> {
    skycat::build_schemas()
}

#[test]
fn wal_recovery_rebuilds_a_loaded_repository() {
    let file = generate_file(&GenConfig::small(301, 100), 0);
    let server = fresh_server();
    let session = server.connect();
    let report = load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();
    assert!(report.rows_loaded > 0);

    // CRASH: drop the server, keeping only the durable log.
    let log = server.engine().durable_log();
    drop(session);
    drop(server);

    // Recover into a fresh engine by replaying committed work.
    let recovered = Engine::recover_from_log(DbConfig::test(), schemas(), &log).unwrap();
    for (table, expect) in &file.expected.loadable {
        let tid = recovered.table_id(table).unwrap();
        assert_eq!(recovered.row_count(tid), *expect, "{table} after WAL redo");
    }
    // Dimension tables came back too.
    let chips = recovered.table_id("ccd_chips").unwrap();
    assert_eq!(recovered.row_count(chips), 112);
}

#[test]
fn wal_recovery_drops_the_uncommitted_tail() {
    let file = generate_file(&GenConfig::small(303, 100), 0);
    let server = fresh_server();
    let session = server.connect();

    // Load with NO commit (PerFile commits only at the very end — emulate
    // a crash before it by never finishing): use the journal-free text
    // loader over a prefix and skip the final commit by loading through a
    // raw session instead. Simplest honest approach: load fully (commits),
    // then start a second transaction and crash inside it.
    load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();
    let stmt = session.prepare_insert("nights").unwrap();
    session
        .execute(
            &stmt,
            vec![
                skydb::Value::Int(999),
                skydb::Value::Float(53_999.0),
                skydb::Value::Null,
                skydb::Value::Null,
            ],
        )
        .unwrap();
    // No commit — crash now.
    let log = server.engine().durable_log();
    drop(session);
    drop(server);

    let recovered = Engine::recover_from_log(DbConfig::test(), schemas(), &log).unwrap();
    let nights = recovered.table_id("nights").unwrap();
    // Only the seeded night survives; the in-flight insert of night 999 is
    // gone.
    assert_eq!(recovered.row_count(nights), 1);
    assert!(recovered
        .pk_get(nights, &skydb::Key(vec![skydb::Value::Int(999)]))
        .unwrap()
        .is_none());
}

#[test]
fn journal_resume_after_crash_then_wal_recovery_is_still_exact() {
    // The full gauntlet: crash mid-load, resume via journal, crash again
    // after completion, recover the database from the WAL. Row counts must
    // be exact at the end of all of it.
    let file = generate_file(&GenConfig::small(305, 100), 0);
    let server = fresh_server();
    let journal = LoadJournal::new();
    let cfg = LoaderConfig::test()
        .with_array_size(150)
        .with_commit_policy(CommitPolicy::PerFlush);

    // Crash 1: half the file arrives.
    let cut: usize = file
        .text
        .lines()
        .take(file.line_count() / 2)
        .map(|l| l.len() + 1)
        .sum();
    let s1 = server.connect();
    load_catalog_text_with_journal(&s1, &cfg, &file.name, &file.text[..cut], &journal).unwrap();
    s1.rollback().unwrap();

    // Resume and finish.
    let s2 = server.connect();
    load_catalog_text_with_journal(&s2, &cfg, &file.name, &file.text, &journal).unwrap();

    // Crash 2: lose the process, recover the database from the log.
    let log = server.engine().durable_log();
    drop((s1, s2));
    drop(server);
    let recovered = Engine::recover_from_log(DbConfig::test(), schemas(), &log).unwrap();

    for (table, expect) in &file.expected.loadable {
        let tid = recovered.table_id(table).unwrap();
        assert_eq!(
            recovered.row_count(tid),
            *expect,
            "{table} after the gauntlet"
        );
    }
}

proptest! {
    // Each case drives a full load through the wire; keep the case count
    // moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For ANY seed and ANY commit ordinal the crash-on-flush fault tears,
    /// recovery must replay the durable log to a state consistent with the
    /// checkpoint journal, and a journaled resume must finish the file
    /// with zero lost and zero duplicated rows.
    #[test]
    fn torn_commit_flush_recovers_consistent_and_resumes_exactly_once(
        seed in 1u64..500,
        crash_at in 1u64..8,
    ) {
        let file = generate_file(&GenConfig::small(seed, 100), 0);
        let server = fresh_server();
        let journal = LoadJournal::new();
        let cfg = LoaderConfig::test()
            .with_array_size(150)
            .with_commit_policy(CommitPolicy::PerFlush);
        server.set_fault_plan(Some(FaultPlan::new(
            FaultPlanConfig::new(seed).with_crash_on_flush(crash_at),
        )));

        // Drive the raw loader (no retry layer): the torn commit surfaces
        // as an error, exactly as a real loader process would see it.
        let s1 = server.connect();
        let first = load_catalog_text_with_journal(&s1, &cfg, &file.name, &file.text, &journal);
        if first.is_err() {
            assert!(server.is_crashed(), "load failed but the server is up");
        }
        let committed_before = journal.committed_lines(&file.name);

        // CRASH: keep only the durable log; the torn tail must be dropped.
        let log = server.engine().durable_log();
        drop(s1);
        drop(server);
        let recovered = Engine::recover_from_log(DbConfig::test(), schemas(), &log).unwrap();
        let server2 = Server::with_engine(recovered);

        // Resume on the recovered server and finish the file. If the
        // journal ran ahead of the durable state, rows would be lost; if
        // it fell behind, re-inserts would surface as PK-duplicate skips.
        // Either way the exact per-table counts below would break.
        let s2 = server2.connect();
        let resumed =
            load_catalog_text_with_journal(&s2, &cfg, &file.name, &file.text, &journal).unwrap();
        assert_eq!(resumed.lines_resumed, committed_before);

        // Exactly once, to the row, on every table.
        for (table, expect) in &file.expected.loadable {
            let tid = server2.engine().table_id(table).unwrap();
            assert_eq!(
                server2.engine().row_count(tid),
                *expect,
                "{table} after torn-write recovery + resume"
            );
        }
    }
}

#[test]
fn journal_survives_disk_roundtrip_mid_night() {
    let dir = std::env::temp_dir().join(format!("skyloader-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("night.journal");

    let file = generate_file(&GenConfig::small(307, 100), 0);
    let server = fresh_server();
    let cfg = LoaderConfig::test()
        .with_array_size(100)
        .with_commit_policy(CommitPolicy::PerFlush);

    let journal = LoadJournal::new();
    let cut: usize = file
        .text
        .lines()
        .take(file.line_count() / 3)
        .map(|l| l.len() + 1)
        .sum();
    let s = server.connect();
    load_catalog_text_with_journal(&s, &cfg, &file.name, &file.text[..cut], &journal).unwrap();
    s.rollback().unwrap();
    journal.save(&path).unwrap();

    // "New process": reload the journal from disk and resume.
    let journal2 = LoadJournal::load(&path).unwrap();
    assert_eq!(
        journal2.committed_lines(&file.name),
        journal.committed_lines(&file.name)
    );
    let committed_before_resume = journal2.committed_lines(&file.name);
    let s2 = server.connect();
    let report =
        load_catalog_text_with_journal(&s2, &cfg, &file.name, &file.text, &journal2).unwrap();
    assert_eq!(report.lines_resumed, committed_before_resume);

    for (table, expect) in &file.expected.loadable {
        let tid = server.engine().table_id(table).unwrap();
        assert_eq!(server.engine().row_count(tid), *expect, "{table}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
