//! Crash recovery end to end: the loader's checkpoint journal (process
//! level) composed with the engine's WAL redo (database level).

use std::sync::Arc;

use proptest::prelude::*;

use skycat::gen::{generate_file, GenConfig};
use skydb::engine::Engine;
use skydb::fault::{FaultPlan, FaultPlanConfig};
use skydb::{DbConfig, Server};
use skyloader::{
    load_catalog_file, load_catalog_text_with_journal, CommitPolicy, LoadJournal, LoaderConfig,
};

fn fresh_server() -> Arc<Server> {
    let server = Server::start(DbConfig::test());
    skycat::create_all(server.engine()).expect("schema");
    skycat::seed_static(server.engine()).expect("dimensions");
    skycat::seed_observation(server.engine(), 1, 100).expect("observation");
    server
}

/// All schemas needed to re-run DDL during recovery.
fn schemas() -> Vec<skydb::TableSchema> {
    skycat::build_schemas()
}

#[test]
fn wal_recovery_rebuilds_a_loaded_repository() {
    let file = generate_file(&GenConfig::small(301, 100), 0);
    let server = fresh_server();
    let session = server.connect();
    let report = load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();
    assert!(report.rows_loaded > 0);

    // CRASH: drop the server, keeping only the durable log.
    let log = server.engine().durable_log();
    drop(session);
    drop(server);

    // Recover into a fresh engine by replaying committed work.
    let recovered = Engine::recover_from_log(DbConfig::test(), schemas(), &log).unwrap();
    for (table, expect) in &file.expected.loadable {
        let tid = recovered.table_id(table).unwrap();
        assert_eq!(recovered.row_count(tid), *expect, "{table} after WAL redo");
    }
    // Dimension tables came back too.
    let chips = recovered.table_id("ccd_chips").unwrap();
    assert_eq!(recovered.row_count(chips), 112);
}

#[test]
fn wal_recovery_drops_the_uncommitted_tail() {
    let file = generate_file(&GenConfig::small(303, 100), 0);
    let server = fresh_server();
    let session = server.connect();

    // Load with NO commit (PerFile commits only at the very end — emulate
    // a crash before it by never finishing): use the journal-free text
    // loader over a prefix and skip the final commit by loading through a
    // raw session instead. Simplest honest approach: load fully (commits),
    // then start a second transaction and crash inside it.
    load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();
    let stmt = session.prepare_insert("nights").unwrap();
    session
        .execute(
            &stmt,
            vec![
                skydb::Value::Int(999),
                skydb::Value::Float(53_999.0),
                skydb::Value::Null,
                skydb::Value::Null,
            ],
        )
        .unwrap();
    // No commit — crash now.
    let log = server.engine().durable_log();
    drop(session);
    drop(server);

    let recovered = Engine::recover_from_log(DbConfig::test(), schemas(), &log).unwrap();
    let nights = recovered.table_id("nights").unwrap();
    // Only the seeded night survives; the in-flight insert of night 999 is
    // gone.
    assert_eq!(recovered.row_count(nights), 1);
    assert!(recovered
        .pk_get(nights, &skydb::Key(vec![skydb::Value::Int(999)]))
        .unwrap()
        .is_none());
}

#[test]
fn journal_resume_after_crash_then_wal_recovery_is_still_exact() {
    // The full gauntlet: crash mid-load, resume via journal, crash again
    // after completion, recover the database from the WAL. Row counts must
    // be exact at the end of all of it.
    let file = generate_file(&GenConfig::small(305, 100), 0);
    let server = fresh_server();
    let journal = LoadJournal::new();
    let cfg = LoaderConfig::test()
        .with_array_size(150)
        .with_commit_policy(CommitPolicy::PerFlush);

    // Crash 1: half the file arrives.
    let cut: usize = file
        .text
        .lines()
        .take(file.line_count() / 2)
        .map(|l| l.len() + 1)
        .sum();
    let s1 = server.connect();
    load_catalog_text_with_journal(&s1, &cfg, &file.name, &file.text[..cut], &journal).unwrap();
    s1.rollback().unwrap();

    // Resume and finish.
    let s2 = server.connect();
    load_catalog_text_with_journal(&s2, &cfg, &file.name, &file.text, &journal).unwrap();

    // Crash 2: lose the process, recover the database from the log.
    let log = server.engine().durable_log();
    drop((s1, s2));
    drop(server);
    let recovered = Engine::recover_from_log(DbConfig::test(), schemas(), &log).unwrap();

    for (table, expect) in &file.expected.loadable {
        let tid = recovered.table_id(table).unwrap();
        assert_eq!(
            recovered.row_count(tid),
            *expect,
            "{table} after the gauntlet"
        );
    }
}

proptest! {
    // Each case drives a full load through the wire; keep the case count
    // moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For ANY seed and ANY commit ordinal the crash-on-flush fault tears,
    /// recovery must replay the durable log to a state consistent with the
    /// checkpoint journal, and a journaled resume must finish the file
    /// with zero lost and zero duplicated rows.
    #[test]
    fn torn_commit_flush_recovers_consistent_and_resumes_exactly_once(
        seed in 1u64..500,
        crash_at in 1u64..8,
    ) {
        let file = generate_file(&GenConfig::small(seed, 100), 0);
        let server = fresh_server();
        let journal = LoadJournal::new();
        let cfg = LoaderConfig::test()
            .with_array_size(150)
            .with_commit_policy(CommitPolicy::PerFlush);
        server.set_fault_plan(Some(FaultPlan::new(
            FaultPlanConfig::new(seed).with_crash_on_flush(crash_at),
        )));

        // Drive the raw loader (no retry layer): the torn commit surfaces
        // as an error, exactly as a real loader process would see it.
        let s1 = server.connect();
        let first = load_catalog_text_with_journal(&s1, &cfg, &file.name, &file.text, &journal);
        if first.is_err() {
            assert!(server.is_crashed(), "load failed but the server is up");
        }
        let committed_before = journal.committed_lines(&file.name);

        // CRASH: keep only the durable log; the torn tail must be dropped.
        let log = server.engine().durable_log();
        drop(s1);
        drop(server);
        let recovered = Engine::recover_from_log(DbConfig::test(), schemas(), &log).unwrap();
        let server2 = Server::with_engine(recovered);

        // Resume on the recovered server and finish the file. If the
        // journal ran ahead of the durable state, rows would be lost; if
        // it fell behind, re-inserts would surface as PK-duplicate skips.
        // Either way the exact per-table counts below would break.
        let s2 = server2.connect();
        let resumed =
            load_catalog_text_with_journal(&s2, &cfg, &file.name, &file.text, &journal).unwrap();
        assert_eq!(resumed.lines_resumed, committed_before);

        // Exactly once, to the row, on every table.
        for (table, expect) in &file.expected.loadable {
            let tid = server2.engine().table_id(table).unwrap();
            assert_eq!(
                server2.engine().row_count(tid),
                *expect,
                "{table} after torn-write recovery + resume"
            );
        }
    }
}

/// A clean loaded repository's durable log, its committed redo ops, and the
/// generator's per-table ground truth — built once, shared by every
/// bit-flip proptest case.
type CleanLog = (Vec<u8>, Vec<skydb::wal::RecoveredOp>, Vec<(String, u64)>);

fn clean_log() -> &'static CleanLog {
    static LOG: std::sync::OnceLock<CleanLog> = std::sync::OnceLock::new();
    LOG.get_or_init(|| {
        let file = generate_file(&GenConfig::small(311, 100), 0);
        let server = fresh_server();
        let session = server.connect();
        load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();
        let log = server.engine().durable_log();
        let ops = skydb::wal::recover(&log);
        let counts = file
            .expected
            .loadable
            .iter()
            .map(|(t, n)| (t.to_string(), *n))
            .collect();
        (log, ops, counts)
    })
}

/// Is `sub` a subsequence of `full`? (Replay of a damaged log keeps only
/// the ops of transactions whose commit record survives in the intact
/// prefix — interleaved survivors stay in order but may skip entries.)
fn is_subsequence(sub: &[skydb::wal::RecoveredOp], full: &[skydb::wal::RecoveredOp]) -> bool {
    let mut it = full.iter();
    sub.iter().all(|s| it.any(|f| f == s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For ANY set of bit flips anywhere in the durable log, recovery must
    /// never panic and never apply work past the first CRC failure: the
    /// replayed ops are a subsequence of the clean replay (an intact
    /// prefix, filtered to transactions whose commit survived), and a
    /// recovered engine holds at most the clean row counts with every
    /// surviving row passing its own heap CRC.
    #[test]
    fn bit_flipped_wal_never_panics_nor_replays_past_first_bad_record(
        flips in proptest::collection::vec((any::<u64>(), 0u8..8), 1..4),
    ) {
        let (log, clean_ops, clean_counts) = clean_log();
        let mut damaged = log.clone();
        for (at, bit) in &flips {
            let idx = (*at % damaged.len() as u64) as usize;
            damaged[idx] ^= 1 << bit;
        }

        // Replay layer: an intact-prefix subsequence, and any divergence
        // from the clean replay must have been *flagged*. (With ≤ 3 flips
        // and records far below CRC-32's 11450-bit Hamming-distance-4
        // window, the flips cannot cancel inside one record.)
        let (ops, corrupt) = skydb::wal::recover_checked(&damaged);
        prop_assert!(ops.len() <= clean_ops.len());
        prop_assert!(is_subsequence(&ops, clean_ops));
        prop_assert!(corrupt || ops == *clean_ops, "silent divergence");

        // Engine layer: recovery either rebuilds a clean prefix state or
        // refuses outright (a lost parent breaks a child's FK) — it never
        // panics and never invents rows.
        if let Ok((engine, flagged)) =
            Engine::recover_from_log_checked(DbConfig::test(), schemas(), &damaged)
        {
            prop_assert_eq!(flagged, corrupt);
            for (table, clean) in clean_counts {
                let tid = engine.table_id(table).unwrap();
                prop_assert!(engine.row_count(tid) <= *clean, "{} grew", table);
            }
            // Nothing rotted lands in the heap: replayed bytes re-frame
            // under fresh CRCs, so a full scrub of the recovered engine
            // is clean.
            let report = skydb::scrub::run_scrub(
                &engine,
                &skydb::scrub::ScrubConfig::default(),
                &skyobs::Registry::new(),
            )
            .unwrap();
            prop_assert_eq!(report.bad_records(), 0);
        }
    }
}

#[test]
fn journal_survives_disk_roundtrip_mid_night() {
    let dir = std::env::temp_dir().join(format!("skyloader-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("night.journal");

    let file = generate_file(&GenConfig::small(307, 100), 0);
    let server = fresh_server();
    let cfg = LoaderConfig::test()
        .with_array_size(100)
        .with_commit_policy(CommitPolicy::PerFlush);

    let journal = LoadJournal::new();
    let cut: usize = file
        .text
        .lines()
        .take(file.line_count() / 3)
        .map(|l| l.len() + 1)
        .sum();
    let s = server.connect();
    load_catalog_text_with_journal(&s, &cfg, &file.name, &file.text[..cut], &journal).unwrap();
    s.rollback().unwrap();
    journal.save(&path).unwrap();

    // "New process": reload the journal from disk and resume.
    let journal2 = LoadJournal::load(&path).unwrap();
    assert_eq!(
        journal2.committed_lines(&file.name),
        journal.committed_lines(&file.name)
    );
    let committed_before_resume = journal2.committed_lines(&file.name);
    let s2 = server.connect();
    let report =
        load_catalog_text_with_journal(&s2, &cfg, &file.name, &file.text, &journal2).unwrap();
    assert_eq!(report.lines_resumed, committed_before_resume);

    for (table, expect) in &file.expected.loadable {
        let tid = server.engine().table_id(table).unwrap();
        assert_eq!(server.engine().row_count(tid), *expect, "{table}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
