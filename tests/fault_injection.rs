//! Process-level recovery under injected connection faults: flaky links
//! must not lose or duplicate a single row (§3: "a mechanism of automatic
//! recovery from errors is a basic requirement").

use std::sync::Arc;

use skycat::gen::{aggregate_expected, generate_file, generate_observation, GenConfig};
use skydb::{DbConfig, Server};
use skyloader::{
    load_catalog_file, load_night_with_journal, CommitPolicy, LoadJournal, LoaderConfig,
};
use skysim::cluster::AssignmentPolicy;

fn fresh_server() -> Arc<Server> {
    let server = Server::start(DbConfig::test());
    skycat::create_all(server.engine()).expect("schema");
    skycat::seed_static(server.engine()).expect("dimensions");
    skycat::seed_observation(server.engine(), 1, 100).expect("observation");
    server
}

#[test]
fn flaky_connection_with_journal_loads_exactly_once() {
    let files = generate_observation(&GenConfig::night(801, 100).with_files(6));
    let expected = aggregate_expected(&files);
    let server = fresh_server();
    // Fail every 97th database call: several failures over the night.
    server.inject_call_faults(97);

    let journal = LoadJournal::new();
    let cfg = LoaderConfig::test()
        .with_array_size(300)
        .with_commit_policy(CommitPolicy::PerFlush);
    let report = load_night_with_journal(
        &server,
        &files,
        &cfg,
        2,
        AssignmentPolicy::Dynamic,
        Some(&journal),
    )
    .expect("night load succeeds");
    assert!(
        report.failed_files.is_empty(),
        "every file must retire on a flaky link: {:?}",
        report.failed_files
    );

    assert!(
        server.faults_injected() > 0,
        "the fault plan should have fired"
    );
    server.inject_call_faults(0);
    for (table, expect) in &expected.loadable {
        let tid = server.engine().table_id(table).unwrap();
        assert_eq!(
            server.engine().row_count(tid),
            *expect,
            "{table} after flaky load"
        );
    }
}

#[test]
fn flaky_connection_without_journal_still_converges() {
    // Without a journal, retries re-send already-committed rows; PK
    // enforcement turns them into skips, so the repository still converges
    // to exactly one copy of everything.
    let file = generate_file(&GenConfig::small(803, 100), 0);
    let server = fresh_server();
    server.inject_call_faults(41);
    load_night_with_journal(
        &server,
        std::slice::from_ref(&file),
        &LoaderConfig::test().with_commit_policy(CommitPolicy::PerFlush),
        1,
        AssignmentPolicy::Dynamic,
        None,
    )
    .expect("night load succeeds");
    server.inject_call_faults(0);
    for (table, expect) in &file.expected.loadable {
        let tid = server.engine().table_id(table).unwrap();
        assert_eq!(server.engine().row_count(tid), *expect, "{table}");
    }
}

#[test]
fn single_load_surfaces_protocol_errors_to_the_caller() {
    // The low-level loader does not retry by itself: a connection failure
    // is reported, not swallowed.
    let file = generate_file(&GenConfig::small(805, 100), 0);
    let server = fresh_server();
    server.inject_call_faults(1); // every call fails
    let session = server.connect();
    let err = load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap_err();
    assert!(matches!(err, skydb::DbError::Protocol(_)), "{err}");
}
