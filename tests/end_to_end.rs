//! End-to-end integration: generator → parser/transform → loader → wire →
//! engine, across all five crates, verified to exact row counts.

use std::sync::Arc;

use skycat::gen::{aggregate_expected, generate_file, generate_observation, GenConfig};
use skydb::{DbConfig, Server};
use skyloader::{load_catalog_file, load_night, LoaderConfig};
use skysim::cluster::AssignmentPolicy;

fn fresh_server() -> Arc<Server> {
    let server = Server::start(DbConfig::test());
    skycat::create_all(server.engine()).expect("schema");
    skycat::seed_static(server.engine()).expect("dimensions");
    skycat::seed_observation(server.engine(), 1, 100).expect("observation");
    server
}

#[test]
fn full_night_parallel_load_is_exact() {
    let cfg = GenConfig::night(101, 100)
        .with_files(10)
        .with_error_rate(0.03);
    let files = generate_observation(&cfg);
    let expected = aggregate_expected(&files);
    assert!(expected.corrupted_objects > 0, "want a dirty night");

    let server = fresh_server();
    let seeded = server.engine().stats().snapshot().rows_inserted;
    let report = load_night(
        &server,
        &files,
        &LoaderConfig::test(),
        4,
        AssignmentPolicy::Dynamic,
    )
    .expect("night load succeeds");

    assert_eq!(report.rows_loaded(), expected.total_loadable());
    assert_eq!(
        report.rows_skipped(),
        expected.total_emitted() - expected.total_loadable()
    );
    for (table, expect) in &expected.loadable {
        let tid = server.engine().table_id(table).unwrap();
        assert_eq!(server.engine().row_count(tid), *expect, "{table}");
    }
    // Engine-side accounting agrees with loader-side accounting.
    let stats = server.engine().stats().snapshot();
    assert_eq!(stats.rows_inserted - seeded, expected.total_loadable());
}

#[test]
fn every_referential_path_holds_after_load() {
    let file = generate_file(&GenConfig::night(103, 100).with_error_rate(0.05), 0);
    let server = fresh_server();
    let session = server.connect();
    load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();

    // Walk FK edges: every child row's parent key must exist.
    let engine = server.engine();
    for child_name in skycat::CATALOG_TABLES {
        let child = engine.table_id(child_name).unwrap();
        let schema = engine.schema(child);
        let rows = engine.scan_where(child, None).unwrap();
        for fk in &schema.foreign_keys {
            let parent = engine.table_id(&fk.parent_table).unwrap();
            for row in &rows {
                let key = skydb::Key::project(row, &fk.columns);
                if key.has_null() {
                    continue;
                }
                assert!(
                    engine.pk_get(parent, &key).unwrap().is_some(),
                    "orphan {child_name} row referencing {} {key}",
                    fk.parent_table
                );
            }
        }
    }
}

#[test]
fn loaded_objects_have_consistent_computed_columns() {
    let file = generate_file(&GenConfig::small(105, 100), 0);
    let server = fresh_server();
    let session = server.connect();
    load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();

    let engine = server.engine();
    let objects = engine.table_id("objects").unwrap();
    let rows = engine.scan_where(objects, None).unwrap();
    assert!(!rows.is_empty());
    for row in rows {
        let (skydb::Value::Float(ra), skydb::Value::Float(dec), skydb::Value::Int(htmid)) =
            (row[2].clone(), row[3].clone(), row[4].clone())
        else {
            panic!("unexpected column types");
        };
        // htmid recomputes from ra/dec.
        assert_eq!(
            htmid as u64,
            skyhtm::htmid(ra, dec, skyhtm::CATALOG_DEPTH),
            "htmid mismatch at ra={ra} dec={dec}"
        );
        // galactic coordinates recompute (to the stored 3-decimal rounding).
        let (l, b) = skyhtm::equatorial_to_galactic(ra, dec);
        let (skydb::Value::Float(gl), skydb::Value::Float(gb)) = (row[5].clone(), row[6].clone())
        else {
            panic!("galactic columns");
        };
        assert!((gl - l).abs() < 0.001, "gal_l {gl} vs {l}");
        assert!((gb - b).abs() < 0.001, "gal_b {gb} vs {b}");
    }
}

#[test]
fn static_and_dynamic_assignment_agree_on_results() {
    let files = generate_observation(&GenConfig::night(107, 100).with_files(6));
    let expected = aggregate_expected(&files);

    for policy in [AssignmentPolicy::Dynamic, AssignmentPolicy::Static] {
        let server = fresh_server();
        let report = load_night(&server, &files, &LoaderConfig::test(), 3, policy)
            .expect("night load succeeds");
        assert_eq!(
            report.rows_loaded(),
            expected.total_loadable(),
            "{policy:?}"
        );
    }
}

#[test]
fn loading_is_deterministic_across_runs() {
    let file = generate_file(&GenConfig::night(109, 100).with_error_rate(0.08), 0);
    let run = || {
        let server = fresh_server();
        let session = server.connect();
        let report = load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();
        (
            report.rows_loaded,
            report.rows_skipped,
            report.batch_calls,
            report.skipped_by_kind.clone(),
        )
    };
    assert_eq!(run(), run());
}
