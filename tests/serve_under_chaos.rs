//! Serving tier under loader chaos: fast queries run concurrently with a
//! fleet night load whose first lease holder is killed mid-file. The
//! queries must never observe a partially flushed batch — every row a
//! committed read returns must still be present once the night settles
//! (read-your-fence consistency) — and the load itself must stay
//! exactly-once against the generator's ground truth, on three seeds.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

use skycat::gen::{generate_observation, ExpectedCounts, GenConfig};
use skydb::fault::{FaultPlan, FaultPlanConfig};
use skydb::serve::{FastOutcome, Query, QueryService, ServeConfig};
use skydb::{DbConfig, Server};
use skyloader::fleet::FleetPolicy;
use skyloader::recovery::LoadJournal;
use skyloader::{load_night_with_journal, LoaderConfig};
use skysim::cluster::AssignmentPolicy;

const OBS_ID: i64 = 100;
const MAX_GENERATIONS: usize = 5;

fn object_ids(rows: &[Vec<skydb::Value>]) -> impl Iterator<Item = i64> + '_ {
    rows.iter().filter_map(|r| r.first()?.as_i64())
}

#[test]
fn fast_queries_never_observe_a_partial_flush_while_a_loader_dies() {
    for seed in [2005u64, 11, 77] {
        let cfg = GenConfig::night(seed, OBS_ID)
            .with_files(4)
            .with_frames_per_ccd(3)
            .with_objects_per_frame(40);
        let files = generate_observation(&cfg);
        let mut expected = ExpectedCounts::default();
        for f in &files {
            expected.merge(&f.expected);
        }

        let server = Server::start(DbConfig::test());
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, OBS_ID).unwrap();
        server.set_fault_plan(Some(FaultPlan::new(
            FaultPlanConfig::new(seed).with_loader_kill_at(1),
        )));

        let service = QueryService::start(server.clone(), ServeConfig::default());
        let done = AtomicBool::new(false);
        let mut observed: BTreeSet<i64> = BTreeSet::new();

        std::thread::scope(|scope| {
            let ingest = scope.spawn(|| {
                let journal = LoadJournal::new();
                // A short lease keeps the kill→reclaim→resume cycle from
                // dominating the test's wall clock.
                let loader = LoaderConfig::test().with_fleet(
                    FleetPolicy::default()
                        .with_lease_ttl(std::time::Duration::from_millis(250))
                        .with_heartbeat_interval(std::time::Duration::from_millis(60)),
                );
                let mut remaining = files.clone();
                let mut generations = 0;
                while !remaining.is_empty() && generations < MAX_GENERATIONS {
                    generations += 1;
                    let night = load_night_with_journal(
                        &server,
                        &remaining,
                        &loader,
                        2,
                        AssignmentPolicy::Dynamic,
                        Some(&journal),
                    )
                    .unwrap();
                    let loaded: BTreeSet<String> =
                        night.files.iter().map(|f| f.file.clone()).collect();
                    remaining.retain(|f| !loaded.contains(&f.name));
                }
                done.store(true, Ordering::Release);
                assert!(remaining.is_empty(), "seed {seed}: night never completed");
            });

            // Committed reads against `objects` while the fleet flushes
            // and dies. Everything a query returns is recorded; nothing
            // recorded may vanish once the night settles.
            while !done.load(Ordering::Acquire) {
                match service
                    .fast_query(
                        "observer",
                        Query::Scan {
                            table: "objects".into(),
                            filter: None,
                        },
                    )
                    .unwrap_or_else(|e| panic!("seed {seed}: fast scan: {e}"))
                {
                    FastOutcome::Done(result) => observed.extend(object_ids(&result.rows)),
                    FastOutcome::Demoted(_) => {
                        unreachable!("test-config modeled costs never overrun the deadline")
                    }
                }
                // Full-table scans over a growing heap: pace them so the
                // test exercises many flush boundaries, not one busy loop.
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            ingest.join().unwrap();
        });

        // Exactly-once against ground truth, per table.
        server.set_fault_plan(None);
        for (table, expect) in &expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            let got = server.engine().row_count(tid);
            assert_eq!(
                got, *expect,
                "seed {seed}: table {table} expected {expect} rows, got {got}"
            );
        }

        // The kill actually fired and the fleet recovered the lease.
        let snap = server.obs_snapshot();
        assert!(snap.counter("loader_kills") >= 1, "seed {seed}: no kill");
        assert!(
            snap.counter("fleet.reclaims") >= 1,
            "seed {seed}: the killed loader's lease was never reclaimed"
        );

        // Read-your-fence: every id any concurrent query observed is
        // still present. A partially flushed (later rolled back) batch
        // leaking into a committed read would strand ids here.
        let objects = server.engine().table_id("objects").unwrap();
        let final_ids: BTreeSet<i64> = server
            .engine()
            .scan_where(objects, None)
            .unwrap()
            .iter()
            .filter_map(|r| r.first()?.as_i64())
            .collect();
        let stranded: Vec<i64> = observed.difference(&final_ids).copied().collect();
        assert!(
            stranded.is_empty(),
            "seed {seed}: queries observed {} row(s) that are gone after the night: {:?}",
            stranded.len(),
            &stranded[..stranded.len().min(10)]
        );
    }
}

#[test]
fn quarantine_races_committed_reads_without_serving_rot() {
    // Bit rot lands in committed rows *while* serve-tier scans run and a
    // scrubber quarantines the damage out from under them. A racing read
    // must land on one of exactly three outcomes — clean rows it knows
    // (pre-rot), a DataCorruption refusal (post-rot, pre-quarantine), or
    // clean survivors (post-quarantine) — and never a fabricated row.
    // Afterwards, journal-driven repair must restore the exact catalog.
    use skydb::error::DbError;
    use skydb::scrub::{run_scrub, QuarantinedRow, ScrubConfig};
    use skydb::serve::ServeError;
    use std::sync::atomic::AtomicU64;

    for seed in [17u64, 29, 43] {
        let cfg = GenConfig::night(seed, OBS_ID)
            .with_files(2)
            .with_frames_per_ccd(3)
            .with_objects_per_frame(40);
        let files = generate_observation(&cfg);
        let mut expected = ExpectedCounts::default();
        for f in &files {
            expected.merge(&f.expected);
        }

        let server = Server::start(DbConfig::test());
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, OBS_ID).unwrap();
        let journal = LoadJournal::new();
        let loader = LoaderConfig::test();
        load_night_with_journal(
            &server,
            &files,
            &loader,
            2,
            AssignmentPolicy::Dynamic,
            Some(&journal),
        )
        .unwrap();

        // Ground truth: every object id the night legitimately loaded.
        let objects = server.engine().table_id("objects").unwrap();
        let valid_ids: BTreeSet<i64> = server
            .engine()
            .scan_where(objects, None)
            .unwrap()
            .iter()
            .filter_map(|r| r.first()?.as_i64())
            .collect();

        let service = QueryService::start(server.clone(), ServeConfig::default());
        let done = AtomicBool::new(false);
        let ok_reads = AtomicU64::new(0);
        let blocked_reads = AtomicU64::new(0);
        let mut quarantined: Vec<QuarantinedRow> = Vec::new();

        std::thread::scope(|scope| {
            for r in 0..2 {
                let (service, done) = (&service, &done);
                let (ok_reads, blocked_reads, valid_ids) = (&ok_reads, &blocked_reads, &valid_ids);
                scope.spawn(move || {
                    let user = format!("racer{r}");
                    while !done.load(Ordering::Acquire) {
                        match service.fast_query(
                            &user,
                            Query::Scan {
                                table: "objects".into(),
                                filter: None,
                            },
                        ) {
                            Ok(FastOutcome::Done(result)) => {
                                ok_reads.fetch_add(1, Ordering::Relaxed);
                                for id in object_ids(&result.rows) {
                                    assert!(
                                        valid_ids.contains(&id),
                                        "seed {seed}: served rotted id {id}"
                                    );
                                }
                            }
                            Err(ServeError::Db(DbError::DataCorruption(_))) => {
                                blocked_reads.fetch_add(1, Ordering::Relaxed);
                            }
                            other => panic!("seed {seed}: unexpected outcome {other:?}"),
                        }
                    }
                });
            }

            // The rot/scrub loop races the readers: damage a committed
            // row, give the scanners a beat to trip over it, scrub it out.
            for round in 0..8u64 {
                if server
                    .engine()
                    .rot_heap_row("objects", seed.wrapping_mul(1000) + round)
                    .is_some()
                {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    let report =
                        run_scrub(server.engine(), &ScrubConfig::default(), server.obs()).unwrap();
                    quarantined.extend(report.quarantined);
                }
            }
            done.store(true, Ordering::Release);
        });

        assert!(!quarantined.is_empty(), "seed {seed}: nothing quarantined");
        assert!(
            ok_reads.load(Ordering::Relaxed) > 0,
            "seed {seed}: readers never completed a scan"
        );
        let got = server.engine().row_count(objects);
        assert_eq!(
            got + quarantined.len() as u64,
            expected.loadable["objects"],
            "seed {seed}: quarantine lost track of rows"
        );

        // Close the loop: repair restores the exact catalog, row for row.
        let repair =
            skyloader::run_repair(&server, &files, &quarantined, false, &loader, 2, &journal)
                .unwrap();
        assert!(repair.complete(), "seed {seed}: {:?}", repair.failed_files);
        assert_eq!(
            repair.rows_restored,
            quarantined.len() as u64,
            "seed {seed}"
        );
        for (table, expect) in &expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(
                server.engine().row_count(tid),
                *expect,
                "seed {seed}: {table} after repair"
            );
        }
    }
}
