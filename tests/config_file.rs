//! The §4.3 future-work features, end to end: a JSON config file drives
//! per-table array sizes and the memory high-water mark.

use std::sync::Arc;

use skycat::gen::{generate_file, GenConfig};
use skydb::{DbConfig, Server};
use skyloader::{load_catalog_file, LoaderConfig};

fn fresh_server() -> Arc<Server> {
    let server = Server::start(DbConfig::test());
    skycat::create_all(server.engine()).unwrap();
    skycat::seed_static(server.engine()).unwrap();
    skycat::seed_observation(server.engine(), 1, 100).unwrap();
    server
}

const CONFIG_JSON: &str = r#"{
    "array_size": 400,
    "batch_size": 40,
    "mode": "Bulk",
    "commit_policy": "PerFile",
    "per_table_array_sizes": {"fingers": 2000, "objects": 500},
    "memory_high_water_bytes": null,
    "client_heap_budget": 1073741824,
    "client_overhead_factor": 6.0,
    "client_fault_penalty": 0,
    "max_skip_details": 50
}"#;

#[test]
fn json_config_drives_the_loader() {
    let cfg = LoaderConfig::from_json(CONFIG_JSON).unwrap();
    cfg.validate().unwrap();
    assert_eq!(cfg.array_size_for("fingers"), 2000);
    assert_eq!(cfg.array_size_for("objects"), 500);
    assert_eq!(cfg.array_size_for("ccd_frames"), 400);

    let file = generate_file(&GenConfig::night(501, 100), 0);
    let server = fresh_server();
    let session = server.connect();
    let report = load_catalog_file(&session, &cfg, &file).unwrap();
    assert_eq!(report.rows_loaded, file.expected.total_loadable());
}

#[test]
fn per_table_sizing_changes_cycle_count() {
    // fingers fill ~4x faster than objects; giving fingers a 4x array
    // evens the trigger cadence and reduces cycles versus a uniform size.
    let file = generate_file(&GenConfig::night(503, 100), 0);

    let uniform = LoaderConfig::test().with_array_size(500);
    let tuned = LoaderConfig::test()
        .with_array_size(500)
        .with_table_array_size("fingers", 2000);

    let run = |cfg: &LoaderConfig| {
        let server = fresh_server();
        let session = server.connect();
        load_catalog_file(&session, cfg, &file).unwrap()
    };
    let uni = run(&uniform);
    let tun = run(&tuned);
    assert_eq!(uni.rows_loaded, tun.rows_loaded);
    assert!(
        tun.cycles < uni.cycles,
        "per-table sizing should reduce cycles: {} vs {}",
        tun.cycles,
        uni.cycles
    );
}

#[test]
fn memory_high_water_mark_bounds_buffered_footprint() {
    let file = generate_file(&GenConfig::night(505, 100), 0);
    let mut cfg = LoaderConfig::test().with_array_size(1_000_000); // never by count
    cfg.memory_high_water_bytes = Some(512 * 1024);

    let server = fresh_server();
    let session = server.connect();
    let report = load_catalog_file(&session, &cfg, &file).unwrap();
    assert_eq!(report.rows_loaded, file.expected.total_loadable());
    assert!(
        report.cycles > 2,
        "the high-water mark should trigger multiple cycles, got {}",
        report.cycles
    );
}

#[test]
fn loader_config_roundtrips_through_disk() {
    let dir = std::env::temp_dir().join(format!("skyloader-cfg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("loader.json");
    let cfg = LoaderConfig::paper()
        .with_table_array_size("objects", 1234)
        .with_batch_size(50);
    std::fs::write(&path, cfg.to_json()).unwrap();
    let loaded = LoaderConfig::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(loaded.batch_size, 50);
    assert_eq!(loaded.array_size_for("objects"), 1234);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn skip_detail_cap_respected_end_to_end() {
    let file = generate_file(&GenConfig::night(507, 100).with_error_rate(0.2), 0);
    let mut cfg = LoaderConfig::test();
    cfg.max_skip_details = 7;
    let server = fresh_server();
    let session = server.connect();
    let report = load_catalog_file(&session, &cfg, &file).unwrap();
    assert!(report.rows_skipped > 7);
    assert_eq!(report.skip_details.len(), 7);
}
