//! The paper's qualitative claims, asserted at test scale on the modeled
//! 2005 environment. (The quantitative series live in the `repro` harness;
//! these tests pin the *directions* so regressions can't silently flip a
//! figure.)

use std::sync::Arc;
use std::time::Duration;

use skycat::gen::{generate_file, GenConfig};
use skydb::{DbConfig, Server};
use skyloader::{load_catalog_file, CommitPolicy, ExecMode, LoaderConfig, ModeledCost};
use skysim::time::TimeScale;

fn paper_server(cfg: DbConfig) -> Arc<Server> {
    let server = Server::start(cfg);
    skycat::create_all(server.engine()).expect("schema");
    skycat::seed_static(server.engine()).expect("dimensions");
    skycat::seed_observation(server.engine(), 1, 100).expect("observation");
    server
}

fn modeled_load(
    db: DbConfig,
    loader: &LoaderConfig,
    file: &skycat::CatalogFile,
    prepare: impl FnOnce(&Arc<Server>),
) -> Duration {
    let server = paper_server(db);
    prepare(&server);
    let baseline = ModeledCost::measure(&server, Duration::ZERO);
    let session = server.connect();
    let report = load_catalog_file(&session, loader, file).expect("load");
    server.engine().checkpoint();
    ModeledCost::measure(&server, report.client_paging)
        .since(baseline)
        .total()
}

fn sample_file(seed: u64) -> skycat::CatalogFile {
    generate_file(&GenConfig::night(seed, 100), 0)
}

#[test]
fn fig4_bulk_loading_speeds_up_7_to_9x() {
    let file = sample_file(201);
    let bulk = modeled_load(
        DbConfig::paper(TimeScale::ZERO),
        &LoaderConfig::paper(),
        &file,
        |_| {},
    );
    let non_bulk = modeled_load(
        DbConfig::paper(TimeScale::ZERO),
        &LoaderConfig {
            mode: ExecMode::Singleton,
            ..LoaderConfig::paper()
        },
        &file,
        |_| {},
    );
    let speedup = non_bulk.as_secs_f64() / bulk.as_secs_f64();
    assert!(
        (6.0..11.0).contains(&speedup),
        "bulk speedup {speedup:.1}x outside the paper's 7–9x band (±tolerance)"
    );
}

#[test]
fn fig5_batching_beats_tiny_batches_and_optimum_is_interior() {
    let file = sample_file(203);
    let at = |batch: usize| {
        modeled_load(
            DbConfig::paper(TimeScale::ZERO),
            &LoaderConfig::paper().with_batch_size(batch),
            &file,
            |_| {},
        )
    };
    let b10 = at(10);
    let b50 = at(50);
    let b100 = at(100);
    assert!(
        b10 > b50,
        "batch 10 ({b10:?}) should cost more than 50 ({b50:?})"
    );
    assert!(
        b100 > b50,
        "batch 100 ({b100:?}) should cost more than 50 ({b50:?}): bind-array spill"
    );
}

#[test]
fn fig6_array_size_has_interior_optimum() {
    let file = sample_file(205);
    let at = |array: usize| {
        modeled_load(
            DbConfig::paper(TimeScale::ZERO),
            &LoaderConfig::paper().with_array_size(array),
            &file,
            |_| {},
        )
    };
    let small = at(100);
    let paper = at(1000);
    let big = at(2500);
    assert!(
        small > paper,
        "tiny arrays ({small:?}) should lose to 1000 ({paper:?})"
    );
    assert!(
        big > paper,
        "oversized arrays ({big:?}) should page and lose to 1000 ({paper:?})"
    );
}

#[test]
fn fig8_composite_float_index_costs_more_than_int_index() {
    let file = sample_file(207);
    let with_index = |cols: &'static [&'static str]| {
        modeled_load(
            DbConfig::paper(TimeScale::ZERO),
            &LoaderConfig::paper(),
            &file,
            move |server| {
                if !cols.is_empty() {
                    server
                        .engine()
                        .create_index("objects", "t_idx", cols, false)
                        .unwrap();
                }
            },
        )
    };
    let none = with_index(&[]);
    let int1 = with_index(&["htmid"]);
    let float3 = with_index(&["ra", "dec", "flux"]);
    assert!(int1 > none, "int index must cost something");
    assert!(float3 > int1, "3-float composite must cost more than 1-int");
    let int_pct = (int1.as_secs_f64() / none.as_secs_f64() - 1.0) * 100.0;
    let float_pct = (float3.as_secs_f64() / none.as_secs_f64() - 1.0) * 100.0;
    assert!(
        int_pct < 4.0,
        "int index penalty {int_pct:.1}% should be small (paper: 1.5%)"
    );
    assert!(
        (4.0..16.0).contains(&float_pct),
        "composite penalty {float_pct:.1}% should be significant (paper: 8.5%)"
    );
}

#[test]
fn sec452_frequent_commits_slow_loading() {
    let file = sample_file(209);
    let rare = modeled_load(
        DbConfig::paper(TimeScale::ZERO),
        &LoaderConfig::paper().with_commit_policy(CommitPolicy::PerFile),
        &file,
        |_| {},
    );
    let frequent = modeled_load(
        DbConfig::paper(TimeScale::ZERO),
        &LoaderConfig::paper().with_commit_policy(CommitPolicy::EveryBatches(1)),
        &file,
        |_| {},
    );
    assert!(
        frequent.as_secs_f64() > rare.as_secs_f64() * 1.5,
        "commit-per-batch ({frequent:?}) should be much slower than per-file ({rare:?})"
    );
}

#[test]
fn sec455_smaller_cache_loads_faster() {
    let file = sample_file(211);
    let small = modeled_load(
        DbConfig::paper(TimeScale::ZERO).with_cache_pages(512),
        &LoaderConfig::paper(),
        &file,
        |_| {},
    );
    let large = modeled_load(
        DbConfig::paper(TimeScale::ZERO).with_cache_pages(65_536),
        &LoaderConfig::paper(),
        &file,
        |_| {},
    );
    assert!(
        large > small,
        "large cache ({large:?}) should be slower than small ({small:?})"
    );
}

#[test]
fn sec454_presorted_input_dirties_fewer_index_pages() {
    let run = |presorted: bool| {
        let file = generate_file(&GenConfig::night(213, 100).with_presorted(presorted), 0);
        let server = paper_server(DbConfig::paper(TimeScale::ZERO));
        let session = server.connect();
        load_catalog_file(&session, &LoaderConfig::paper(), &file).unwrap();
        server.engine().checkpoint();
        server
            .engine()
            .farm()
            .device(skysim::disk::StorageRole::Index)
            .writes()
    };
    let sorted_writes = run(true);
    let shuffled_writes = run(false);
    assert!(
        shuffled_writes > sorted_writes,
        "shuffled keys ({shuffled_writes} index writes) should dirty more pages than presorted ({sorted_writes})"
    );
}

#[test]
fn sec42_worst_case_degenerates_to_one_call_per_row() {
    let file = sample_file(215);
    let server = paper_server(DbConfig::paper(TimeScale::ZERO));
    let session = server.connect();
    load_catalog_file(&session, &LoaderConfig::paper(), &file).unwrap();
    let before = server.engine().stats().snapshot().batch_calls;
    let reload = load_catalog_file(&session, &LoaderConfig::paper(), &file).unwrap();
    let calls = server.engine().stats().snapshot().batch_calls - before;
    assert_eq!(reload.rows_loaded, 0);
    assert_eq!(
        calls, reload.rows_skipped,
        "reloading duplicates must make exactly N database calls for N rows"
    );
}
