//! Spatial queries over the loaded repository: the htmid index (kept
//! during loading per §4.5.1) must answer cone searches exactly.

use std::sync::Arc;

use skycat::gen::{generate_file, GenConfig};
use skydb::{DbConfig, Key, Server, Value};
use skyhtm::{cone_cover, separation_deg, Cone, CATALOG_DEPTH};
use skyloader::{load_catalog_file, LoaderConfig};

fn loaded_server(seed: u64) -> Arc<Server> {
    let server = Server::start(DbConfig::test());
    skycat::create_all(server.engine()).unwrap();
    skycat::seed_static(server.engine()).unwrap();
    skycat::seed_observation(server.engine(), 1, 100).unwrap();
    server
        .engine()
        .create_index("objects", "idx_objects_htmid", &["htmid"], false)
        .unwrap();
    let file = generate_file(
        &GenConfig::night(seed, 100)
            .with_frames_per_ccd(6)
            .with_objects_per_frame(60),
        0,
    );
    let session = server.connect();
    load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();
    server
}

fn cone_search_via_index(server: &Server, ra: f64, dec: f64, radius_arcmin: f64) -> Vec<i64> {
    let cone = Cone::from_radec_arcmin(ra, dec, radius_arcmin);
    let mut ids = Vec::new();
    for (lo, hi) in cone_cover(&cone, CATALOG_DEPTH) {
        let rows = server
            .engine()
            .index_range(
                "objects",
                "idx_objects_htmid",
                &Key(vec![Value::Int(lo as i64)]),
                &Key(vec![Value::Int(hi as i64)]),
            )
            .unwrap();
        for row in rows {
            let (Value::Int(id), Value::Float(ora), Value::Float(odec)) =
                (row[0].clone(), row[2].clone(), row[3].clone())
            else {
                panic!("column types");
            };
            if separation_deg(ra, dec, ora, odec) * 60.0 <= radius_arcmin {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    ids
}

fn cone_search_brute(server: &Server, ra: f64, dec: f64, radius_arcmin: f64) -> Vec<i64> {
    let objects = server.engine().table_id("objects").unwrap();
    let mut ids: Vec<i64> = server
        .engine()
        .scan_where(objects, None)
        .unwrap()
        .into_iter()
        .filter_map(|row| {
            let (Value::Int(id), Value::Float(ora), Value::Float(odec)) =
                (row[0].clone(), row[2].clone(), row[3].clone())
            else {
                return None;
            };
            (separation_deg(ra, dec, ora, odec) * 60.0 <= radius_arcmin).then_some(id)
        })
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn cone_search_agrees_with_brute_force_at_many_positions() {
    let server = loaded_server(401);
    // Sweep cones across the loaded stripe (generated near ra≈150,
    // dec≈-1.2..1.2) including ones that fall off its edge.
    for (ra, dec, r) in [
        (150.2, 0.0, 10.0),
        (150.05, -1.0, 5.0),
        (150.4, 1.0, 20.0),
        (150.3, 0.5, 2.0),
        (149.0, 0.0, 30.0), // mostly off-stripe
        (150.25, -0.4, 60.0),
    ] {
        let via_index = cone_search_via_index(&server, ra, dec, r);
        let brute = cone_search_brute(&server, ra, dec, r);
        assert_eq!(via_index, brute, "cone at ({ra}, {dec}) r={r}'");
    }
}

#[test]
fn empty_cone_returns_nothing() {
    let server = loaded_server(403);
    // A cone on the opposite side of the sky.
    let hits = cone_search_via_index(&server, 20.0, 60.0, 30.0);
    assert!(hits.is_empty());
}

#[test]
fn index_range_is_far_more_selective_than_a_scan() {
    let server = loaded_server(405);
    let cone = Cone::from_radec_arcmin(150.2, 0.0, 5.0);
    let total_candidates: usize = cone_cover(&cone, CATALOG_DEPTH)
        .into_iter()
        .map(|(lo, hi)| {
            server
                .engine()
                .index_range(
                    "objects",
                    "idx_objects_htmid",
                    &Key(vec![Value::Int(lo as i64)]),
                    &Key(vec![Value::Int(hi as i64)]),
                )
                .unwrap()
                .len()
        })
        .sum();
    let objects = server.engine().table_id("objects").unwrap();
    let all = server.engine().row_count(objects) as usize;
    assert!(
        total_candidates < all / 4,
        "cover produced {total_candidates} candidates of {all} objects — not selective"
    );
}

#[test]
fn galactic_coordinates_queryable_and_consistent() {
    let server = loaded_server(407);
    let engine = server.engine();
    let objects = engine.table_id("objects").unwrap();
    let schema = engine.schema(objects);
    let gal_b = schema.column_index("gal_b").unwrap();
    // Objects near the equatorial stripe at ra≈150 sit at northern
    // galactic latitudes; a |b| < 5° query should be empty there.
    let plane = engine
        .scan_where(objects, Some(&skydb::Expr::between(gal_b, -5.0f64, 5.0f64)))
        .unwrap();
    assert!(
        plane.is_empty(),
        "stripe at ra 150 dec 0 is far from the galactic plane"
    );
}
