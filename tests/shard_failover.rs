//! Shard failover end to end: a night live-ingested into declination
//! zones while shards are killed and stalled mid-flush, the supervisor
//! fences each dead generation and rebuilds it from its durable log,
//! the coordinator itself restarts mid-night, and scatter-gather
//! readers run throughout — asserting per-zone row-exact, exactly-once
//! delivery against an independent single-engine reference load.

use skyloader::{run_shard_chaos, ShardChaosConfig};

#[test]
fn shard_kill_mid_ingest_fences_rebuilds_and_lands_exactly_once() {
    // Three distinct fixed seeds: a shard engine is crashed at the first
    // shard-fault opportunity and another frozen past its lease at the
    // second, on top of connection weather. The supervisor must fence
    // the dead generation (so zombie flushes reject), rebuild it, and
    // the night must still converge row-exact per zone.
    for seed in [2005u64, 11, 77] {
        let cfg = ShardChaosConfig {
            seed,
            files: 4,
            shards: 3,
            quick: true,
            ..ShardChaosConfig::default()
        };
        let report = run_shard_chaos(&cfg).expect("soak runs");
        assert!(
            report.exactly_once(),
            "seed {seed}: lost={} duplicated={} corrupt_served={} mismatches={:?}",
            report.lost_rows,
            report.duplicated_rows,
            report.corrupt_rows_served,
            report.mismatches,
        );
        assert!(report.shard_kills >= 1, "seed {seed}: no shard was killed");
        assert!(
            report.shard_stalls >= 1,
            "seed {seed}: no shard was stalled"
        );
        assert!(
            report.reclaims >= 1 && report.rebuilds >= 1,
            "seed {seed}: supervisor never fenced+rebuilt (reclaims={} rebuilds={})",
            report.reclaims,
            report.rebuilds
        );
        assert_eq!(
            report.coordinator_restarts, 1,
            "seed {seed}: coordinator restart did not happen"
        );
        assert_eq!(
            report.actual_rows, report.expected_rows,
            "seed {seed}: row totals diverge"
        );
        // Every zone ended up owning real data — the partition is live,
        // not one shard holding everything.
        assert!(
            report.per_zone_rows.iter().all(|&n| n > 0),
            "seed {seed}: empty zone in {:?}",
            report.per_zone_rows
        );
        // Readers ran, and any degraded answer was explicitly flagged —
        // corrupt_rows_served == 0 (checked via exactly_once above)
        // proves nothing was silently truncated or invented.
        assert!(report.reads_total > 0, "seed {seed}: readers never ran");
    }
}
