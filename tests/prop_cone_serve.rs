//! Property: for ANY randomized catalog and ANY cone, a cone search
//! served through the `skyhtm` trixel cover (coarse cover widened to
//! deep-id ranges, probed through the htmid B+-tree, candidates
//! re-filtered by angular distance) returns exactly the rows a
//! brute-force angular-distance scan returns.

use std::sync::Arc;

use proptest::prelude::*;

use skydb::serve::{FastOutcome, Query, QueryService, ServeConfig};
use skydb::{DataType, DbConfig, Server, TableBuilder, Value};
use skyhtm::{htmid, separation_deg, CATALOG_DEPTH};

/// A server with an "objects"-shaped catalog (id, ra, dec, htmid) and the
/// one index the loading phase keeps: the B+-tree on htmid.
fn star_server(points: &[(f64, f64)]) -> Arc<Server> {
    let s = Server::start(DbConfig::test());
    let t = TableBuilder::new("objects")
        .col("object_id", DataType::Int)
        .col("ra", DataType::Float)
        .col("dec", DataType::Float)
        .col("htmid", DataType::Int)
        .pk(&["object_id"])
        .build()
        .unwrap();
    s.engine().create_table(t).unwrap();
    s.engine()
        .create_index("objects", "idx_objects_htmid", &["htmid"], false)
        .unwrap();
    let sess = s.connect();
    let stmt = sess.prepare_insert("objects").unwrap();
    for (i, (ra, dec)) in points.iter().enumerate() {
        sess.execute(
            &stmt,
            vec![
                Value::Int(i as i64),
                Value::Float(*ra),
                Value::Float(*dec),
                Value::Int(htmid(*ra, *dec, CATALOG_DEPTH) as i64),
            ],
        )
        .unwrap();
    }
    sess.commit().unwrap();
    s
}

fn brute_force(points: &[(f64, f64)], ra: f64, dec: f64, radius_arcmin: f64) -> Vec<i64> {
    let mut hits: Vec<i64> = points
        .iter()
        .enumerate()
        .filter(|(_, (pra, pdec))| separation_deg(*pra, *pdec, ra, dec) * 60.0 <= radius_arcmin)
        .map(|(i, _)| i as i64)
        .collect();
    hits.sort_unstable();
    hits
}

proptest! {
    // Each case stands up a fresh server and loads a catalog; keep the
    // case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cover-served cone results are exactly the brute-force results: the
    /// coarse trixel cover may overshoot (it is a superset), but the
    /// distance re-filter must trim it to precisely the true answer, and
    /// the cover must never *miss* a star inside the cone.
    #[test]
    fn cone_via_htm_cover_equals_brute_force_scan(
        points in prop::collection::vec(
            (140.0f64..160.0, -5.0f64..5.0),
            1..120,
        ),
        center_ra in 141.0f64..159.0,
        center_dec in -4.0f64..4.0,
        radius_arcmin in 1.0f64..90.0,
    ) {
        let server = star_server(&points);
        let service = QueryService::start(
            server,
            ServeConfig {
                ra_column: "ra".into(),
                dec_column: "dec".into(),
                ..ServeConfig::default()
            },
        );
        let outcome = service
            .fast_query(
                "prover",
                Query::Cone {
                    ra_deg: center_ra,
                    dec_deg: center_dec,
                    radius_arcmin,
                },
            )
            .unwrap();
        let FastOutcome::Done(result) = outcome else {
            panic!("test-config modeled costs never overrun the deadline");
        };
        let mut served: Vec<i64> = result
            .rows
            .iter()
            .filter_map(|r| r.first()?.as_i64())
            .collect();
        served.sort_unstable();
        let expected = brute_force(&points, center_ra, center_dec, radius_arcmin);
        prop_assert_eq!(served, expected);
    }
}
