//! Chaos soak end to end: a full synthetic night loaded under a seeded
//! multi-kind fault plan (resets, busy rejections, latency spikes,
//! disk-full commits, batch corruption, one crash-on-flush), asserting
//! exactly-once row delivery against the generator's ground truth.

use skyloader::{run_chaos, ChaosConfig};

#[test]
fn full_night_survives_a_multi_kind_fault_plan_exactly_once() {
    let cfg = ChaosConfig {
        seed: 2005,
        files: 6,
        nodes: 3,
        error_rate: 0.02,
        quick: false,
        ..ChaosConfig::default()
    };
    let report = run_chaos(&cfg).expect("soak runs");
    assert!(
        report.exactly_once(),
        "lost={} duplicated={} unfinished={:?} mismatches={:?}",
        report.lost_rows,
        report.duplicated_rows,
        report.unfinished_files,
        report.mismatches
    );
    // The crash-on-flush downed the server at least once and the load
    // still converged through log recovery + journal resume.
    assert!(report.restarts >= 1, "crash-on-flush never fired");
    // The plan exercised a genuinely multi-kind schedule.
    assert!(
        report.fault_kinds_fired() >= 4,
        "want >= 4 distinct fault kinds, got {:?}",
        report.faults_by_kind
    );
    assert!(
        *report.faults_by_kind.get("crash_on_flush").unwrap_or(&0) >= 1,
        "{:?}",
        report.faults_by_kind
    );
    // The client-side resilience layer did real work.
    assert!(report.retries > 0);
}

#[test]
fn killed_loader_hands_its_file_to_the_fleet_exactly_once() {
    // A loader is killed mid-file on the very first lease grant, on top
    // of the full connection-fault weather. The file's lease must expire
    // and be reclaimed (>= 1 reclaim), another loader must finish the
    // file from the journal watermark, and every loadable row must land
    // exactly once — on three distinct fixed seeds.
    for seed in [2005u64, 11, 77] {
        let cfg = ChaosConfig {
            seed,
            files: 4,
            nodes: 2,
            quick: true,
            loader_kill_at: Some(1),
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg).expect("soak runs");
        assert!(
            report.exactly_once(),
            "seed {seed}: lost={} duplicated={} unfinished={:?} mismatches={:?}",
            report.lost_rows,
            report.duplicated_rows,
            report.unfinished_files,
            report.mismatches
        );
        assert!(
            report.loader_kills >= 1,
            "seed {seed}: the loader kill never fired"
        );
        assert!(
            report.lease_reclaims >= 1,
            "seed {seed}: the killed loader's lease was never reclaimed"
        );
        assert!(
            *report.faults_by_kind.get("loader_kill").unwrap_or(&0) >= 1,
            "seed {seed}: {:?}",
            report.faults_by_kind
        );
    }
}

#[test]
fn chaos_schedule_is_a_pure_function_of_the_seed() {
    // Single-node soaks are fully deterministic end to end: the fault
    // counters, retry counts and generation structure must be identical
    // across runs with the same seed, and must diverge across seeds.
    let run = |seed| {
        run_chaos(&ChaosConfig {
            seed,
            files: 3,
            nodes: 1,
            error_rate: 0.02,
            quick: true,
            ..ChaosConfig::default()
        })
        .expect("soak runs")
    };
    let a = run(77);
    let b = run(77);
    assert_eq!(a.faults_by_kind, b.faults_by_kind);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.breaker_trips, b.breaker_trips);
    assert_eq!(a.generations, b.generations);
    assert_eq!(a.restarts, b.restarts);
    assert!(a.exactly_once());

    let c = run(78);
    assert!(
        c.faults_by_kind != a.faults_by_kind || c.retries != a.retries,
        "different seeds produced an identical schedule"
    );
}
