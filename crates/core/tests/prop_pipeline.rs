//! Property tests for the pipelined (double-buffered) loading mode: for ANY
//! workload shape, tuning, and even ANY injected connection-fault schedule,
//! `PipelineMode::Double` must be observationally identical to serial mode —
//! same rows committed per table, same skip counts per kind, and the same
//! journal state when a load dies mid-flight. Both modes drive the same
//! flush worker, so their wire-call sequences (and therefore the fault's
//! landing point) line up call-for-call.

use proptest::prelude::*;
use std::sync::Arc;

use skycat::gen::{generate_file, GenConfig};
use skydb::{DbConfig, Server};
use skyloader::{
    load_catalog_file, load_catalog_text_with_journal, CommitPolicy, LoadJournal, LoaderConfig,
    PipelineMode,
};

fn fresh_server() -> Arc<Server> {
    let server = Server::start(DbConfig::test());
    skycat::create_all(server.engine()).unwrap();
    skycat::seed_static(server.engine()).unwrap();
    skycat::seed_observation(server.engine(), 1, 100).unwrap();
    server
}

fn gen_config(seed: u64, error_pct: u32, presorted: bool) -> GenConfig {
    GenConfig {
        seed,
        obs_id: 100,
        files: 1,
        ccds_per_file: 2,
        frames_per_ccd: 2,
        objects_per_frame: 25,
        error_rate: error_pct as f64 / 100.0,
        presorted,
        size_skew: 0.0,
    }
}

/// Row counts for every catalog table actually present on the server.
fn table_counts(server: &Server) -> Vec<(String, u64)> {
    skycat::CATALOG_TABLES
        .iter()
        .map(|t| {
            let tid = server.engine().table_id(t).unwrap();
            ((*t).to_owned(), server.engine().row_count(tid))
        })
        .collect()
}

proptest! {
    // Each case loads full files through the wire in both modes; keep the
    // case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Clean-shutdown equivalence, fuzzed over workload and tuning knobs.
    #[test]
    fn pipelined_path_is_observationally_identical(
        seed in any::<u64>(),
        error_pct in 0u32..25,
        batch in 1usize..70,
        array in prop::sample::select(vec![70usize, 150, 400]),
        presorted in any::<bool>(),
    ) {
        prop_assume!(batch <= array);
        let file = generate_file(&gen_config(seed, error_pct, presorted), 0);
        let base = LoaderConfig::test()
            .with_batch_size(batch)
            .with_array_size(array);
        let run = |cfg: &LoaderConfig| {
            let server = fresh_server();
            let report = load_catalog_file(&server.connect(), cfg, &file).unwrap();
            (report, table_counts(&server))
        };
        let (serial, serial_counts) = run(&base);
        let (piped, piped_counts) =
            run(&base.clone().with_pipeline(PipelineMode::Double));

        prop_assert_eq!(serial.rows_loaded, piped.rows_loaded);
        prop_assert_eq!(serial.rows_skipped, piped.rows_skipped);
        prop_assert_eq!(&serial.loaded_by_table, &piped.loaded_by_table);
        prop_assert_eq!(&serial.skipped_by_kind, &piped.skipped_by_kind);
        prop_assert_eq!(serial.batch_calls, piped.batch_calls);
        prop_assert_eq!(serial.commits, piped.commits);
        prop_assert_eq!(serial_counts, piped_counts);
        // And both match the generator's ground truth.
        prop_assert_eq!(piped.rows_loaded, file.expected.total_loadable());
    }

    /// Crash equivalence: with a connection fault injected on the N-th
    /// client call, both modes must fail at the same point, leave the same
    /// journal checkpoint, and — after a faultless resume — converge to the
    /// same exact repository.
    #[test]
    fn pipelined_and_serial_fail_identically(
        seed in any::<u64>(),
        error_pct in 0u32..15,
        every in 5u64..60,
    ) {
        let file = generate_file(&gen_config(seed, error_pct, false), 0);
        let cfg_serial = LoaderConfig::test()
            .with_array_size(150)
            .with_batch_size(25)
            .with_commit_policy(CommitPolicy::PerFlush);
        let cfg_piped = cfg_serial.clone().with_pipeline(PipelineMode::Double);

        let run = |cfg: &LoaderConfig| {
            let server = fresh_server();
            let journal = LoadJournal::default();
            server.inject_call_faults(every);
            let session = server.connect();
            let outcome =
                load_catalog_text_with_journal(&session, cfg, &file.name, &file.text, &journal);
            let failed = outcome.is_err();
            let checkpoint = journal.committed_lines(&file.name);
            let counts_at_failure = table_counts(&server);
            // Faultless resume from the journal, after rolling back the
            // wounded transaction — what parallel.rs's retry loop does.
            server.inject_call_faults(0);
            session.rollback().unwrap();
            let resumed =
                load_catalog_text_with_journal(&session, cfg, &file.name, &file.text, &journal)
                    .unwrap();
            (failed, checkpoint, counts_at_failure, resumed, table_counts(&server))
        };

        let (s_failed, s_checkpoint, s_counts, s_resumed, s_final) = run(&cfg_serial);
        let (p_failed, p_checkpoint, p_counts, p_resumed, p_final) = run(&cfg_piped);

        // Identical failure point and post-crash state…
        prop_assert_eq!(s_failed, p_failed);
        prop_assert_eq!(s_checkpoint, p_checkpoint);
        prop_assert_eq!(s_counts, p_counts);
        // …identical resume…
        prop_assert_eq!(s_resumed.lines_resumed, p_resumed.lines_resumed);
        prop_assert_eq!(s_resumed.rows_loaded, p_resumed.rows_loaded);
        prop_assert_eq!(&s_resumed.skipped_by_kind, &p_resumed.skipped_by_kind);
        // …and an exact repository at the end.
        prop_assert_eq!(&s_final, &p_final);
        for (table, expect) in &file.expected.loadable {
            let got = p_final
                .iter()
                .find(|(t, _)| t.as_str() == *table)
                .map(|(_, n)| *n)
                .unwrap_or(0);
            prop_assert_eq!(got, *expect, "row count mismatch for {}", table);
        }
    }
}
