//! Property tests for the Fig. 3 bulk-loading recovery invariant: for ANY
//! pattern of corrupt rows and ANY batch/array sizing, the loader commits
//! exactly the loadable rows — no loss, no duplication — and its call
//! count obeys the paper's bounds.

use proptest::prelude::*;
use std::sync::Arc;

use skycat::gen::{generate_file, GenConfig};
use skydb::{DbConfig, Server};
use skyloader::{load_catalog_file, LoaderConfig};

fn fresh_server() -> Arc<Server> {
    let server = Server::start(DbConfig::test());
    skycat::create_all(server.engine()).unwrap();
    skycat::seed_static(server.engine()).unwrap();
    skycat::seed_observation(server.engine(), 1, 100).unwrap();
    server
}

proptest! {
    // Each case loads a full file through the wire; keep the case count
    // moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The central invariant, fuzzed over workload shape and tuning knobs.
    #[test]
    fn loader_commits_exactly_the_loadable_rows(
        seed in any::<u64>(),
        error_pct in 0u32..25,
        batch in 1usize..70,
        array in prop::sample::select(vec![70usize, 150, 400, 1000]),
        presorted in any::<bool>(),
    ) {
        prop_assume!(batch <= array);
        let file = generate_file(
            &GenConfig {
                seed,
                obs_id: 100,
                files: 1,
                ccds_per_file: 2,
                frames_per_ccd: 2,
                objects_per_frame: 25,
                error_rate: error_pct as f64 / 100.0,
                presorted,
                size_skew: 0.0,
            },
            0,
        );
        let server = fresh_server();
        let session = server.connect();
        let cfg = LoaderConfig::test()
            .with_batch_size(batch)
            .with_array_size(array);
        let report = load_catalog_file(&session, &cfg, &file).unwrap();

        // Exactness.
        prop_assert_eq!(report.rows_loaded, file.expected.total_loadable());
        prop_assert_eq!(
            report.rows_skipped,
            file.expected.total_emitted() - file.expected.total_loadable()
        );
        for (table, expect) in &file.expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            prop_assert_eq!(server.engine().row_count(tid), *expect, "{}", table);
        }

        // §4.2 call bounds: at least ceil(N/batch); at most one extra call
        // per database error plus one partial batch per table per cycle.
        let n = report.rows_loaded + report.rows_skipped;
        let db_errors: u64 = report
            .skipped_by_kind
            .iter()
            .filter(|(k, _)| !matches!(**k, "parse" | "transform"))
            .map(|(_, v)| v)
            .sum();
        let min_calls = report.rows_loaded.div_ceil(batch as u64);
        let max_calls = n.div_ceil(batch as u64)
            + db_errors
            + (report.cycles + 1) * skycat::CATALOG_TABLES.len() as u64;
        prop_assert!(report.batch_calls >= min_calls,
            "calls {} below minimum {}", report.batch_calls, min_calls);
        prop_assert!(report.batch_calls <= max_calls,
            "calls {} above maximum {}", report.batch_calls, max_calls);
    }

    /// Singleton mode commits the same rows as bulk mode for any workload.
    #[test]
    fn singleton_and_bulk_agree(seed in any::<u64>(), error_pct in 0u32..20) {
        let file = generate_file(
            &GenConfig::small(seed, 100).with_error_rate(error_pct as f64 / 100.0),
            0,
        );
        let bulk_server = fresh_server();
        let bulk = load_catalog_file(
            &bulk_server.connect(),
            &LoaderConfig::test(),
            &file,
        )
        .unwrap();
        let single_server = fresh_server();
        let single = load_catalog_file(
            &single_server.connect(),
            &LoaderConfig::non_bulk(),
            &file,
        )
        .unwrap();
        prop_assert_eq!(bulk.rows_loaded, single.rows_loaded);
        prop_assert_eq!(bulk.rows_skipped, single.rows_skipped);
        prop_assert_eq!(&bulk.loaded_by_table, &single.loaded_by_table);
    }
}
