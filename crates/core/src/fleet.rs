//! Loader-fleet supervision: lease-fenced dynamic assignment.
//!
//! §4.4's dynamic on-the-fly assignment trusted every Condor node to either
//! finish its file or die loudly. Real fleets misbehave in two quieter
//! ways: a node is **killed** mid-file (Condor evicts the job, the machine
//! reboots) and never reports back, or it **stalls** (GC pause, NFS hang,
//! network partition) long enough to be presumed dead — then wakes up as a
//! *zombie* and keeps flushing rows for a file that has been reassigned.
//!
//! This module closes both holes with a classic lease + fencing design:
//!
//! * every file grant is a [`Lease`] carrying a per-file **epoch** and a
//!   TTL; the holder renews it via [`FleetSupervisor::heartbeat`];
//! * the supervisor reclaims expired leases, bumps the epoch, advances the
//!   server-side fence floor for the file, and requeues it;
//! * every mutating call a loader makes is fenced by its lease epoch
//!   ([`skydb::wire::Fence`]), so a revived zombie's flushes are rejected
//!   at the session layer with [`DbError::FencedOut`] before any row
//!   lands — the new holder's work is never interleaved with stale writes;
//! * exactly-once delivery is preserved by the existing journal watermark:
//!   the reassigned loader resumes past whatever the dead holder committed,
//!   and the journal's per-file epoch manifest
//!   ([`LoadJournal::record_epoch`](crate::recovery::LoadJournal::record_epoch))
//!   lets a restarted coordinator issue strictly newer epochs.
//!
//! Two per-file budgets bound reassignment, replacing an unbounded
//! requeue loop: a tight **reclaim** budget for leases that expire (a
//! file whose holders keep dying is cursed) and a larger **requeue**
//! budget for voluntary returns (breaker trips are ordinary weather on a
//! flaky link and must not exhaust the crash-recovery budget).

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A granted right to load one file: valid only while the supervisor's
/// lease for `file_idx` still carries this `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Index of the file in the night's file list.
    pub file_idx: usize,
    /// Stable fencing key for the file (shared by every epoch of it).
    pub key: u64,
    /// This grant's epoch; the server's fence floor for `key` equals the
    /// newest reclaimed-or-granted epoch, so stale holders are rejected.
    pub epoch: u64,
}

/// What [`FleetSupervisor::next_assignment`] hands a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Load this file under this lease.
    Grant(Lease),
    /// Nothing grantable right now, but leases are outstanding — poll
    /// again shortly (one of them may expire and requeue its file).
    Wait,
    /// Every file is completed or abandoned; the worker may exit.
    Done,
}

/// Lease-TTL / heartbeat / reclaim knobs for the fleet supervisor.
///
/// Serialized with the loader configuration; every field has a default so
/// configuration files written before this layer existed stay valid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct FleetPolicy {
    /// How long a grant stays valid without a heartbeat. Expired leases
    /// are reclaimed: epoch bumped, fence advanced, file requeued.
    #[serde(with = "duration_micros", default = "default_lease_ttl")]
    pub lease_ttl: Duration,
    /// How often a healthy holder renews its lease. Must be shorter than
    /// the TTL (by enough slack to absorb scheduling hiccups).
    #[serde(with = "duration_micros", default = "default_heartbeat_interval")]
    pub heartbeat_interval: Duration,
    /// How many times one file's lease may expire (holder presumed dead)
    /// before the file is reported failed.
    #[serde(default = "default_max_reclaims")]
    pub max_reclaims_per_file: u64,
    /// How many times one file may be voluntarily returned (circuit
    /// breaker tripped, connection quarantined) before it is reported
    /// failed. Returns are part of healthy retry traffic on a flaky
    /// link, so this budget is much larger than the reclaim budget.
    #[serde(default = "default_max_requeues")]
    pub max_requeues_per_file: u64,
}

fn default_lease_ttl() -> Duration {
    FleetPolicy::default().lease_ttl
}

fn default_heartbeat_interval() -> Duration {
    FleetPolicy::default().heartbeat_interval
}

fn default_max_reclaims() -> u64 {
    FleetPolicy::default().max_reclaims_per_file
}

fn default_max_requeues() -> u64 {
    FleetPolicy::default().max_requeues_per_file
}

impl Default for FleetPolicy {
    fn default() -> Self {
        FleetPolicy {
            lease_ttl: Duration::from_secs(30),
            heartbeat_interval: Duration::from_secs(10),
            max_reclaims_per_file: 8,
            max_requeues_per_file: 64,
        }
    }
}

impl FleetPolicy {
    /// Builder: lease TTL.
    pub fn with_lease_ttl(mut self, ttl: Duration) -> Self {
        self.lease_ttl = ttl;
        self
    }

    /// Builder: heartbeat interval.
    pub fn with_heartbeat_interval(mut self, hb: Duration) -> Self {
        self.heartbeat_interval = hb;
        self
    }

    /// Builder: per-file reclaim budget.
    pub fn with_max_reclaims(mut self, n: u64) -> Self {
        self.max_reclaims_per_file = n;
        self
    }

    /// Builder: per-file voluntary-requeue budget.
    pub fn with_max_requeues(mut self, n: u64) -> Self {
        self.max_requeues_per_file = n;
        self
    }

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.lease_ttl.is_zero() {
            return Err("fleet.lease_ttl must be positive".into());
        }
        if self.heartbeat_interval >= self.lease_ttl {
            return Err("fleet.heartbeat_interval must be shorter than lease_ttl".into());
        }
        if self.max_reclaims_per_file == 0 {
            return Err("fleet.max_reclaims_per_file must be positive".into());
        }
        if self.max_requeues_per_file == 0 {
            return Err("fleet.max_requeues_per_file must be positive".into());
        }
        Ok(())
    }
}

mod duration_micros {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        (d.as_micros() as u64).serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        Ok(Duration::from_micros(u64::deserialize(d)?))
    }
}

/// Stable fencing key for a file name: the key must survive coordinator
/// restarts (a new process must advance the *same* server-side floor), so
/// it is derived from the name, not from queue position.
pub fn fence_key(name: &str) -> u64 {
    // FNV-1a, 64-bit: tiny, dependency-free, stable across runs.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Why a lease ended without its file completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeaseEnd {
    /// TTL expired without a heartbeat: holder presumed dead.
    Expired,
    /// Holder gave the file back (e.g. its circuit breaker tripped).
    Returned,
}

/// A file the supervisor gave up on: its reclaim budget is spent.
#[derive(Debug, Clone)]
pub struct AbandonedFile {
    /// Index into the night's file list.
    pub file_idx: usize,
    /// Human-readable reason for the report's failed-files list.
    pub reason: String,
}

#[derive(Debug)]
struct FileState {
    /// Fencing key (stable hash of the file name).
    key: u64,
    /// Last epoch issued for this file (0 = never granted; restarts seed
    /// this from the journal manifest so new grants are strictly newer).
    epoch: u64,
    /// Node index currently holding the lease, if any.
    holder: Option<usize>,
    /// Wall-clock instant the current lease expires.
    deadline: Option<Instant>,
    /// How many times this file's lease expired (holder presumed dead).
    reclaims: u64,
    /// How many times the holder voluntarily returned the file.
    returns: u64,
    done: bool,
}

#[derive(Debug)]
struct SupervisorInner {
    queue: VecDeque<usize>,
    states: Vec<FileState>,
    /// Leases currently held (granted, not yet completed/reclaimed).
    outstanding: usize,
    /// Files whose reclaim budget ran out.
    abandoned: Vec<AbandonedFile>,
}

/// The coordinator-side lease table for one night's file list.
///
/// Thread-safe: workers call [`next_assignment`](Self::next_assignment) /
/// [`heartbeat`](Self::heartbeat) / [`complete`](Self::complete)
/// concurrently. Fence floors are pushed to the database through the
/// `advance_fence` callback at grant and reclaim time, so a reclaimed
/// holder's epoch is invalid *before* its file can be re-granted.
pub struct FleetSupervisor {
    policy: FleetPolicy,
    inner: Mutex<SupervisorInner>,
    grants: skyobs::CounterHandle,
    reclaims: skyobs::CounterHandle,
    advance_fence: Box<dyn Fn(u64, u64) + Send + Sync>,
}

impl std::fmt::Debug for FleetSupervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSupervisor")
            .field("policy", &self.policy)
            .field("grants", &self.grants.get())
            .field("reclaims", &self.reclaims.get())
            .finish_non_exhaustive()
    }
}

impl FleetSupervisor {
    /// Build a supervisor over `files` (name, initial epoch) pairs. The
    /// initial epoch is the newest epoch ever issued for the file (from
    /// the journal manifest, max-merged with the server's fence floor);
    /// the first grant uses `initial + 1`. `advance_fence` pushes
    /// `(key, min_valid_epoch)` to the database server.
    pub fn new(
        files: &[(String, u64)],
        policy: FleetPolicy,
        advance_fence: impl Fn(u64, u64) + Send + Sync + 'static,
    ) -> FleetSupervisor {
        FleetSupervisor::new_with_obs(files, policy, advance_fence, &skyobs::Registry::new())
    }

    /// Like [`FleetSupervisor::new`], but registering the grant/reclaim
    /// counters in `obs` (`fleet.grants` / `fleet.reclaims`) so the
    /// coordinator's registry snapshot covers the fleet.
    pub fn new_with_obs(
        files: &[(String, u64)],
        policy: FleetPolicy,
        advance_fence: impl Fn(u64, u64) + Send + Sync + 'static,
        obs: &skyobs::Registry,
    ) -> FleetSupervisor {
        let states = files
            .iter()
            .map(|(name, epoch)| FileState {
                key: fence_key(name),
                epoch: *epoch,
                holder: None,
                deadline: None,
                reclaims: 0,
                returns: 0,
                done: false,
            })
            .collect();
        FleetSupervisor {
            policy,
            inner: Mutex::new(SupervisorInner {
                queue: (0..files.len()).collect(),
                states,
                outstanding: 0,
                abandoned: Vec::new(),
            }),
            grants: obs.counter("fleet.grants"),
            reclaims: obs.counter("fleet.reclaims"),
            advance_fence: Box::new(advance_fence),
        }
    }

    /// Claim the next file for `node`. Runs expired-lease reclamation
    /// first, so a single surviving worker still recovers files whose
    /// holders died (there is no separate supervisor thread to rely on).
    pub fn next_assignment(&self, node: usize) -> Assignment {
        let mut inner = self.inner.lock();
        self.reclaim_expired_locked(&mut inner, Instant::now());
        match inner.queue.pop_front() {
            Some(idx) => {
                let ttl = self.policy.lease_ttl;
                let st = &mut inner.states[idx];
                st.epoch += 1;
                st.holder = Some(node);
                st.deadline = Some(Instant::now() + ttl);
                let lease = Lease {
                    file_idx: idx,
                    key: st.key,
                    epoch: st.epoch,
                };
                inner.outstanding += 1;
                self.grants.inc();
                // Granting epoch e makes e the floor: every older epoch is
                // fenced out from this moment, the holder itself passes.
                (self.advance_fence)(lease.key, lease.epoch);
                Assignment::Grant(lease)
            }
            None if inner.outstanding > 0 => Assignment::Wait,
            None => Assignment::Done,
        }
    }

    /// Renew `lease`. Returns `false` if the lease is no longer held by
    /// this grant (expired and reclaimed, or the file completed) — the
    /// caller must stop working on the file and discard its transaction.
    pub fn heartbeat(&self, lease: &Lease) -> bool {
        let mut inner = self.inner.lock();
        let ttl = self.policy.lease_ttl;
        let st = &mut inner.states[lease.file_idx];
        if st.epoch == lease.epoch && st.holder.is_some() {
            st.deadline = Some(Instant::now() + ttl);
            true
        } else {
            false
        }
    }

    /// True once `lease` has been reclaimed (its file re-granted or
    /// requeued under a newer epoch). Drives expiry itself, so a zombie
    /// polling this converges even when every other worker is busy.
    pub fn lease_lost(&self, lease: &Lease) -> bool {
        let mut inner = self.inner.lock();
        self.reclaim_expired_locked(&mut inner, Instant::now());
        let st = &inner.states[lease.file_idx];
        st.epoch != lease.epoch || st.holder.is_none()
    }

    /// The holder finished its file (successfully or by reporting a
    /// permanent failure itself). Ignored if the lease was already
    /// reclaimed — the newer holder owns the outcome.
    pub fn complete(&self, lease: &Lease) {
        let mut inner = self.inner.lock();
        let st = &mut inner.states[lease.file_idx];
        if st.epoch == lease.epoch && st.holder.is_some() {
            st.holder = None;
            st.deadline = None;
            st.done = true;
            inner.outstanding -= 1;
        }
    }

    /// The holder voluntarily gives the file back (circuit breaker
    /// tripped, connection quarantined): requeue it under a bumped fence
    /// so the stale session cannot touch it, charging the requeue budget
    /// (not the reclaim budget — the holder is alive and cooperative).
    pub fn requeue(&self, lease: &Lease) {
        let mut inner = self.inner.lock();
        let st = &mut inner.states[lease.file_idx];
        if st.epoch == lease.epoch && st.holder.is_some() {
            self.end_lease_locked(&mut inner, lease.file_idx, LeaseEnd::Returned);
        }
    }

    /// Total grants issued (every assignment, including re-grants).
    pub fn grants(&self) -> u64 {
        self.grants.get()
    }

    /// Total leases reclaimed after TTL expiry (not voluntary requeues).
    pub fn reclaims(&self) -> u64 {
        self.reclaims.get()
    }

    /// Files abandoned because their reclaim budget ran out.
    pub fn take_abandoned(&self) -> Vec<AbandonedFile> {
        std::mem::take(&mut self.inner.lock().abandoned)
    }

    /// The newest epoch issued for each file, for the journal manifest.
    pub fn epochs(&self) -> Vec<u64> {
        self.inner.lock().states.iter().map(|s| s.epoch).collect()
    }

    fn reclaim_expired_locked(&self, inner: &mut SupervisorInner, now: Instant) {
        let expired: Vec<usize> = inner
            .states
            .iter()
            .enumerate()
            .filter(|(_, st)| st.holder.is_some() && st.deadline.map(|d| d <= now).unwrap_or(false))
            .map(|(i, _)| i)
            .collect();
        for idx in expired {
            self.end_lease_locked(inner, idx, LeaseEnd::Expired);
        }
    }

    /// Terminate the current lease on `idx`: advance the fence past its
    /// epoch, then requeue the file or abandon it if the budget is spent.
    fn end_lease_locked(&self, inner: &mut SupervisorInner, idx: usize, how: LeaseEnd) {
        let st = &mut inner.states[idx];
        st.holder = None;
        st.deadline = None;
        // Invalidate the dead holder's epoch *now*, before any re-grant:
        // from this point its flushes are fenced out at the server.
        (self.advance_fence)(st.key, st.epoch + 1);
        // Expiry reclaims (a presumed-dead holder) and voluntary returns
        // (a quarantined connection handing the file back) draw on
        // separate budgets: returns are healthy retry traffic on a flaky
        // link and must not starve a file of its crash-recovery budget.
        let (spent, budget, what) = match how {
            LeaseEnd::Expired => {
                st.reclaims += 1;
                self.reclaims.inc();
                (st.reclaims, self.policy.max_reclaims_per_file, "reclaimed")
            }
            LeaseEnd::Returned => {
                st.returns += 1;
                (st.returns, self.policy.max_requeues_per_file, "requeued")
            }
        };
        inner.outstanding -= 1;
        if spent >= budget {
            inner.abandoned.push(AbandonedFile {
                file_idx: idx,
                reason: format!("lease {what} {budget} times (budget exhausted)"),
            });
        } else {
            inner.queue.push_back(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn policy_ms(ttl: u64) -> FleetPolicy {
        FleetPolicy::default()
            .with_lease_ttl(Duration::from_millis(ttl))
            .with_heartbeat_interval(Duration::from_millis(ttl / 3))
    }

    fn files(names: &[&str]) -> Vec<(String, u64)> {
        names.iter().map(|n| ((*n).to_owned(), 0)).collect()
    }

    type FenceLog = Arc<Mutex<Vec<(u64, u64)>>>;

    /// Record every fence advance for assertions.
    fn recording() -> (FenceLog, impl Fn(u64, u64)) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let log = Arc::clone(&log);
            move |k: u64, e: u64| log.lock().push((k, e))
        };
        (log, sink)
    }

    #[test]
    fn policy_defaults_validate_and_serde_roundtrip() {
        let p = FleetPolicy::default();
        p.validate().unwrap();
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<FleetPolicy>(&json).unwrap(), p);
        // Old configs without a fleet section still deserialize.
        assert_eq!(serde_json::from_str::<FleetPolicy>("{}").unwrap(), p);
    }

    #[test]
    fn policy_invariants_enforced() {
        assert!(FleetPolicy::default()
            .with_lease_ttl(Duration::ZERO)
            .validate()
            .is_err());
        assert!(FleetPolicy::default()
            .with_heartbeat_interval(Duration::from_secs(30))
            .validate()
            .is_err());
        assert!(FleetPolicy::default()
            .with_max_reclaims(0)
            .validate()
            .is_err());
    }

    #[test]
    fn fence_keys_are_stable_and_distinct() {
        assert_eq!(fence_key("night_001.cat"), fence_key("night_001.cat"));
        assert_ne!(fence_key("night_001.cat"), fence_key("night_002.cat"));
    }

    #[test]
    fn happy_path_grants_every_file_once_then_done() {
        let sup = FleetSupervisor::new(&files(&["a", "b"]), policy_ms(1000), |_, _| {});
        let Assignment::Grant(l1) = sup.next_assignment(0) else {
            panic!("expected grant")
        };
        let Assignment::Grant(l2) = sup.next_assignment(1) else {
            panic!("expected grant")
        };
        assert_eq!((l1.epoch, l2.epoch), (1, 1));
        assert!(sup.heartbeat(&l1));
        // Queue drained but leases outstanding: workers wait, not exit.
        assert_eq!(sup.next_assignment(2), Assignment::Wait);
        sup.complete(&l1);
        sup.complete(&l2);
        assert_eq!(sup.next_assignment(0), Assignment::Done);
        assert_eq!(sup.grants(), 2);
        assert_eq!(sup.reclaims(), 0);
        assert!(sup.take_abandoned().is_empty());
    }

    #[test]
    fn expired_lease_is_reclaimed_fenced_and_regranted() {
        let (log, sink) = recording();
        let sup = FleetSupervisor::new(&files(&["a"]), policy_ms(30), sink);
        let Assignment::Grant(l1) = sup.next_assignment(0) else {
            panic!("expected grant")
        };
        assert_eq!(l1.epoch, 1);
        std::thread::sleep(Duration::from_millis(45));
        // The dead holder's lease is gone...
        assert!(sup.lease_lost(&l1));
        assert!(!sup.heartbeat(&l1), "reclaimed lease must not renew");
        // ...and the file is re-granted under a strictly newer epoch.
        let Assignment::Grant(l2) = sup.next_assignment(1) else {
            panic!("expected re-grant")
        };
        assert_eq!(l2.epoch, 2);
        assert_eq!(l2.key, l1.key);
        assert_eq!(sup.reclaims(), 1);
        // Fence floor advanced at grant(1), reclaim(2), re-grant(2):
        // monotone per key, and the reclaim fires before the re-grant.
        assert_eq!(
            log.lock().as_slice(),
            &[(l1.key, 1), (l1.key, 2), (l1.key, 2)]
        );
        // The late completion from the dead holder is ignored.
        sup.complete(&l1);
        assert_eq!(sup.next_assignment(2), Assignment::Wait);
        sup.complete(&l2);
        assert_eq!(sup.next_assignment(2), Assignment::Done);
    }

    #[test]
    fn heartbeats_keep_a_slow_lease_alive() {
        let sup = FleetSupervisor::new(&files(&["a"]), policy_ms(40), |_, _| {});
        let Assignment::Grant(l) = sup.next_assignment(0) else {
            panic!("expected grant")
        };
        for _ in 0..5 {
            std::thread::sleep(Duration::from_millis(15));
            assert!(sup.heartbeat(&l), "renewed lease must stay valid");
        }
        assert!(!sup.lease_lost(&l));
        sup.complete(&l);
        assert_eq!(sup.next_assignment(0), Assignment::Done);
        assert_eq!(sup.reclaims(), 0);
    }

    #[test]
    fn reclaim_budget_abandons_a_file_that_keeps_dying() {
        let sup = FleetSupervisor::new(
            &files(&["cursed"]),
            policy_ms(10).with_max_reclaims(3),
            |_, _| {},
        );
        for round in 0..3 {
            let Assignment::Grant(l) = sup.next_assignment(0) else {
                panic!("expected grant in round {round}")
            };
            assert_eq!(l.epoch, round + 1);
            std::thread::sleep(Duration::from_millis(15));
            assert!(sup.lease_lost(&l));
        }
        // Budget spent: the file is abandoned, not requeued forever.
        assert_eq!(sup.next_assignment(0), Assignment::Done);
        let abandoned = sup.take_abandoned();
        assert_eq!(abandoned.len(), 1);
        assert_eq!(abandoned[0].file_idx, 0);
        assert!(abandoned[0].reason.contains("budget"));
    }

    #[test]
    fn voluntary_requeue_bumps_epoch_without_counting_as_reclaim() {
        let (log, sink) = recording();
        let sup = FleetSupervisor::new(&files(&["a"]), policy_ms(1000), sink);
        let Assignment::Grant(l1) = sup.next_assignment(0) else {
            panic!("expected grant")
        };
        sup.requeue(&l1);
        assert_eq!(sup.reclaims(), 0, "voluntary return is not a reclaim");
        let Assignment::Grant(l2) = sup.next_assignment(1) else {
            panic!("expected re-grant")
        };
        assert_eq!(l2.epoch, 2);
        assert!(log.lock().contains(&(l1.key, 2)));
    }

    #[test]
    fn requeues_draw_on_their_own_budget_not_the_reclaim_budget() {
        // Many voluntary returns (breaker trips on a flaky link) must not
        // burn the crash-recovery budget: with max_reclaims = 2 the file
        // survives far more than 2 requeues and still completes.
        let sup = FleetSupervisor::new(
            &files(&["a"]),
            policy_ms(1000).with_max_reclaims(2).with_max_requeues(64),
            |_, _| {},
        );
        for _ in 0..20 {
            let Assignment::Grant(l) = sup.next_assignment(0) else {
                panic!("expected re-grant after a voluntary return")
            };
            sup.requeue(&l);
        }
        let Assignment::Grant(l) = sup.next_assignment(0) else {
            panic!("expected grant")
        };
        sup.complete(&l);
        assert_eq!(sup.next_assignment(0), Assignment::Done);
        assert!(sup.take_abandoned().is_empty());
        assert_eq!(sup.reclaims(), 0);
    }

    #[test]
    fn requeue_budget_still_bounds_a_file_no_connection_can_load() {
        let sup = FleetSupervisor::new(
            &files(&["cursed"]),
            policy_ms(1000).with_max_requeues(3),
            |_, _| {},
        );
        for _ in 0..3 {
            let Assignment::Grant(l) = sup.next_assignment(0) else {
                panic!("expected grant")
            };
            sup.requeue(&l);
        }
        assert_eq!(sup.next_assignment(0), Assignment::Done);
        let abandoned = sup.take_abandoned();
        assert_eq!(abandoned.len(), 1);
        assert!(abandoned[0].reason.contains("requeued"));
    }

    #[test]
    fn restart_epochs_resume_past_the_manifest() {
        // A restarted coordinator seeds epochs from the journal manifest:
        // grants must be strictly newer than anything issued before.
        let sup = FleetSupervisor::new(
            &[("a".into(), 4), ("b".into(), 0)],
            policy_ms(1000),
            |_, _| {},
        );
        let Assignment::Grant(la) = sup.next_assignment(0) else {
            panic!("expected grant")
        };
        let Assignment::Grant(lb) = sup.next_assignment(0) else {
            panic!("expected grant")
        };
        assert_eq!(la.epoch, 5);
        assert_eq!(lb.epoch, 1);
        assert_eq!(sup.epochs(), vec![5, 1]);
    }
}
