//! Season-scale reprocessing campaigns: shadow tables + atomic swap.
//!
//! [`crate::reprocess`] replaces one observation in place — readers see the
//! gap between purge and reload. A *campaign* re-derives a whole season
//! without ever exposing that gap: the re-extracted files are loaded into
//! **shadow tables** (`objects__c7`, …) behind the live ones while
//! [`skydb::serve::QueryService`] keeps answering from the live season,
//! then shadow and live are promoted in one atomic catalog name-swap
//! ([`skydb::engine::Engine::swap_tables`]) under the engine's lock order,
//! so every concurrent reader sees either the old season or the new one —
//! never a mix.
//!
//! The campaign's control state is a [`CampaignManifest`] persisted with
//! the same temp-write-then-rename discipline as the load journal: a crash
//! leaves either the previous manifest or the next, never a torn half.
//! [`resume_campaign`] re-drives an interrupted campaign from whatever
//! phase the manifest proves was reached; the shadow load itself resumes
//! exactly-once through the fenced loader fleet and its
//! [`crate::recovery::LoadJournal`]. A campaign also holds its own fence
//! epoch, so a zombie coordinator resumed elsewhere can neither swap nor
//! purge after a takeover.

use std::path::Path;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use skycat::CatalogFile;
use skydb::engine::Engine;
use skydb::error::{DbError, DbResult};
use skydb::fault::FaultKind;
use skydb::server::Server;
use skydb::wire::Fence;
use skydb::TableSchema;

use crate::config::LoaderConfig;
use crate::fleet::fence_key;
use crate::recovery::LoadJournal;

/// Where a campaign is in its life cycle. Ordering is meaningful: each
/// phase is persisted *before* the work it names begins (except the
/// terminal states, written after), so on recovery the manifest proves
/// "everything before this phase finished; this phase may be torn".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CampaignPhase {
    /// Manifest written; nothing touched yet.
    Planned,
    /// Shadow tables exist (empty or partially loaded).
    ShadowBuilt,
    /// Shadow load in progress (journal tracks per-file progress).
    Loading,
    /// Shadow load complete and verified; swap not yet started.
    Loaded,
    /// Swap initiated — the engine may or may not have applied it.
    Swapping,
    /// Swap applied; demoted season not yet purged.
    Swapped,
    /// Demoted rows purged; campaign finished.
    Cleaned,
    /// Campaign abandoned; shadow rows purged, live season untouched.
    RolledBack,
}

/// Durable control record of one campaign, saved atomically
/// (temp-write + rename) next to the load journal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Campaign number; also determines the shadow-table suffix.
    pub campaign_id: u64,
    /// Suffix appended to every catalog table name to form its shadow.
    pub suffix: String,
    /// Live table names being re-derived, in creation (parent-before-
    /// child) order — recovery needs this order to rebuild schemas.
    pub tables: Vec<String>,
    /// Last phase durably reached.
    pub phase: CampaignPhase,
}

impl CampaignManifest {
    /// Plan a new campaign over the full catalog-table set.
    pub fn new(campaign_id: u64) -> Self {
        CampaignManifest {
            campaign_id,
            suffix: format!("__c{campaign_id}"),
            tables: skycat::CATALOG_TABLES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            phase: CampaignPhase::Planned,
        }
    }

    /// Shadow name of a live table in this campaign.
    pub fn shadow_name(&self, live: &str) -> String {
        format!("{live}{}", self.suffix)
    }

    /// The live↔shadow swap pairs, in creation order.
    pub fn pairs(&self) -> Vec<(String, String)> {
        self.tables
            .iter()
            .map(|t| (t.clone(), self.shadow_name(t)))
            .collect()
    }

    /// Persist atomically: write a temporary sibling, then rename into
    /// place. A crash mid-save leaves the old manifest or the new one on
    /// disk — never a torn half of both.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("manifest.tmp");
        let json = serde_json::to_string_pretty(self).expect("manifest serializes");
        std::fs::write(&tmp, json)?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Load a manifest. A torn or hand-mangled file yields
    /// [`std::io::ErrorKind::InvalidData`]; recovery must refuse to act
    /// on it rather than guess a phase.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        serde_json::from_str(&s)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// What a campaign run (or resume) did.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignReport {
    /// Campaign number.
    pub campaign_id: u64,
    /// Shadow-table suffix used.
    pub suffix: String,
    /// Whether this run resumed an interrupted campaign.
    pub resumed: bool,
    /// Whether the swap was (re)applied or confirmed applied.
    pub swapped: bool,
    /// Whether the campaign was abandoned and the shadow purged.
    pub rolled_back: bool,
    /// Rows committed into the shadow season by this run.
    pub rows_loaded: u64,
    /// Rows skipped by per-row policy during the shadow load.
    pub rows_skipped: u64,
    /// Whole files that failed to load.
    pub failed_files: usize,
    /// Demoted (or abandoned-shadow) rows purged by this run.
    pub purged_rows: u64,
    /// Final phase reached.
    pub phase: CampaignPhase,
}

/// How to drive a campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign number (names the shadow tables and the fence key).
    pub campaign_id: u64,
    /// Parallel loader nodes for the shadow load.
    pub nodes: usize,
    /// Build the serve tier's cone index (`idx_objects_htmid`) on the
    /// shadow `objects` before swapping, so query latency does not
    /// collapse at promotion.
    pub build_htm_index: bool,
    /// Loader settings for the shadow load (`table_suffix` is set by the
    /// campaign; any caller-provided suffix is overwritten).
    pub loader: LoaderConfig,
}

impl CampaignConfig {
    /// Test/CI defaults.
    pub fn test(campaign_id: u64) -> Self {
        CampaignConfig {
            campaign_id,
            nodes: 2,
            build_htm_index: false,
            loader: LoaderConfig::test(),
        }
    }
}

/// The fence key guarding one campaign's swap and purge commits.
pub fn campaign_fence_key(campaign_id: u64) -> u64 {
    fence_key(&format!("campaign:{campaign_id}"))
}

/// Acquire the next campaign-coordinator epoch: bumps the fence floor
/// past every previous coordinator of this campaign.
pub fn acquire_campaign_fence(server: &Server, campaign_id: u64) -> Fence {
    let key = campaign_fence_key(campaign_id);
    let epoch = server.fence_floor(key) + 1;
    server.advance_fence(key, epoch);
    Fence { key, epoch }
}

/// Clone the catalog-table schemas into their shadow form: every name in
/// the set gets `suffix`, and foreign keys *within* the set are remapped
/// to the shadow parents. Keys pointing outside the set (the dimension
/// tables: `observations`, `ccd_chips`, `nights`, …) keep their live
/// parents — both seasons hang off the same dimensions.
pub fn shadow_schemas(suffix: &str) -> Vec<TableSchema> {
    skycat::build_schemas()
        .into_iter()
        .filter(|s| skycat::CATALOG_TABLES.contains(&s.name.as_str()))
        .map(|mut s| {
            s.name = format!("{}{suffix}", s.name);
            for fk in &mut s.foreign_keys {
                if skycat::CATALOG_TABLES.contains(&fk.parent_table.as_str()) {
                    fk.parent_table = format!("{}{suffix}", fk.parent_table);
                }
            }
            s
        })
        .collect()
}

/// Create the shadow tables (idempotent: tables that already exist — a
/// resumed campaign — are left alone).
pub fn create_shadow_tables(engine: &Engine, suffix: &str) -> DbResult<()> {
    for schema in shadow_schemas(suffix) {
        match engine.create_table(schema) {
            Ok(_) | Err(DbError::AlreadyExists(_)) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// `true` if the campaign's swap has already been applied to this engine.
///
/// Shadow tables are always created *after* the live catalog, so the
/// shadow physical table has the larger [`skydb::TableId`]. After the
/// name-rebind swap the *live* name binds the larger id. This probe makes
/// resume-at-`Swapping` sound against both crash models: a full server
/// crash recovers the engine unswapped from its log (probe says `false`,
/// resume redoes the swap), while a coordinator-only crash leaves the
/// swapped engine running (probe says `true`, resume skips to cleanup).
pub fn swap_applied(engine: &Engine, manifest: &CampaignManifest) -> DbResult<bool> {
    let live = &manifest.tables[0];
    let live_tid = engine.table_id(live)?;
    let shadow_tid = engine.table_id(&manifest.shadow_name(live))?;
    Ok(live_tid.index() > shadow_tid.index())
}

fn manifest_io(e: std::io::Error) -> DbError {
    if e.kind() == std::io::ErrorKind::InvalidData {
        DbError::Corruption(format!("campaign manifest torn or invalid: {e}"))
    } else {
        DbError::Protocol(format!("campaign manifest: {e}"))
    }
}

/// Purge every row of the given (shadow-named) tables child-before-parent
/// in one transaction, committing only if `fence` is still current.
fn purge_shadow_named(
    server: &Arc<Server>,
    manifest: &CampaignManifest,
    fence: &Fence,
) -> DbResult<u64> {
    let engine = server.engine();
    let txn = engine.begin();
    let mut purged = 0u64;
    for live in manifest.tables.iter().rev() {
        let tid = engine.table_id(&manifest.shadow_name(live))?;
        match engine.delete_where(txn, tid, None) {
            Ok(n) => purged += n,
            Err(e) => {
                engine.rollback(txn)?;
                return Err(e);
            }
        }
    }
    let floor = server.fence_floor(fence.key);
    if fence.epoch < floor {
        engine.rollback(txn)?;
        server.obs().counter("fleet.fence_rejections").inc();
        return Err(DbError::FencedOut(format!(
            "campaign {} purge holds epoch {} below floor {floor}",
            manifest.campaign_id, fence.epoch
        )));
    }
    engine.commit(txn)?;
    Ok(purged)
}

/// Run a new campaign end to end: build shadows, load the re-derived
/// season, swap atomically, purge the demoted rows. `manifest_path` is
/// the durable control record ([`resume_campaign`] restarts from it);
/// `journal` carries per-file exactly-once state across coordinator
/// crashes and must be distinct from any journal used for live loads of
/// the same file names.
pub fn run_campaign(
    server: &Arc<Server>,
    files: &[CatalogFile],
    cfg: &CampaignConfig,
    manifest_path: &Path,
    journal: Option<&LoadJournal>,
) -> DbResult<CampaignReport> {
    let manifest = CampaignManifest::new(cfg.campaign_id);
    manifest.save(manifest_path).map_err(manifest_io)?;
    drive_campaign(server, files, cfg, manifest, manifest_path, journal, false)
}

/// Resume an interrupted campaign from its manifest. The shadow load
/// continues exactly-once through the journal; a campaign that already
/// reached `Swapping`/`Swapped` is completed (swap redone if the engine
/// recovered unswapped, then cleanup); terminal phases are a no-op.
pub fn resume_campaign(
    server: &Arc<Server>,
    files: &[CatalogFile],
    cfg: &CampaignConfig,
    manifest_path: &Path,
    journal: Option<&LoadJournal>,
) -> DbResult<CampaignReport> {
    let manifest = CampaignManifest::load(manifest_path).map_err(manifest_io)?;
    if manifest.campaign_id != cfg.campaign_id {
        return Err(DbError::Protocol(format!(
            "manifest is for campaign {}, not {}",
            manifest.campaign_id, cfg.campaign_id
        )));
    }
    if matches!(
        manifest.phase,
        CampaignPhase::Cleaned | CampaignPhase::RolledBack
    ) {
        return Ok(CampaignReport {
            campaign_id: manifest.campaign_id,
            suffix: manifest.suffix.clone(),
            resumed: true,
            swapped: manifest.phase == CampaignPhase::Cleaned,
            rolled_back: manifest.phase == CampaignPhase::RolledBack,
            rows_loaded: 0,
            rows_skipped: 0,
            failed_files: 0,
            purged_rows: 0,
            phase: manifest.phase,
        });
    }
    server.obs().counter("campaign.resumes").inc();
    drive_campaign(server, files, cfg, manifest, manifest_path, journal, true)
}

/// Abandon a campaign that has not swapped: purge the shadow rows and
/// mark the manifest `RolledBack`. The live season is untouched.
pub fn roll_back_campaign(server: &Arc<Server>, manifest_path: &Path) -> DbResult<CampaignReport> {
    let mut manifest = CampaignManifest::load(manifest_path).map_err(manifest_io)?;
    if manifest.phase >= CampaignPhase::Swapping
        && manifest.phase != CampaignPhase::RolledBack
        && swap_applied(server.engine(), &manifest)?
    {
        return Err(DbError::Protocol(format!(
            "campaign {} has swapped; roll-back would tear the live season",
            manifest.campaign_id
        )));
    }
    let fence = acquire_campaign_fence(server, manifest.campaign_id);
    let purged = purge_shadow_named(server, &manifest, &fence)?;
    manifest.phase = CampaignPhase::RolledBack;
    manifest.save(manifest_path).map_err(manifest_io)?;
    let obs = server.obs();
    obs.counter("campaign.rollbacks").inc();
    obs.counter("campaign.deleted_rows").add(purged);
    Ok(CampaignReport {
        campaign_id: manifest.campaign_id,
        suffix: manifest.suffix.clone(),
        resumed: false,
        swapped: false,
        rolled_back: true,
        rows_loaded: 0,
        rows_skipped: 0,
        failed_files: 0,
        purged_rows: purged,
        phase: CampaignPhase::RolledBack,
    })
}

/// The state machine shared by [`run_campaign`] and [`resume_campaign`].
fn drive_campaign(
    server: &Arc<Server>,
    files: &[CatalogFile],
    cfg: &CampaignConfig,
    mut manifest: CampaignManifest,
    manifest_path: &Path,
    journal: Option<&LoadJournal>,
    resumed: bool,
) -> DbResult<CampaignReport> {
    let engine = server.engine();
    let obs = server.obs().clone();
    let fence = acquire_campaign_fence(server, manifest.campaign_id);
    let mut report = CampaignReport {
        campaign_id: manifest.campaign_id,
        suffix: manifest.suffix.clone(),
        resumed,
        swapped: false,
        rolled_back: false,
        rows_loaded: 0,
        rows_skipped: 0,
        failed_files: 0,
        purged_rows: 0,
        phase: manifest.phase,
    };
    let save = |m: &CampaignManifest| m.save(manifest_path).map_err(manifest_io);

    // ---- Phase: shadow tables --------------------------------------
    if manifest.phase < CampaignPhase::ShadowBuilt {
        create_shadow_tables(engine, &manifest.suffix)?;
        manifest.phase = CampaignPhase::ShadowBuilt;
        save(&manifest)?;
    } else {
        // Resume path: a recovered engine was rebuilt from schemas, so
        // the shadows exist; a surviving engine kept them. Idempotent.
        create_shadow_tables(engine, &manifest.suffix)?;
    }

    // ---- Phase: shadow load ----------------------------------------
    if manifest.phase < CampaignPhase::Loaded {
        manifest.phase = CampaignPhase::Loading;
        save(&manifest)?;
        let loader = cfg.loader.clone().with_table_suffix(&manifest.suffix);
        let night = crate::parallel::load_night_with_journal(
            server,
            files,
            &loader,
            cfg.nodes,
            skysim::cluster::AssignmentPolicy::Dynamic,
            journal,
        )
        .map_err(|e| DbError::Protocol(e.to_string()))?;
        report.rows_loaded = night.rows_loaded();
        report.rows_skipped = night.rows_skipped();
        report.failed_files = night.failed_files.len();
        obs.counter("campaign.shadow_rows").add(night.rows_loaded());
        if !night.is_complete() {
            // A season with whole files missing must not be promoted:
            // purge the shadow and leave the live season serving.
            let purged = purge_shadow_named(server, &manifest, &fence)?;
            manifest.phase = CampaignPhase::RolledBack;
            save(&manifest)?;
            obs.counter("campaign.rollbacks").inc();
            obs.counter("campaign.deleted_rows").add(purged);
            report.rolled_back = true;
            report.purged_rows = purged;
            report.phase = manifest.phase;
            return Ok(report);
        }
        if cfg.build_htm_index {
            // Same index name as the live table: index names are scoped
            // per table, and the serve tier looks `cone_index` up by name
            // on whatever table `objects` binds to — so the promoted
            // season must carry it under the same name.
            match engine.create_index(
                &manifest.shadow_name("objects"),
                "idx_objects_htmid",
                &["htmid"],
                false,
            ) {
                Ok(()) | Err(DbError::AlreadyExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        manifest.phase = CampaignPhase::Loaded;
        save(&manifest)?;
        report.phase = manifest.phase;
    }

    // ---- Phase: atomic swap ----------------------------------------
    if manifest.phase < CampaignPhase::Swapped {
        let need_swap = if manifest.phase == CampaignPhase::Swapping {
            // Crashed inside the swap window: decide from the engine.
            !swap_applied(engine, &manifest)?
        } else {
            true
        };
        if need_swap {
            // A zombie coordinator (fence taken over) must not swap.
            let floor = server.fence_floor(fence.key);
            if fence.epoch < floor {
                obs.counter("fleet.fence_rejections").inc();
                return Err(DbError::FencedOut(format!(
                    "campaign {} coordinator holds epoch {} below floor {floor}",
                    manifest.campaign_id, fence.epoch
                )));
            }
            manifest.phase = CampaignPhase::Swapping;
            save(&manifest)?;
            // Injected coordinator crash at the most dangerous point:
            // the manifest says Swapping but the engine has not swapped.
            if let Some(plan) = server.fault_plan() {
                if plan.decide_swap_fault().is_some() {
                    server.note_injected_fault(FaultKind::SwapCrash);
                    return Err(DbError::ServerDown(format!(
                        "campaign {}: injected SwapCrash at swap point",
                        manifest.campaign_id
                    )));
                }
            }
            engine.swap_tables(&manifest.pairs())?;
        }
        obs.counter("campaign.swaps").inc();
        manifest.phase = CampaignPhase::Swapped;
        save(&manifest)?;
    }
    report.swapped = true;
    report.phase = manifest.phase;

    // ---- Phase: purge the demoted season ---------------------------
    // Post-swap the shadow names bind the *old* physical tables.
    let purged = purge_shadow_named(server, &manifest, &fence)?;
    obs.counter("campaign.deleted_rows").add(purged);
    report.purged_rows = purged;
    manifest.phase = CampaignPhase::Cleaned;
    save(&manifest)?;
    report.phase = manifest.phase;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycat::gen::{generate_file, GenConfig};
    use skydb::DbConfig;
    use std::path::PathBuf;

    /// Unique scratch dir per test (no tempfile crate in the workspace).
    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("skyloader-campaign-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seeded_server() -> (Arc<Server>, CatalogFile) {
        let server = Server::start(DbConfig::test());
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        let v1 = generate_file(&GenConfig::small(801, 100), 0);
        let session = server.connect();
        crate::bulk::load_catalog_file(&session, &LoaderConfig::test(), &v1).unwrap();
        (server, v1)
    }

    #[test]
    fn campaign_swaps_new_season_in_and_purges_old() {
        let (server, v1) = seeded_server();
        let v2 = generate_file(&GenConfig::small(802, 100), 0);
        let dir = scratch("c7");
        let path = dir.join("c7.manifest");
        let report = run_campaign(
            &server,
            std::slice::from_ref(&v2),
            &CampaignConfig::test(7),
            &path,
            None,
        )
        .unwrap();
        assert!(report.swapped);
        assert_eq!(report.phase, CampaignPhase::Cleaned);
        assert_eq!(report.rows_loaded, v2.expected.total_loadable());
        assert_eq!(report.purged_rows, v1.expected.total_loadable());
        // Live names now serve the new season; shadow names are empty.
        let engine = server.engine();
        for (table, expect) in &v2.expected.loadable {
            let tid = engine.table_id(table).unwrap();
            assert_eq!(engine.row_count(tid), *expect, "{table}");
            let shadow = engine.table_id(&format!("{table}__c7")).unwrap();
            assert_eq!(engine.row_count(shadow), 0, "{table}__c7");
        }
        // Counters visible in the registry.
        let snap = server.obs_snapshot();
        assert_eq!(snap.counter("campaign.swaps"), 1);
        assert_eq!(
            snap.counter("campaign.shadow_rows"),
            v2.expected.total_loadable()
        );
        assert_eq!(
            snap.counter("campaign.deleted_rows"),
            v1.expected.total_loadable()
        );
        // The manifest records completion.
        let m = CampaignManifest::load(&path).unwrap();
        assert_eq!(m.phase, CampaignPhase::Cleaned);
    }

    #[test]
    fn shadow_schemas_remap_only_intra_set_fks() {
        let shadows = shadow_schemas("__c1");
        assert_eq!(shadows.len(), skycat::CATALOG_TABLES.len());
        for s in &shadows {
            assert!(s.name.ends_with("__c1"));
            for fk in &s.foreign_keys {
                let base = fk.parent_table.trim_end_matches("__c1");
                if skycat::CATALOG_TABLES.contains(&base) {
                    assert!(
                        fk.parent_table.ends_with("__c1"),
                        "{}.{} should point at shadow parent",
                        s.name,
                        fk.parent_table
                    );
                } else {
                    assert!(
                        !fk.parent_table.ends_with("__c1"),
                        "dimension parent {} must stay live",
                        fk.parent_table
                    );
                }
            }
        }
    }

    #[test]
    fn torn_manifest_is_refused_not_guessed() {
        let dir = scratch("torn");
        let path = dir.join("torn.manifest");
        std::fs::write(&path, "{\"campaign_id\": 3, \"suffix\": \"__c3\", \"tab").unwrap();
        let err = CampaignManifest::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let (server, _) = seeded_server();
        let err = resume_campaign(&server, &[], &CampaignConfig::test(3), &path, None).unwrap_err();
        assert!(matches!(err, DbError::Corruption(_)), "got {err}");
    }

    #[test]
    fn swap_crash_then_resume_completes_without_tearing() {
        use skydb::fault::{FaultPlan, FaultPlanConfig};
        let server = Server::start(DbConfig::test());
        server.set_fault_plan(Some(FaultPlan::new(
            FaultPlanConfig::new(99).with_swap_crash_at(1),
        )));
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        let v1 = generate_file(&GenConfig::small(803, 100), 0);
        let session = server.connect();
        crate::bulk::load_catalog_file(&session, &LoaderConfig::test(), &v1).unwrap();
        let v2 = generate_file(&GenConfig::small(804, 100), 0);
        let dir = scratch("c9");
        let path = dir.join("c9.manifest");
        let journal = LoadJournal::new();
        let err = run_campaign(
            &server,
            std::slice::from_ref(&v2),
            &CampaignConfig::test(9),
            &path,
            Some(&journal),
        )
        .unwrap_err();
        assert!(matches!(err, DbError::ServerDown(_)), "got {err}");
        // The manifest is torn open at Swapping; the live season still
        // serves v1 (the swap never applied).
        let m = CampaignManifest::load(&path).unwrap();
        assert_eq!(m.phase, CampaignPhase::Swapping);
        let objects = server.engine().table_id("objects").unwrap();
        assert_eq!(
            server.engine().row_count(objects),
            v1.expected.loadable["objects"]
        );
        // Resume: the journal says every line committed, the probe says
        // the swap is missing — it is redone, then cleanup runs.
        let report = resume_campaign(
            &server,
            std::slice::from_ref(&v2),
            &CampaignConfig::test(9),
            &path,
            Some(&journal),
        )
        .unwrap();
        assert!(report.resumed && report.swapped);
        assert_eq!(report.phase, CampaignPhase::Cleaned);
        assert_eq!(report.rows_loaded, 0, "journal prevents any re-commit");
        // The *name* now binds the promoted physical table — re-resolve.
        let objects = server.engine().table_id("objects").unwrap();
        assert_eq!(
            server.engine().row_count(objects),
            v2.expected.loadable["objects"]
        );
        let snap = server.obs_snapshot();
        assert_eq!(snap.counter("campaign.resumes"), 1);
        assert_eq!(snap.counter("server.faults.swap_crash"), 1);
    }

    #[test]
    fn zombie_coordinator_cannot_swap_after_takeover() {
        let (server, v1) = seeded_server();
        let v2 = generate_file(&GenConfig::small(805, 100), 0);
        let dir = scratch("c11");
        let path = dir.join("c11.manifest");
        // The zombie plans and loads its campaign…
        let manifest = CampaignManifest::new(11);
        manifest.save(&path).unwrap();
        // …then a takeover bumps the fence past it before it can swap.
        let zombie_fence = acquire_campaign_fence(&server, 11);
        let _takeover = acquire_campaign_fence(&server, 11);
        // Re-entering the state machine acquires a *fresh* fence, so to
        // model the zombie we drive with its stale fence directly: the
        // purge path must refuse to commit.
        create_shadow_tables(server.engine(), &manifest.suffix).unwrap();
        let err = purge_shadow_named(&server, &manifest, &zombie_fence).unwrap_err();
        assert!(matches!(err, DbError::FencedOut(_)), "got {err}");
        // Live season untouched throughout.
        let objects = server.engine().table_id("objects").unwrap();
        assert_eq!(
            server.engine().row_count(objects),
            v1.expected.loadable["objects"]
        );
        drop(v2);
    }

    #[test]
    fn rollback_purges_shadow_and_spares_live() {
        let (server, v1) = seeded_server();
        let v2 = generate_file(&GenConfig::small(806, 100), 0);
        let dir = scratch("c13");
        let path = dir.join("c13.manifest");
        // Load the shadow but stop before swapping (phase Loaded).
        let manifest = CampaignManifest::new(13);
        manifest.save(&path).unwrap();
        create_shadow_tables(server.engine(), &manifest.suffix).unwrap();
        let loader = LoaderConfig::test().with_table_suffix("__c13");
        let session = server.connect();
        crate::bulk::load_catalog_file(&session, &loader, &v2).unwrap();
        let mut m = CampaignManifest::load(&path).unwrap();
        m.phase = CampaignPhase::Loaded;
        m.save(&path).unwrap();

        let report = roll_back_campaign(&server, &path).unwrap();
        assert!(report.rolled_back);
        assert_eq!(report.purged_rows, v2.expected.total_loadable());
        let engine = server.engine();
        let objects = engine.table_id("objects").unwrap();
        assert_eq!(engine.row_count(objects), v1.expected.loadable["objects"]);
        let shadow = engine.table_id("objects__c13").unwrap();
        assert_eq!(engine.row_count(shadow), 0);
        assert_eq!(server.obs_snapshot().counter("campaign.rollbacks"), 1);
        // A rolled-back campaign refuses further resumes quietly.
        let again = resume_campaign(&server, &[], &CampaignConfig::test(13), &path, None).unwrap();
        assert!(again.rolled_back && !again.swapped);
    }
}
