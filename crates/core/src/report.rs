//! Load reports: per-file and per-night outcomes, skip accounting, and the
//! modeled-cost breakdown the experiments report.

use std::collections::BTreeMap;
use std::time::Duration;

use serde::Serialize;

use skydb::error::{ConstraintKind, DbError};
use skydb::server::Server;
use skyobs::Snapshot;

use crate::resilience::DegradeTransition;

/// Why a row was skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum SkipKind {
    /// The line could not be parsed (tag/field-count).
    Parse,
    /// The fields could not be transformed into a typed row.
    Transform,
    /// Duplicate primary key at the database.
    PrimaryKey,
    /// Missing foreign-key parent at the database.
    ForeignKey,
    /// Unique-constraint violation at the database.
    Unique,
    /// CHECK-constraint violation at the database.
    Check,
    /// NOT NULL violation at the database.
    NotNull,
    /// Type or arity error at the database.
    Type,
    /// Anything else.
    Other,
}

impl SkipKind {
    /// Classify a database error.
    pub fn from_db_error(e: &DbError) -> SkipKind {
        match e.constraint_kind() {
            Some(ConstraintKind::PrimaryKey) => SkipKind::PrimaryKey,
            Some(ConstraintKind::ForeignKey) => SkipKind::ForeignKey,
            Some(ConstraintKind::Unique) => SkipKind::Unique,
            Some(ConstraintKind::Check) => SkipKind::Check,
            Some(ConstraintKind::NotNull) => SkipKind::NotNull,
            None => match e {
                DbError::TypeMismatch { .. } | DbError::ArityMismatch { .. } => SkipKind::Type,
                _ => SkipKind::Other,
            },
        }
    }

    /// Stable label for report maps.
    pub fn label(self) -> &'static str {
        match self {
            SkipKind::Parse => "parse",
            SkipKind::Transform => "transform",
            SkipKind::PrimaryKey => "primary_key",
            SkipKind::ForeignKey => "foreign_key",
            SkipKind::Unique => "unique",
            SkipKind::Check => "check",
            SkipKind::NotNull => "not_null",
            SkipKind::Type => "type",
            SkipKind::Other => "other",
        }
    }
}

/// Detail of one skipped row (kept up to the config's cap).
#[derive(Debug, Clone, Serialize)]
pub struct SkipRecord {
    /// Destination table (or tag) of the skipped row.
    pub table: String,
    /// Zero-based line number in the source file, when known.
    pub line: Option<u64>,
    /// Why it was skipped.
    pub kind: SkipKind,
    /// Human-readable detail.
    pub reason: String,
}

/// Outcome of loading one catalog file.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FileReport {
    /// Source file name.
    pub file: String,
    /// Rows committed per table.
    pub loaded_by_table: BTreeMap<String, u64>,
    /// Skips per kind label.
    pub skipped_by_kind: BTreeMap<&'static str, u64>,
    /// Total rows committed.
    pub rows_loaded: u64,
    /// Total rows skipped (parse + transform + database).
    pub rows_skipped: u64,
    /// Batched database calls issued.
    pub batch_calls: u64,
    /// Singleton database calls issued.
    pub single_calls: u64,
    /// Commits issued.
    pub commits: u64,
    /// Bulk-loading cycles completed.
    pub cycles: u64,
    /// Bytes of catalog text consumed.
    pub bytes_read: u64,
    /// Wall-clock time on the loader.
    #[serde(with = "ser_duration")]
    pub elapsed: Duration,
    /// Modeled client paging time (Fig. 6's effect).
    #[serde(with = "ser_duration")]
    pub client_paging: Duration,
    /// Client page faults.
    pub client_faults: u64,
    /// Detailed skip records (capped).
    pub skip_details: Vec<SkipRecord>,
    /// Lines resumed past (when loading with a journal).
    pub lines_resumed: u64,
    /// Failed attempts retried before this file loaded (0 = first try).
    pub retries: u64,
    /// Modeled time in the parse stage: input lines × the configured
    /// client parse cost.
    #[serde(with = "ser_duration")]
    pub stage_parse: Duration,
    /// Modeled time in the flush stage: wire + server charges accrued
    /// while draining sealed array-sets (exact for a single-node load; on a
    /// shared server, concurrent loaders' charges bleed in).
    #[serde(with = "ser_duration")]
    pub stage_flush: Duration,
    /// Modeled time the two stages ran concurrently (zero for serial
    /// loads): `stage_parse + stage_flush + client_paging −
    /// modeled_makespan`.
    #[serde(with = "ser_duration")]
    pub stage_overlap: Duration,
    /// Modeled end-to-end time of this load. Serial mode chains every
    /// stage; `PipelineMode::Double` combines per-cycle stage times with
    /// the two-stage pipeline recurrence (see `bulk`).
    #[serde(with = "ser_duration")]
    pub modeled_makespan: Duration,
}

impl FileReport {
    /// Record a successfully loaded row.
    pub fn note_loaded(&mut self, table: &str, n: u64) {
        *self.loaded_by_table.entry(table.to_owned()).or_insert(0) += n;
        self.rows_loaded += n;
    }

    /// Record a skipped row.
    pub fn note_skipped(
        &mut self,
        cap: usize,
        table: &str,
        line: Option<u64>,
        kind: SkipKind,
        reason: String,
    ) {
        *self.skipped_by_kind.entry(kind.label()).or_insert(0) += 1;
        self.rows_skipped += 1;
        if self.skip_details.len() < cap {
            self.skip_details.push(SkipRecord {
                table: table.to_owned(),
                line,
                kind,
                reason,
            });
        }
    }

    /// Total database calls.
    pub fn total_calls(&self) -> u64 {
        self.batch_calls + self.single_calls
    }

    /// Modeled throughput in MB/s: bytes consumed over the modeled
    /// makespan. Comparable across `PipelineMode`s because both account the
    /// same stage charges; only the combining rule differs.
    pub fn modeled_throughput_mb_per_s(&self) -> f64 {
        if self.modeled_makespan.is_zero() {
            return 0.0;
        }
        (self.bytes_read as f64 / 1e6) / self.modeled_makespan.as_secs_f64()
    }
}

/// A file that could not be loaded within the retry/requeue budget.
#[derive(Debug, Clone, Serialize)]
pub struct FailedFile {
    /// Source file name.
    pub file: String,
    /// The last error observed for it.
    pub error: String,
}

/// Outcome of loading a whole observation (many files, possibly parallel).
#[derive(Debug, Clone, Default, Serialize)]
pub struct NightReport {
    /// Per-file reports, in completion order.
    pub files: Vec<FileReport>,
    /// Wall-clock makespan of the run.
    #[serde(with = "ser_duration")]
    pub makespan: Duration,
    /// Worker nodes used.
    pub nodes: usize,
    /// Busiest/idlest node busy-time ratio (1.0 = perfectly balanced).
    pub node_imbalance: f64,
    /// Failed file-load attempts retried across the night.
    pub retries: u64,
    /// Retried transport errors by kind label (the faults the fleet
    /// survived; latency spikes absorbed within the call budget are
    /// invisible here but counted server-side).
    pub faults_survived: BTreeMap<String, u64>,
    /// Circuit-breaker trips (connections quarantined and replaced).
    pub breaker_trips: u64,
    /// Wall-clock time the fleet spent below full batch mode.
    #[serde(with = "ser_duration")]
    pub degraded_time: Duration,
    /// Every degradation-ladder move, in order.
    pub degrade_transitions: Vec<DegradeTransition>,
    /// Loaders killed mid-file by the fault plan (Condor eviction model).
    pub loader_kills: u64,
    /// Loaders frozen mid-file by the fault plan (zombie model).
    pub loader_stalls: u64,
    /// Leases reclaimed after TTL expiry (files reassigned to live nodes).
    pub lease_reclaims: u64,
    /// Stale-epoch flushes rejected at the session layer by fencing.
    pub fencing_rejections: u64,
    /// Files given up on (empty on a fully successful night).
    pub failed_files: Vec<FailedFile>,
}

impl NightReport {
    /// Build the counter-backed fields from a telemetry snapshot (usually a
    /// [`Snapshot::since`] delta over the night). This is the **single**
    /// counter→report mapping: the coordinator's final assembly, the chaos
    /// aggregation, and the CLI metrics dump all read the same registry
    /// names, so the three paths cannot drift.
    ///
    /// Shape-only fields (`files`, `makespan`, `degrade_transitions`, …)
    /// stay default; the caller fills them in.
    pub fn from_telemetry(delta: &Snapshot) -> NightReport {
        NightReport {
            retries: delta.counter("retries"),
            breaker_trips: delta.counter("breaker_trips"),
            degraded_time: Duration::from_micros(delta.counter("degrade.time_us")),
            loader_kills: delta.counter("loader_kills"),
            loader_stalls: delta.counter("loader_stalls"),
            lease_reclaims: delta.counter("fleet.reclaims"),
            fencing_rejections: delta.counter("fleet.fence_rejections"),
            faults_survived: delta.with_prefix("faults.survived."),
            ..NightReport::default()
        }
    }

    /// `true` when every file loaded (possibly after retries/requeues).
    pub fn is_complete(&self) -> bool {
        self.failed_files.is_empty()
    }

    /// Total rows committed.
    pub fn rows_loaded(&self) -> u64 {
        self.files.iter().map(|f| f.rows_loaded).sum()
    }

    /// Total rows skipped.
    pub fn rows_skipped(&self) -> u64 {
        self.files.iter().map(|f| f.rows_skipped).sum()
    }

    /// Total catalog bytes consumed.
    pub fn bytes_read(&self) -> u64 {
        self.files.iter().map(|f| f.bytes_read).sum()
    }

    /// Wall-clock throughput in MB/s (the Fig. 7 metric).
    pub fn throughput_mb_per_s(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        (self.bytes_read() as f64 / 1e6) / self.makespan.as_secs_f64()
    }

    /// Total modeled parse-stage time across files.
    pub fn stage_parse(&self) -> Duration {
        self.files.iter().map(|f| f.stage_parse).sum()
    }

    /// Total modeled flush-stage time across files.
    pub fn stage_flush(&self) -> Duration {
        self.files.iter().map(|f| f.stage_flush).sum()
    }

    /// Total modeled stage overlap across files (zero when every file
    /// loaded serially).
    pub fn stage_overlap(&self) -> Duration {
        self.files.iter().map(|f| f.stage_overlap).sum()
    }

    /// Sum of loaded rows per table across files.
    pub fn loaded_by_table(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for f in &self.files {
            for (t, n) in &f.loaded_by_table {
                *out.entry(t.clone()).or_insert(0) += n;
            }
        }
        out
    }
}

/// The modeled serial cost of a load, broken down by resource.
///
/// At `TimeScale::ZERO` nothing is actually waited, but every model still
/// accounts its charges; for a single loader the components are serial, so
/// their sum is the deterministic "runtime" the single-loader experiments
/// (Figs. 4, 5, 6, 8, 9) report.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ModeledCost {
    /// Network round-trip + transfer time (micros).
    pub network_us: u64,
    /// Server CPU service time (micros).
    pub server_cpu_us: u64,
    /// Disk service time across devices (micros).
    pub disk_us: u64,
    /// Lock-wait penalties (micros).
    pub lock_wait_us: u64,
    /// Cache-writer scan CPU (micros).
    pub cache_scan_us: u64,
    /// Client paging (micros).
    pub client_paging_us: u64,
}

impl ModeledCost {
    /// Snapshot a server's accumulated modeled costs, adding client-side
    /// paging time measured by the loader. A view over the telemetry
    /// snapshot: [`skydb::server::Server::obs_snapshot`] syncs the
    /// `model.*_us` gauges, and this reads them back.
    pub fn measure(server: &Server, client_paging: Duration) -> ModeledCost {
        ModeledCost::from_snapshot(&server.obs_snapshot(), client_paging)
    }

    /// Read the modeled-cost breakdown out of a telemetry snapshot (the
    /// `model.*_us` gauges synced by `Server::obs_snapshot`).
    pub fn from_snapshot(snap: &Snapshot, client_paging: Duration) -> ModeledCost {
        ModeledCost {
            network_us: snap.gauge("model.network_us"),
            server_cpu_us: snap.gauge("model.server_cpu_us"),
            disk_us: snap.gauge("model.disk_us"),
            lock_wait_us: snap.gauge("model.lock_wait_us"),
            cache_scan_us: snap.gauge("model.cache_scan_us"),
            client_paging_us: client_paging.as_micros() as u64,
        }
    }

    /// The difference `self - baseline` (for measuring one run on a shared
    /// server).
    pub fn since(self, baseline: ModeledCost) -> ModeledCost {
        ModeledCost {
            network_us: self.network_us - baseline.network_us,
            server_cpu_us: self.server_cpu_us - baseline.server_cpu_us,
            disk_us: self.disk_us - baseline.disk_us,
            lock_wait_us: self.lock_wait_us - baseline.lock_wait_us,
            cache_scan_us: self.cache_scan_us - baseline.cache_scan_us,
            client_paging_us: self.client_paging_us - baseline.client_paging_us,
        }
    }

    /// Total modeled time.
    pub fn total(&self) -> Duration {
        Duration::from_micros(
            self.network_us
                + self.server_cpu_us
                + self.disk_us
                + self.lock_wait_us
                + self.cache_scan_us
                + self.client_paging_us,
        )
    }
}

pub(crate) mod ser_duration {
    //! Serialize a [`Duration`] as integer microseconds.
    use serde::{Serialize, Serializer};
    use std::time::Duration;

    /// Serde `with`-hook: emit the duration as whole microseconds.
    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        (d.as_micros() as u64).serialize(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_kind_classifies_db_errors() {
        let pk = DbError::constraint(ConstraintKind::PrimaryKey, "p", "t", "d");
        assert_eq!(SkipKind::from_db_error(&pk), SkipKind::PrimaryKey);
        let arity = DbError::ArityMismatch {
            table: "t".into(),
            expected: 2,
            got: 3,
        };
        assert_eq!(SkipKind::from_db_error(&arity), SkipKind::Type);
        assert_eq!(
            SkipKind::from_db_error(&DbError::NoTransaction),
            SkipKind::Other
        );
    }

    #[test]
    fn file_report_accounting() {
        let mut r = FileReport::default();
        r.note_loaded("objects", 10);
        r.note_loaded("objects", 5);
        r.note_loaded("fingers", 40);
        r.note_skipped(10, "objects", Some(3), SkipKind::PrimaryKey, "dup".into());
        r.note_skipped(10, "objects", None, SkipKind::Parse, "bad".into());
        assert_eq!(r.rows_loaded, 55);
        assert_eq!(r.rows_skipped, 2);
        assert_eq!(r.loaded_by_table["objects"], 15);
        assert_eq!(r.skipped_by_kind["primary_key"], 1);
        assert_eq!(r.skip_details.len(), 2);
    }

    #[test]
    fn skip_details_capped_but_counted() {
        let mut r = FileReport::default();
        for i in 0..100 {
            r.note_skipped(5, "t", Some(i), SkipKind::Check, "x".into());
        }
        assert_eq!(r.rows_skipped, 100);
        assert_eq!(r.skip_details.len(), 5);
    }

    #[test]
    fn night_report_aggregates() {
        let mut f1 = FileReport::default();
        f1.note_loaded("objects", 10);
        f1.bytes_read = 1_000_000;
        let mut f2 = FileReport::default();
        f2.note_loaded("objects", 20);
        f2.bytes_read = 2_000_000;
        let night = NightReport {
            files: vec![f1, f2],
            makespan: Duration::from_secs(3),
            nodes: 2,
            node_imbalance: 1.1,
            ..NightReport::default()
        };
        assert!(night.is_complete());
        assert_eq!(night.rows_loaded(), 30);
        assert_eq!(night.bytes_read(), 3_000_000);
        assert!((night.throughput_mb_per_s() - 1.0).abs() < 1e-9);
        assert_eq!(night.loaded_by_table()["objects"], 30);
    }

    #[test]
    fn modeled_cost_arithmetic() {
        let a = ModeledCost {
            network_us: 100,
            server_cpu_us: 50,
            disk_us: 25,
            lock_wait_us: 5,
            cache_scan_us: 10,
            client_paging_us: 10,
        };
        let b = ModeledCost {
            network_us: 40,
            ..Default::default()
        };
        let d = a.since(b);
        assert_eq!(d.network_us, 60);
        assert_eq!(d.total(), Duration::from_micros(160));
    }

    #[test]
    fn reports_serialize_to_json() {
        let mut r = FileReport {
            file: "f.cat".into(),
            ..Default::default()
        };
        r.note_loaded("objects", 1);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"rows_loaded\":1"));
    }

    #[test]
    fn night_report_counters_come_from_telemetry() {
        let reg = skyobs::Registry::new();
        reg.counter("retries").add(3);
        reg.counter("breaker_trips").add(1);
        reg.counter("fleet.reclaims").add(2);
        reg.counter("fleet.fence_rejections").add(4);
        reg.counter("loader_kills").inc();
        reg.counter("degrade.time_us").add(1500);
        reg.counter("faults.survived.reset").add(2);
        let night = NightReport::from_telemetry(&reg.snapshot());
        assert_eq!(night.retries, 3);
        assert_eq!(night.breaker_trips, 1);
        assert_eq!(night.lease_reclaims, 2);
        assert_eq!(night.fencing_rejections, 4);
        assert_eq!(night.loader_kills, 1);
        assert_eq!(night.degraded_time, Duration::from_micros(1500));
        assert_eq!(night.faults_survived.get("reset"), Some(&2));
    }

    /// Byte-level key compatibility: the snapshot→report mapping must keep
    /// every pre-telemetry JSON field name, so archived `repro-results/*.json`
    /// stay comparable across the refactor.
    #[test]
    fn report_json_keys_are_stable() {
        let mut f = FileReport::default();
        f.note_loaded("objects", 1);
        f.note_skipped(1, "objects", Some(0), SkipKind::Parse, "x".into());
        let file_json = serde_json::to_string(&f).unwrap();
        const FILE_KEYS: &[&str] = &[
            "file",
            "loaded_by_table",
            "skipped_by_kind",
            "rows_loaded",
            "rows_skipped",
            "batch_calls",
            "single_calls",
            "commits",
            "cycles",
            "bytes_read",
            "elapsed",
            "client_paging",
            "client_faults",
            "skip_details",
            "lines_resumed",
            "retries",
            "stage_parse",
            "stage_flush",
            "stage_overlap",
            "modeled_makespan",
        ];
        for key in FILE_KEYS {
            assert!(
                file_json.contains(&format!("\"{key}\":")),
                "FileReport lost key {key}"
            );
        }

        let reg = skyobs::Registry::new();
        reg.counter("faults.survived.reset").inc();
        let night = NightReport {
            makespan: Duration::from_secs(1),
            ..NightReport::from_telemetry(&reg.snapshot())
        };
        let night_json = serde_json::to_string(&night).unwrap();
        const NIGHT_KEYS: &[&str] = &[
            "files",
            "makespan",
            "nodes",
            "node_imbalance",
            "retries",
            "faults_survived",
            "breaker_trips",
            "degraded_time",
            "degrade_transitions",
            "loader_kills",
            "loader_stalls",
            "lease_reclaims",
            "fencing_rejections",
            "failed_files",
        ];
        for key in NIGHT_KEYS {
            assert!(
                night_json.contains(&format!("\"{key}\":")),
                "NightReport lost key {key}"
            );
        }
        // String-keyed faults_survived serializes exactly like the old
        // &'static str keys did.
        assert!(night_json.contains("\"faults_survived\":{\"reset\":1}"));
    }

    #[test]
    fn modeled_cost_reads_model_gauges() {
        let reg = skyobs::Registry::new();
        reg.gauge("model.network_us").set(100);
        reg.gauge("model.disk_us").set(30);
        let cost = ModeledCost::from_snapshot(&reg.snapshot(), Duration::from_micros(7));
        assert_eq!(cost.network_us, 100);
        assert_eq!(cost.disk_us, 30);
        assert_eq!(cost.client_paging_us, 7);
        assert_eq!(cost.total(), Duration::from_micros(137));
    }
}
