//! The serve-under-ingest harness: a CasJobs-style query mix running
//! against the repository **while the loader fleet flushes a night**.
//!
//! The paper's repository is not load-and-forget: §4.5.1 keeps the
//! `htmid` index through the intensive load precisely because "the
//! scientific research queries" keep running. This harness measures that
//! coexistence: it stands up a repository with a preloaded base catalog,
//! starts a [`skydb::serve::QueryService`], then drives N deterministic
//! simulated users (cone searches, primary-key probes, batch scans)
//! concurrently with a [`crate::parallel::load_night`] bulk ingest at a
//! configurable pressure (loader-node count; 0 = serve-only baseline).
//!
//! Per-queue latency percentiles come out of the server's `skyobs`
//! histograms (`serve.fast.latency_us` and friends), so the CLI's
//! `--metrics` JSONL dump, the [`ServeLoadReport`] JSON, and the bench's
//! interference figure are all views over the same registry.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

use skycat::gen::{generate_file, generate_observation, GenConfig};
use skydb::serve::{FastOutcome, Query, QueryService, ServeConfig, ServeError};
use skydb::{DbConfig, Expr, Server, Value};
use skysim::cluster::AssignmentPolicy;
use skysim::rng::SplitMix64;
use skysim::time::TimeScale;

use crate::bulk::load_catalog_file;
use crate::config::LoaderConfig;
use crate::parallel::load_night;
use crate::report::ser_duration;

/// Observation id of the preloaded base catalog.
const BASE_OBS_ID: i64 = 100;
/// Observation id of the concurrently ingested night.
const INGEST_OBS_ID: i64 = 101;

/// Knobs for one serve-under-ingest run.
#[derive(Debug, Clone, Serialize)]
pub struct ServeLoadConfig {
    /// Master seed: drives the base catalog, the ingest night, and every
    /// user's query stream.
    pub seed: u64,
    /// Simulated interactive users.
    pub users: usize,
    /// Fast-queue queries each user issues.
    pub queries_per_user: usize,
    /// Loader nodes ingesting concurrently (0 = serve-only baseline).
    pub ingest_nodes: usize,
    /// Catalog files in the concurrently ingested night.
    pub ingest_files: usize,
    /// Fast-queue modeled-latency deadline.
    #[serde(with = "ser_duration")]
    pub fast_deadline: Duration,
    /// Smaller base catalog and night, for CI.
    pub quick: bool,
}

impl Default for ServeLoadConfig {
    fn default() -> Self {
        ServeLoadConfig {
            seed: 2005,
            users: 4,
            queries_per_user: 25,
            ingest_nodes: 2,
            ingest_files: 4,
            fast_deadline: Duration::from_millis(40),
            quick: false,
        }
    }
}

impl ServeLoadConfig {
    /// Builder-style: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: set the simulated user count.
    pub fn with_users(mut self, users: usize) -> Self {
        self.users = users;
        self
    }

    /// Builder-style: set the ingest pressure (loader nodes; 0 = none).
    pub fn with_ingest_nodes(mut self, nodes: usize) -> Self {
        self.ingest_nodes = nodes;
        self
    }

    /// Builder-style: set queries per user.
    pub fn with_queries_per_user(mut self, n: usize) -> Self {
        self.queries_per_user = n;
        self
    }

    /// Builder-style: quick mode for CI.
    pub fn with_quick(mut self, quick: bool) -> Self {
        self.quick = quick;
        self
    }

    /// Builder-style: set the fast-queue modeled-latency deadline.
    pub fn with_fast_deadline(mut self, d: Duration) -> Self {
        self.fast_deadline = d;
        self
    }
}

/// Percentiles of one `serve.*` latency histogram, in microseconds.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct QueueStats {
    /// Samples recorded.
    pub count: u64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Largest sample.
    pub max_us: u64,
}

impl QueueStats {
    /// Summarize any latency histogram (shared with the live-ingest
    /// freshness clock, which reports `live.freshness_us` this way).
    pub fn from_histogram(h: &skyobs::HistogramHandle) -> QueueStats {
        QueueStats {
            count: h.count(),
            p50_us: h.quantile(0.50),
            p95_us: h.quantile(0.95),
            p99_us: h.quantile(0.99),
            max_us: h.max(),
        }
    }
}

/// Everything one serve-under-ingest run measured.
#[derive(Debug, Clone, Serialize)]
pub struct ServeLoadReport {
    /// Seed the run derived from.
    pub seed: u64,
    /// Simulated users.
    pub users: usize,
    /// Loader nodes that ingested concurrently.
    pub ingest_nodes: usize,
    /// Fast queries admitted.
    pub fast_admitted: u64,
    /// Fast queries rejected at admission (per-user quota).
    pub fast_rejected: u64,
    /// Fast queries answered within the deadline.
    pub fast_completed: u64,
    /// Fast queries demoted to the slow queue.
    pub fast_demoted: u64,
    /// Slow jobs submitted (explicit + demotions).
    pub slow_submitted: u64,
    /// Slow jobs completed into MyDB tables.
    pub slow_completed: u64,
    /// Slow jobs failed.
    pub slow_failed: u64,
    /// MyDB scratch tables created.
    pub mydb_tables: u64,
    /// Rows materialized into MyDB tables.
    pub mydb_rows: u64,
    /// Wall-clock fast-queue latency percentiles.
    pub fast_wall: QueueStats,
    /// Modeled fast-queue latency percentiles (deterministic per seed).
    pub fast_modeled: QueueStats,
    /// Wall-clock slow-queue execution latency percentiles.
    pub slow_wall: QueueStats,
    /// Slow-queue queue-wait percentiles.
    pub slow_wait: QueueStats,
    /// Rows the concurrent ingest committed (0 when `ingest_nodes` = 0).
    pub ingest_rows: u64,
    /// Whether every ingest file committed cleanly.
    pub ingest_complete: bool,
    /// Wall-clock duration of the whole run.
    #[serde(with = "ser_duration")]
    pub makespan: Duration,
}

/// A finished run: the report plus the live server, so callers (the CLI's
/// `--metrics`, tests) can snapshot or dump the same registry the report
/// was computed from.
pub struct ServeLoadOutcome {
    /// The measurements.
    pub report: ServeLoadReport,
    /// The server the run executed against.
    pub server: Arc<Server>,
}

/// Stand up a repository with a preloaded base catalog plus the `htmid`
/// index, then run the user query mix concurrently with the bulk ingest.
pub fn run_serve_load(cfg: &ServeLoadConfig) -> Result<ServeLoadOutcome, String> {
    let start = Instant::now();
    let server: Arc<Server> = Server::start(DbConfig::paper(TimeScale::ZERO));
    skycat::create_all(server.engine()).map_err(|e| e.to_string())?;
    skycat::seed_static(server.engine()).map_err(|e| e.to_string())?;
    skycat::seed_observation(server.engine(), 1, BASE_OBS_ID).map_err(|e| e.to_string())?;
    skycat::seed_observation(server.engine(), 2, INGEST_OBS_ID).map_err(|e| e.to_string())?;
    server
        .engine()
        .create_index("objects", "idx_objects_htmid", &["htmid"], false)
        .map_err(|e| e.to_string())?;

    // Base catalog the queries run against from t=0.
    let (frames, objects) = if cfg.quick { (3, 40) } else { (6, 60) };
    let base = generate_file(
        &GenConfig::night(cfg.seed, BASE_OBS_ID)
            .with_frames_per_ccd(frames)
            .with_objects_per_frame(objects),
        0,
    );
    let session = server.connect();
    load_catalog_file(&session, &LoaderConfig::test(), &base).map_err(|e| e.to_string())?;
    drop(session);

    // Sample committed object ids for the primary-key probes.
    let objects_tid = server
        .engine()
        .table_id("objects")
        .map_err(|e| e.to_string())?;
    let pk_ids: Vec<i64> = server
        .engine()
        .scan_where(objects_tid, None)
        .map_err(|e| e.to_string())?
        .into_iter()
        .filter_map(|row| row[0].as_i64())
        .collect();
    if pk_ids.is_empty() {
        return Err("base catalog loaded no objects".into());
    }
    let base_rows = server.engine().row_count(objects_tid);

    let serve_cfg = ServeConfig::default().with_fast_deadline(cfg.fast_deadline);
    let service = QueryService::start(server.clone(), serve_cfg);

    // Concurrent nightly ingest at the configured pressure.
    let ingest_night = (cfg.ingest_nodes > 0).then(|| {
        generate_observation(
            &GenConfig::night(cfg.seed.wrapping_add(1), INGEST_OBS_ID)
                .with_files(cfg.ingest_files.max(1))
                .with_frames_per_ccd(frames)
                .with_objects_per_frame(objects),
        )
    });

    let mut ingest_rows = 0u64;
    let mut ingest_complete = true;
    std::thread::scope(|scope| -> Result<(), String> {
        let ingest_handle = ingest_night.as_ref().map(|files| {
            let server = &server;
            let nodes = cfg.ingest_nodes;
            scope.spawn(move || {
                load_night(
                    server,
                    files,
                    &LoaderConfig::test(),
                    nodes,
                    AssignmentPolicy::Dynamic,
                )
            })
        });

        let mut user_handles = Vec::new();
        for user_idx in 0..cfg.users {
            let service = &service;
            let pk_ids = &pk_ids;
            let seed = cfg.seed;
            let queries = cfg.queries_per_user;
            user_handles
                .push(scope.spawn(move || run_user(service, user_idx, seed, queries, pk_ids)));
        }
        for h in user_handles {
            h.join().map_err(|_| "user thread panicked".to_string())??;
        }
        // Let queued + demoted jobs finish before reading histograms.
        service.drain();

        if let Some(h) = ingest_handle {
            let night = h
                .join()
                .map_err(|_| "ingest thread panicked".to_string())?
                .map_err(|e| e.to_string())?;
            ingest_rows = night.rows_loaded();
            ingest_complete = night.is_complete();
        }
        Ok(())
    })?;

    let obs = server.obs();
    let snap = obs.snapshot();
    let report = ServeLoadReport {
        seed: cfg.seed,
        users: cfg.users,
        ingest_nodes: cfg.ingest_nodes,
        fast_admitted: snap.counter("serve.fast.admitted"),
        fast_rejected: snap.counter("serve.fast.rejected"),
        fast_completed: snap.counter("serve.fast.completed"),
        fast_demoted: snap.counter("serve.fast.demoted"),
        slow_submitted: snap.counter("serve.slow.submitted"),
        slow_completed: snap.counter("serve.slow.completed"),
        slow_failed: snap.counter("serve.slow.failed"),
        mydb_tables: snap.counter("serve.mydb.tables"),
        mydb_rows: snap.counter("serve.mydb.rows"),
        fast_wall: QueueStats::from_histogram(&obs.histogram("serve.fast.latency_us")),
        fast_modeled: QueueStats::from_histogram(&obs.histogram("serve.fast.modeled_us")),
        slow_wall: QueueStats::from_histogram(&obs.histogram("serve.slow.latency_us")),
        slow_wait: QueueStats::from_histogram(&obs.histogram("serve.slow.queue_wait_us")),
        ingest_rows,
        ingest_complete,
        makespan: start.elapsed(),
    };
    debug_assert!(report.ingest_rows == 0 || server.engine().row_count(objects_tid) > base_rows);
    drop(service);
    Ok(ServeLoadOutcome { report, server })
}

/// One user's deterministic query stream. The mix mirrors CasJobs usage:
/// mostly point probes and small cones on the fast queue, an occasional
/// wide cone that overruns the deadline and demotes, plus explicit batch
/// scans submitted straight to the slow queue.
fn run_user(
    service: &QueryService,
    user_idx: usize,
    seed: u64,
    queries: usize,
    pk_ids: &[i64],
) -> Result<(), String> {
    let user = format!("user{user_idx}");
    let mut rng = SplitMix64::new(seed ^ (0x5EE0_0000 + user_idx as u64));
    for q in 0..queries {
        let roll = rng.next_f64();
        let query = if q == 0 || roll < 0.10 {
            // Explicit batch job: a filtered scan of the objects table,
            // materialized into the user's MyDB.
            let cutoff = pk_ids[rng.next_below(pk_ids.len() as u64) as usize];
            let submitted = service.submit_slow(
                &user,
                Query::Scan {
                    table: "objects".into(),
                    filter: Some(Expr::cmp(0, skydb::CmpOp::Le, cutoff)),
                },
            );
            match submitted {
                // At their open-job cap the user simply waits out the
                // queue — backpressure, not an error.
                Ok(_) | Err(ServeError::QuotaExceeded(_)) => continue,
                Err(e) => return Err(format!("{user}: submit: {e}")),
            }
        } else if roll < 0.55 {
            Query::PkLookup {
                table: "objects".into(),
                key: vec![Value::Int(
                    pk_ids[rng.next_below(pk_ids.len() as u64) as usize],
                )],
            }
        } else if roll < 0.90 {
            // Small cone inside the loaded stripe (generated near
            // ra≈150, dec∈[-1.2, 1.2]).
            Query::Cone {
                ra_deg: rng.next_f64_range(149.9, 150.5),
                dec_deg: rng.next_f64_range(-1.0, 1.0),
                radius_arcmin: rng.next_f64_range(1.0, 6.0),
            }
        } else {
            // Wide cone: enough ranges and candidates that its modeled
            // cost overruns the fast deadline and it demotes.
            Query::Cone {
                ra_deg: rng.next_f64_range(149.9, 150.5),
                dec_deg: rng.next_f64_range(-0.5, 0.5),
                radius_arcmin: rng.next_f64_range(40.0, 80.0),
            }
        };
        match service.fast_query(&user, query) {
            Ok(FastOutcome::Done(_) | FastOutcome::Demoted(_)) => {}
            // Quota pushback (e.g. a demotion refused because the user's
            // slow queue is full) is part of normal CasJobs life.
            Err(ServeError::QuotaExceeded(_)) => {}
            Err(e) => return Err(format!("{user}: fast query: {e}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ServeLoadConfig {
        ServeLoadConfig::default()
            .with_quick(true)
            .with_users(2)
            .with_queries_per_user(12)
            .with_ingest_nodes(2)
    }

    #[test]
    fn serve_under_ingest_reports_all_queues() {
        let out = run_serve_load(&quick_cfg()).unwrap();
        let r = &out.report;
        assert!(r.fast_admitted > 0, "{r:?}");
        assert!(r.fast_completed > 0, "{r:?}");
        assert!(r.slow_submitted > 0, "{r:?}");
        assert_eq!(r.slow_completed + r.slow_failed, r.slow_submitted, "{r:?}");
        assert!(r.slow_failed == 0, "{r:?}");
        assert!(r.mydb_tables > 0 && r.mydb_rows > 0, "{r:?}");
        assert!(r.ingest_rows > 0 && r.ingest_complete, "{r:?}");
        assert_eq!(r.fast_wall.count, r.fast_admitted);
        assert!(r.fast_wall.p99_us > 0, "wall p99 must be nonzero");
        assert!(r.fast_modeled.p99_us >= r.fast_modeled.p50_us);
        // Report and JSONL dump are views over one registry.
        let jsonl = out.server.obs().to_jsonl();
        assert!(
            jsonl.contains("\"name\":\"serve.fast.latency_us\""),
            "{jsonl}"
        );
        assert!(jsonl.contains("\"name\":\"serve.fast.admitted\""));
    }

    #[test]
    fn tight_deadline_demotes_to_slow_queue() {
        // At paper modeled costs every query carries at least one 2 ms
        // round trip, so a 500 µs fast deadline demotes deterministically
        // — and the demoted jobs must complete through the slow queue.
        let out = run_serve_load(
            &quick_cfg()
                .with_ingest_nodes(0)
                .with_fast_deadline(Duration::from_micros(500)),
        )
        .unwrap();
        let r = &out.report;
        assert!(r.fast_demoted > 0, "{r:?}");
        assert_eq!(r.fast_completed, 0, "{r:?}");
        assert_eq!(r.slow_submitted, r.slow_completed, "{r:?}");
        assert!(r.slow_submitted > r.fast_demoted, "explicit + demoted jobs");
    }

    #[test]
    fn serve_only_baseline_runs_without_ingest() {
        let out = run_serve_load(&quick_cfg().with_ingest_nodes(0)).unwrap();
        assert_eq!(out.report.ingest_rows, 0);
        assert!(out.report.ingest_complete);
        assert!(out.report.fast_admitted > 0);
    }

    #[test]
    fn same_seed_same_modeled_percentiles() {
        // Wall latency is machine noise; modeled latency is the
        // deterministic part the CI latency gate relies on.
        let cfg = quick_cfg().with_ingest_nodes(0);
        let a = run_serve_load(&cfg).unwrap().report;
        let b = run_serve_load(&cfg).unwrap().report;
        assert_eq!(a.fast_modeled.p50_us, b.fast_modeled.p50_us);
        assert_eq!(a.fast_modeled.p99_us, b.fast_modeled.p99_us);
        assert_eq!(a.fast_admitted, b.fast_admitted);
        assert_eq!(a.fast_demoted, b.fast_demoted);
    }

    #[test]
    fn report_serializes_to_json() {
        let out = run_serve_load(&quick_cfg().with_ingest_nodes(0).with_users(1)).unwrap();
        let json = serde_json::to_string_pretty(&out.report).unwrap();
        assert!(json.contains("\"fast_modeled\""), "{json}");
        assert!(json.contains("\"p99_us\""), "{json}");
    }
}
