//! The `skyload` command-line driver: generate catalog files on disk, load
//! a directory of them into a repository, inspect files, and verify loads
//! against generator manifests.
//!
//! Logic lives here (testable); `src/bin/skyload.rs` is a thin shell.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use skycat::gen::{generate_observation, CatalogFile, ExpectedCounts, GenConfig};
use skydb::{DbConfig, Server};
use skysim::cluster::AssignmentPolicy;
use skysim::time::TimeScale;

use crate::config::{LoaderConfig, PipelineMode};
use crate::parallel::load_night_with_journal;
use crate::recovery::LoadJournal;

/// A manifest written next to generated files so later loads can be
/// verified to the row.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct Manifest {
    /// Rows a correct loader commits, per table.
    pub loadable: BTreeMap<String, u64>,
    /// Lines emitted per table (including corrupted ones).
    pub emitted: BTreeMap<String, u64>,
    /// Observation id the files reference.
    pub obs_id: i64,
}

impl Manifest {
    fn from_expected(e: &ExpectedCounts, obs_id: i64) -> Manifest {
        Manifest {
            loadable: e
                .loadable
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            emitted: e
                .emitted
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            obs_id,
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate an observation into a directory.
    Generate {
        /// Output directory.
        out: PathBuf,
        /// Generator seed.
        seed: u64,
        /// Number of catalog files.
        files: usize,
        /// Object-row corruption rate.
        error_rate: f64,
        /// Observation id.
        obs_id: i64,
    },
    /// Load every `*.cat` file in a directory into a fresh repository.
    Load {
        /// Input directory.
        dir: PathBuf,
        /// Parallel loader nodes.
        nodes: usize,
        /// Loader configuration file (JSON), if any.
        config: Option<PathBuf>,
        /// Journal path for checkpoint/resume.
        journal: Option<PathBuf>,
        /// Write the night report as JSON here.
        report: Option<PathBuf>,
        /// Verify final row counts against the directory's manifest.
        verify: bool,
        /// Run the full integrity audit after loading.
        audit: bool,
        /// Pipeline-mode override (`--pipeline off|double`); `None` keeps
        /// the config file's (or default) setting.
        pipeline: Option<PipelineMode>,
        /// Dump the telemetry registry as JSONL here after the load.
        metrics: Option<PathBuf>,
    },
    /// Parse one catalog file and summarize its contents, or — with
    /// `--top-spans N` — treat the file as a telemetry JSONL dump and
    /// print the N slowest spans it records.
    Inspect {
        /// File to inspect.
        file: PathBuf,
        /// Print the N slowest spans from a `--metrics` JSONL dump.
        top_spans: Option<usize>,
        /// Also show how the rows would route across N declination
        /// zones (per-shard row counts).
        shards: Option<u32>,
    },
    /// Chaos-soak a synthetic night under a seeded fault plan and verify
    /// exactly-once delivery.
    Chaos {
        /// Master seed for night generation and the fault schedule.
        seed: u64,
        /// Catalog files in the synthetic night.
        files: usize,
        /// Parallel loader nodes.
        nodes: usize,
        /// Generator object-corruption rate (dirty data, not faults).
        error_rate: f64,
        /// Smaller night and plan, for CI.
        quick: bool,
        /// Kill the loader holding the Nth lease grant (1-based).
        loader_kill_at: Option<u64>,
        /// Freeze the loader holding the Nth lease grant into a zombie.
        loader_stall_at: Option<u64>,
        /// Lease TTL override, in milliseconds.
        lease_ttl_ms: Option<u64>,
        /// Write the chaos report as JSON here.
        report: Option<PathBuf>,
        /// Dump the telemetry registry as JSONL here after the soak.
        metrics: Option<PathBuf>,
    },
    /// Ingest a synthetic night as continuous micro-batches on a modeled
    /// arrival schedule and report per-batch freshness (arrival →
    /// committed-visible) against an SLO budget.
    Live {
        /// Master seed for the night and the arrival schedule.
        seed: u64,
        /// Catalog files (micro-batches) in the night.
        files: usize,
        /// Parallel loader nodes per micro-batch.
        nodes: usize,
        /// Mean inter-arrival gap between micro-batches, in milliseconds.
        mean_interarrival_ms: u64,
        /// Freshness SLO budget per batch, in milliseconds.
        slo_budget_ms: u64,
        /// Smaller night, for CI.
        quick: bool,
        /// Write the live-night report as JSON here.
        report: Option<PathBuf>,
        /// Dump the telemetry registry as JSONL here after the night.
        metrics: Option<PathBuf>,
    },
    /// Run a reprocessing campaign under chaos: live-ingest season 1,
    /// rebuild it as season 2 in shadow tables, crash the coordinator at
    /// the swap point, resume, and verify swap atomicity under
    /// concurrent serve-tier readers.
    Campaign {
        /// Master seed for both seasons and the fault plan.
        seed: u64,
        /// Catalog files in season 1 (season 2 gets one more).
        files: usize,
        /// Parallel loader nodes.
        nodes: usize,
        /// Smaller seasons, for CI.
        quick: bool,
        /// Kill the loader holding the Nth lease grant (1-based).
        loader_kill_at: Option<u64>,
        /// Skip the injected coordinator crash at the swap point.
        no_swap_crash: bool,
        /// Treat the swap crash as a full server crash (recover the
        /// engine from the durable log before resuming).
        restart_server: bool,
        /// Concurrent serve-tier reader threads.
        readers: usize,
        /// Write the campaign-chaos report as JSON here.
        report: Option<PathBuf>,
        /// Dump the telemetry registry as JSONL here after the run.
        metrics: Option<PathBuf>,
    },
    /// Soak a night under seeded bit rot with a concurrent background
    /// scrubber and serve-tier readers, then self-repair from source
    /// files and verify the catalog healed row-for-row.
    Scrub {
        /// Master seed for the night, the fault plan, and the rot
        /// schedule.
        seed: u64,
        /// Catalog files in the synthetic night.
        files: usize,
        /// Parallel loader nodes.
        nodes: usize,
        /// Per-opportunity bit-rot probability.
        bit_rot: f64,
        /// Interval between background scrub passes, in milliseconds.
        scrub_interval_ms: u64,
        /// Also rot the durable WAL and restart the server from it.
        wal_rot: bool,
        /// Concurrent serve-tier reader threads.
        readers: usize,
        /// Smaller night, for CI.
        quick: bool,
        /// Write the scrub-chaos report as JSON here.
        report: Option<PathBuf>,
        /// Dump the telemetry registry as JSONL here after the run.
        metrics: Option<PathBuf>,
    },
    /// Serve a CasJobs-style fast/slow query mix against a repository
    /// while a loader fleet ingests a night, and report per-queue
    /// latency percentiles.
    Serve {
        /// Master seed for the catalog, query mix, and ingest night.
        seed: u64,
        /// Concurrent query users.
        users: usize,
        /// Queries each user issues.
        queries: usize,
        /// Parallel loader nodes ingesting during the serve window
        /// (0 = serve-only baseline).
        ingest_nodes: usize,
        /// Fast-queue deadline override, in milliseconds: queries whose
        /// modeled cost overruns it demote to the slow queue.
        fast_deadline_ms: Option<u64>,
        /// Smaller catalog and query mix, for CI.
        quick: bool,
        /// Write the serve report as JSON here.
        report: Option<PathBuf>,
        /// Dump the telemetry registry as JSONL here after the run.
        metrics: Option<PathBuf>,
    },
    /// Soak a declination-zone sharded repository: live-ingest a night
    /// while a seeded driver kills and stalls shard engines, the
    /// supervisor fences and rebuilds them, a coordinator restart
    /// re-adopts the fleet mid-night, and scatter-gather readers verify
    /// reads are shard-complete or explicitly flagged partial — then a
    /// per-zone row-exact verdict.
    ShardChaos {
        /// Master seed for the night, the weather, and the shard faults.
        seed: u64,
        /// Catalog files in the night.
        files: usize,
        /// Declination zones (= shards).
        shards: u32,
        /// Concurrent serve-tier reader threads.
        readers: usize,
        /// Smaller night, for CI.
        quick: bool,
        /// Kill the shard picked at the Nth shard-fault opportunity.
        shard_kill_at: Option<u64>,
        /// Freeze a shard's heartbeat past its lease at the Nth
        /// opportunity instead.
        shard_stall_at: Option<u64>,
        /// Shard lease TTL override, in milliseconds.
        lease_ttl_ms: Option<u64>,
        /// Skip the mid-night coordinator restart.
        no_restart_coordinator: bool,
        /// Write the shard-chaos report as JSON here.
        report: Option<PathBuf>,
        /// Dump the telemetry registry as JSONL here after the run.
        metrics: Option<PathBuf>,
    },
    /// Print usage.
    Help,
}

/// Parse argv (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let mut flags: BTreeMap<String, String> = BTreeMap::new();
    let mut positional = Vec::new();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            match name {
                "verify"
                | "audit"
                | "quick"
                | "no-swap-crash"
                | "restart-server"
                | "wal-rot"
                | "no-restart-coordinator" => {
                    flags.insert(name.to_owned(), "true".into());
                }
                _ => {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("--{name} requires a value"))?;
                    flags.insert(name.to_owned(), v.clone());
                }
            }
        } else {
            positional.push(a.clone());
        }
    }
    let get = |k: &str| flags.get(k).cloned();
    let parse_num = |k: &str, default: u64| -> Result<u64, String> {
        get(k)
            .map(|v| v.parse::<u64>().map_err(|e| format!("--{k}: {e}")))
            .unwrap_or(Ok(default))
    };
    match cmd.as_str() {
        "generate" => Ok(Command::Generate {
            out: PathBuf::from(get("out").ok_or("generate needs --out DIR")?),
            seed: parse_num("seed", 2005)?,
            files: parse_num("files", 28)? as usize,
            error_rate: get("error-rate")
                .map(|v| v.parse::<f64>().map_err(|e| format!("--error-rate: {e}")))
                .unwrap_or(Ok(0.0))?,
            obs_id: parse_num("obs-id", 100)? as i64,
        }),
        "load" => Ok(Command::Load {
            dir: PathBuf::from(get("dir").ok_or("load needs --dir DIR")?),
            nodes: parse_num("nodes", 5)? as usize,
            config: get("config").map(PathBuf::from),
            journal: get("journal").map(PathBuf::from),
            report: get("report").map(PathBuf::from),
            verify: flags.contains_key("verify"),
            audit: flags.contains_key("audit"),
            pipeline: get("pipeline")
                .map(|v| match v.as_str() {
                    "off" => Ok(PipelineMode::Off),
                    "double" => Ok(PipelineMode::Double),
                    other => Err(format!(
                        "--pipeline must be `off` or `double`, got {other:?}"
                    )),
                })
                .transpose()?,
            metrics: get("metrics").map(PathBuf::from),
        }),
        "chaos" => {
            let defaults = crate::chaos::ChaosConfig::default();
            Ok(Command::Chaos {
                seed: parse_num("seed", defaults.seed)?,
                files: parse_num("files", defaults.files as u64)? as usize,
                nodes: parse_num("nodes", defaults.nodes as u64)? as usize,
                error_rate: get("error-rate")
                    .map(|v| v.parse::<f64>().map_err(|e| format!("--error-rate: {e}")))
                    .unwrap_or(Ok(defaults.error_rate))?,
                quick: flags.contains_key("quick"),
                loader_kill_at: get("loader-kill")
                    .map(|v| v.parse::<u64>().map_err(|e| format!("--loader-kill: {e}")))
                    .transpose()?,
                loader_stall_at: get("loader-stall")
                    .map(|v| v.parse::<u64>().map_err(|e| format!("--loader-stall: {e}")))
                    .transpose()?,
                lease_ttl_ms: get("lease-ttl")
                    .map(|v| v.parse::<u64>().map_err(|e| format!("--lease-ttl: {e}")))
                    .transpose()?,
                report: get("report").map(PathBuf::from),
                metrics: get("metrics").map(PathBuf::from),
            })
        }
        "live" => Ok(Command::Live {
            seed: parse_num("seed", 2005)?,
            files: parse_num("files", 12)? as usize,
            nodes: parse_num("nodes", 3)? as usize,
            mean_interarrival_ms: parse_num("mean-interarrival", 50)?,
            slo_budget_ms: {
                let ms = parse_num("slo-budget", 5000)?;
                if ms == 0 {
                    return Err("--slo-budget must be at least 1 ms".into());
                }
                ms
            },
            quick: flags.contains_key("quick"),
            report: get("report").map(PathBuf::from),
            metrics: get("metrics").map(PathBuf::from),
        }),
        "campaign" => {
            let defaults = crate::chaos::CampaignChaosConfig::default();
            Ok(Command::Campaign {
                seed: parse_num("seed", defaults.seed)?,
                files: parse_num("files", defaults.files as u64)? as usize,
                nodes: parse_num("nodes", defaults.nodes as u64)? as usize,
                quick: flags.contains_key("quick"),
                loader_kill_at: match get("loader-kill") {
                    Some(v) => Some(
                        v.parse::<u64>()
                            .map_err(|e| format!("--loader-kill: {e}"))?,
                    ),
                    None => defaults.loader_kill_at,
                },
                no_swap_crash: flags.contains_key("no-swap-crash"),
                restart_server: flags.contains_key("restart-server"),
                readers: parse_num("readers", defaults.readers as u64)? as usize,
                report: get("report").map(PathBuf::from),
                metrics: get("metrics").map(PathBuf::from),
            })
        }
        "scrub" => {
            let defaults = crate::chaos::ScrubChaosConfig::default();
            Ok(Command::Scrub {
                seed: parse_num("seed", defaults.seed)?,
                files: parse_num("files", defaults.files as u64)? as usize,
                nodes: parse_num("nodes", defaults.nodes as u64)? as usize,
                bit_rot: get("bit-rot")
                    .map(|v| v.parse::<f64>().map_err(|e| format!("--bit-rot: {e}")))
                    .unwrap_or(Ok(defaults.rot_rate))?,
                scrub_interval_ms: {
                    let ms =
                        parse_num("scrub-interval", defaults.scrub_interval.as_millis() as u64)?;
                    if ms == 0 {
                        return Err("--scrub-interval must be at least 1 ms".into());
                    }
                    ms
                },
                wal_rot: flags.contains_key("wal-rot"),
                readers: parse_num("readers", defaults.readers as u64)? as usize,
                quick: flags.contains_key("quick"),
                report: get("report").map(PathBuf::from),
                metrics: get("metrics").map(PathBuf::from),
            })
        }
        "serve" => {
            let defaults = crate::serving::ServeLoadConfig::default();
            Ok(Command::Serve {
                seed: parse_num("seed", defaults.seed)?,
                users: parse_num("users", defaults.users as u64)? as usize,
                queries: parse_num("queries", defaults.queries_per_user as u64)? as usize,
                ingest_nodes: parse_num("ingest-nodes", defaults.ingest_nodes as u64)? as usize,
                fast_deadline_ms: get("fast-deadline")
                    .map(|v| {
                        v.parse::<u64>()
                            .map_err(|e| format!("--fast-deadline: {e}"))
                    })
                    .transpose()?,
                quick: flags.contains_key("quick"),
                report: get("report").map(PathBuf::from),
                metrics: get("metrics").map(PathBuf::from),
            })
        }
        "shard-chaos" => {
            let defaults = crate::chaos::ShardChaosConfig::default();
            Ok(Command::ShardChaos {
                seed: parse_num("seed", defaults.seed)?,
                files: parse_num("files", defaults.files as u64)? as usize,
                shards: {
                    let n = parse_num("shards", u64::from(defaults.shards))?;
                    if n == 0 {
                        return Err("--shards must be at least 1".into());
                    }
                    n as u32
                },
                readers: parse_num("readers", defaults.readers as u64)? as usize,
                quick: flags.contains_key("quick"),
                shard_kill_at: match get("shard-kill") {
                    Some(v) => Some(v.parse::<u64>().map_err(|e| format!("--shard-kill: {e}"))?),
                    None => defaults.shard_kill_at,
                },
                shard_stall_at: match get("shard-stall") {
                    Some(v) => Some(
                        v.parse::<u64>()
                            .map_err(|e| format!("--shard-stall: {e}"))?,
                    ),
                    None => defaults.shard_stall_at,
                },
                lease_ttl_ms: get("lease-ttl")
                    .map(|v| v.parse::<u64>().map_err(|e| format!("--lease-ttl: {e}")))
                    .transpose()?,
                no_restart_coordinator: flags.contains_key("no-restart-coordinator"),
                report: get("report").map(PathBuf::from),
                metrics: get("metrics").map(PathBuf::from),
            })
        }
        "inspect" => {
            let file = positional
                .first()
                .cloned()
                .or_else(|| get("file"))
                .ok_or("inspect needs a FILE")?;
            Ok(Command::Inspect {
                file: PathBuf::from(file),
                top_spans: get("top-spans")
                    .map(|v| v.parse::<usize>().map_err(|e| format!("--top-spans: {e}")))
                    .transpose()?,
                shards: get("shards")
                    .map(|v| -> Result<u32, String> {
                        let n = v.parse::<u32>().map_err(|e| format!("--shards: {e}"))?;
                        if n == 0 {
                            return Err("--shards must be at least 1".into());
                        }
                        Ok(n)
                    })
                    .transpose()?,
            })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command {other:?}; try `skyload help`")),
    }
}

/// Usage text.
pub const USAGE: &str = "\
skyload — parallel bulk loading for sky-survey catalogs (SC 2005 reproduction)

USAGE:
  skyload generate --out DIR [--seed N] [--files N] [--error-rate F] [--obs-id N]
      Write a synthetic observation (catalog files + manifest.json).

  skyload load --dir DIR [--nodes N] [--config loader.json]
               [--journal J.json] [--report out.json] [--verify] [--audit]
               [--pipeline off|double] [--metrics out.jsonl]
      Load every *.cat file in DIR into a fresh repository with N
      parallel loaders. --journal enables checkpoint/resume; --verify
      checks final row counts against DIR/manifest.json; --audit runs
      the full post-load integrity audit (FKs, PK indexes, CHECKs,
      recomputed htmid/galactic columns); --pipeline double overlaps
      each loader's parse and flush stages with double buffering;
      --metrics dumps the telemetry registry (counters, gauges,
      histograms, spans) as JSONL.

  skyload inspect FILE [--top-spans N] [--shards N]
      Parse a catalog file and summarize rows per table and bad lines.
      With --shards N, also show how the rows would route across N
      declination zones (per-shard row counts; the band spans the decs
      present in the file). With --top-spans N, FILE is a --metrics
      JSONL dump instead: print the N slowest recorded spans (parse /
      flush / commit timeline).

  skyload chaos [--seed N] [--files N] [--nodes N] [--error-rate F]
                [--quick] [--loader-kill N] [--loader-stall N]
                [--lease-ttl MS] [--report out.json] [--metrics out.jsonl]
      Load a synthetic night under a seeded multi-kind fault plan
      (resets, busy rejections, latency spikes, disk-full commits,
      batch corruption, one crash-on-flush) and verify that every
      loadable row landed exactly once. --loader-kill N kills the
      loader holding the Nth lease grant mid-file; --loader-stall N
      freezes it past its lease TTL and lets it wake as a zombie
      (whose stale flush must be fenced out); --lease-ttl sets the
      fleet's lease TTL in milliseconds. Same seed, same fault
      schedule. Exits 1 on any lost or duplicated row. --metrics
      dumps the shared telemetry registry — whose counters the chaos
      report is a view over — as JSONL.

  skyload live [--seed N] [--files N] [--nodes N] [--mean-interarrival MS]
               [--slo-budget MS] [--quick] [--report out.json]
               [--metrics out.jsonl]
      Ingest a synthetic night as continuous micro-batches: files
      arrive on a seeded Poisson schedule (mean gap
      --mean-interarrival) and each is loaded as one fenced,
      journaled micro-batch. The freshness clock measures arrival →
      committed-visible per batch into the live.freshness_us
      histogram; batches whose lag overruns --slo-budget count as SLO
      violations. Prints freshness p50/p95/p99/max and the violation
      count; exits 1 if any row was lost or a batch failed.

  skyload campaign [--seed N] [--files N] [--nodes N] [--quick]
                   [--loader-kill N] [--no-swap-crash] [--restart-server]
                   [--readers N] [--report out.json] [--metrics out.jsonl]
      Chaos-prove a season-scale reprocessing campaign end to end:
      live-ingest season 1 under arrival bursts and connection
      weather, rebuild it as season 2 in shadow tables (killing the
      loader holding the Nth lease grant), crash the campaign
      coordinator at the atomic shadow→live swap point, resume from
      the persisted manifest, and purge the demoted season — all
      while --readers serve-tier scan threads verify that every read
      sees exactly one season. --restart-server escalates the swap
      crash to a full server crash recovered from the durable log;
      --no-swap-crash runs the happy path. Exits 1 on any lost,
      duplicated or torn read.

  skyload scrub [--seed N] [--files N] [--nodes N] [--bit-rot F]
                [--scrub-interval MS] [--wal-rot] [--readers N] [--quick]
                [--report out.json] [--metrics out.jsonl]
      Prove the at-rest integrity loop end to end: live-ingest a
      night while a seeded schedule flips bits in committed heap rows
      (probability --bit-rot per opportunity), a background scrubber
      CRC-walks every table each --scrub-interval ms and quarantines
      what it catches, and --readers serve-tier scan threads verify
      no rotted row is ever served (a caught read errors, it never
      returns data). Afterwards a journal-driven repair maps each
      quarantined row back to its source catalog file by id span and
      re-loads exactly those files, deduplicating survivors.
      --wal-rot additionally flips a bit in the durable log and
      restarts the server from it: replay must stop at the first bad
      record, and the repair widens to the whole night. Exits 1
      unless the catalog heals to the generator's ground truth with
      zero lost, duplicated, or served-corrupt rows. --metrics dumps
      the scrub.* and repair.* counters as JSONL.

  skyload shard-chaos [--seed N] [--files N] [--shards N] [--readers N]
                      [--quick] [--shard-kill N] [--shard-stall N]
                      [--lease-ttl MS] [--no-restart-coordinator]
                      [--report out.json] [--metrics out.jsonl]
      Soak a declination-zone sharded repository: the night live-ingests
      into N zone shards (each its own engine behind one coordinator)
      while a seeded driver kills shard engines mid-flush
      (--shard-kill pins the Nth opportunity) and freezes heartbeats
      past the lease TTL (--shard-stall) so zombie flushes must be
      fenced; the supervisor detects lease expiry, fences the dead
      generation, and rebuilds the shard from its durable log — or from
      source files when the log is damaged — while in-flight batches
      requeue. Mid-night the coordinator itself restarts and re-adopts
      the live shards with journal-restored epochs. Scatter-gather
      readers run throughout: every read is shard-complete or carries
      an explicit partial flag naming the missing zones — never
      silently truncated. Exits 1 unless every loadable row landed
      exactly once in exactly the right zone with nothing corrupt
      served.

  skyload serve [--seed N] [--users N] [--queries N] [--ingest-nodes N]
                [--fast-deadline MS] [--quick] [--report out.json]
                [--metrics out.jsonl]
      Run a CasJobs-style serving mix — point lookups, cone searches
      via the htmid index, and batch scans — from N concurrent users
      while a loader fleet ingests a night into the same repository.
      Fast queries run synchronously under a deadline; overruns demote
      to the slow queue, whose jobs materialize results into per-user
      MyDB scratch tables under row quotas. Prints per-queue
      p50/p95/p99 latency. --ingest-nodes 0 is the serve-only
      baseline; --fast-deadline sets the demotion deadline in
      milliseconds; --metrics dumps the serve.* counters and latency
      histograms as JSONL.

  skyload help
      This message.
";

/// Execute a command, writing human output through `out`. Returns the
/// process exit code.
pub fn execute(cmd: Command, out: &mut dyn std::io::Write) -> Result<i32, String> {
    match cmd {
        Command::Help => {
            writeln!(out, "{USAGE}").map_err(|e| e.to_string())?;
            Ok(0)
        }
        Command::Generate {
            out: dir,
            seed,
            files,
            error_rate,
            obs_id,
        } => {
            std::fs::create_dir_all(&dir).map_err(|e| format!("create {dir:?}: {e}"))?;
            let cfg = GenConfig::night(seed, obs_id)
                .with_files(files)
                .with_error_rate(error_rate);
            let generated = generate_observation(&cfg);
            let mut total = ExpectedCounts::default();
            for f in &generated {
                f.write_to(&dir)
                    .map_err(|e| format!("write {}: {e}", f.name))?;
                total.merge(&f.expected);
            }
            let manifest = Manifest::from_expected(&total, obs_id);
            std::fs::write(
                dir.join("manifest.json"),
                serde_json::to_string_pretty(&manifest).expect("manifest serializes"),
            )
            .map_err(|e| format!("write manifest: {e}"))?;
            writeln!(
                out,
                "wrote {} files ({} rows, {} loadable) + manifest.json to {}",
                generated.len(),
                total.total_emitted(),
                total.total_loadable(),
                dir.display()
            )
            .map_err(|e| e.to_string())?;
            Ok(0)
        }
        Command::Chaos {
            seed,
            files,
            nodes,
            error_rate,
            quick,
            loader_kill_at,
            loader_stall_at,
            lease_ttl_ms,
            report,
            metrics,
        } => {
            let mut cfg = crate::chaos::ChaosConfig {
                seed,
                files,
                nodes,
                error_rate,
                quick,
                loader_kill_at,
                loader_stall_at,
                ..crate::chaos::ChaosConfig::default()
            };
            if let Some(ms) = lease_ttl_ms {
                if ms == 0 {
                    return Err("--lease-ttl must be at least 1 ms".into());
                }
                cfg.lease_ttl = std::time::Duration::from_millis(ms);
            }
            let obs = Arc::new(skyobs::Registry::new());
            let soak = crate::chaos::run_chaos_with_obs(&cfg, &obs)?;
            writeln!(
                out,
                "chaos soak: seed {} · {} generations · {} restart(s) · {} retries · {} breaker trip(s)",
                seed, soak.generations, soak.restarts, soak.retries, soak.breaker_trips
            )
            .map_err(|e| e.to_string())?;
            writeln!(out, "faults injected:").map_err(|e| e.to_string())?;
            for (kind, n) in &soak.faults_by_kind {
                writeln!(out, "  {kind:<16} {n:>6}").map_err(|e| e.to_string())?;
            }
            writeln!(
                out,
                "time degraded: {:.2?} across {} ladder move(s)",
                soak.degraded_time,
                soak.degrade_transitions.len()
            )
            .map_err(|e| e.to_string())?;
            if soak.loader_kills + soak.loader_stalls + soak.lease_reclaims > 0 {
                writeln!(
                    out,
                    "fleet: {} loader kill(s) · {} stall(s) · {} lease reclaim(s) · {} fenced flush(es)",
                    soak.loader_kills, soak.loader_stalls, soak.lease_reclaims, soak.fencing_rejections
                )
                .map_err(|e| e.to_string())?;
            }
            writeln!(
                out,
                "rows: {} expected, {} present, {} lost, {} duplicated",
                soak.expected_rows, soak.actual_rows, soak.lost_rows, soak.duplicated_rows
            )
            .map_err(|e| e.to_string())?;
            for m in &soak.mismatches {
                writeln!(out, "  MISMATCH {m}").map_err(|e| e.to_string())?;
            }
            for f in &soak.unfinished_files {
                writeln!(out, "  UNFINISHED {f}").map_err(|e| e.to_string())?;
            }
            write_telemetry_summary(out, &obs)?;
            if let Some(path) = metrics {
                std::fs::write(&path, obs.to_jsonl())
                    .map_err(|e| format!("write {path:?}: {e}"))?;
                writeln!(out, "metrics written to {}", path.display())
                    .map_err(|e| e.to_string())?;
            }
            if let Some(path) = report {
                std::fs::write(
                    &path,
                    serde_json::to_string_pretty(&soak).expect("chaos report serializes"),
                )
                .map_err(|e| format!("write {path:?}: {e}"))?;
                writeln!(out, "report written to {}", path.display()).map_err(|e| e.to_string())?;
            }
            if soak.exactly_once() {
                writeln!(out, "exactly-once: PASS").map_err(|e| e.to_string())?;
                Ok(0)
            } else {
                writeln!(out, "exactly-once: FAIL").map_err(|e| e.to_string())?;
                Ok(1)
            }
        }
        Command::Live {
            seed,
            files,
            nodes,
            mean_interarrival_ms,
            slo_budget_ms,
            quick,
            report,
            metrics,
        } => {
            let n_files = if quick { files.min(4) } else { files }.max(1);
            let night_files =
                generate_observation(&GenConfig::night(seed, 100).with_files(n_files));
            let expected = skycat::gen::aggregate_expected(&night_files);
            let obs = Arc::new(skyobs::Registry::new());
            let server: Arc<Server> =
                Server::start_with_obs(DbConfig::paper(TimeScale::ZERO), obs.clone());
            skycat::create_all(server.engine()).map_err(|e| e.to_string())?;
            skycat::seed_static(server.engine()).map_err(|e| e.to_string())?;
            skycat::seed_observation(server.engine(), 1, 100).map_err(|e| e.to_string())?;
            let journal = LoadJournal::new();
            let mut live_cfg = crate::live::LiveConfig::test(seed);
            live_cfg.nodes = nodes;
            live_cfg.mean_interarrival = std::time::Duration::from_millis(mean_interarrival_ms);
            live_cfg.slo_budget = std::time::Duration::from_millis(slo_budget_ms);
            let r = crate::live::run_live(&server, &night_files, &live_cfg, Some(&journal))
                .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "live: seed {} · {} micro-batch(es) on {} node(s) · {} rows loaded ({} skipped) · night span {} us",
                r.seed, r.batches, nodes, r.rows_loaded, r.rows_skipped, r.night_span_us
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "freshness: n={:<5} p50={:>8} us  p95={:>8} us  p99={:>8} us  max={:>8} us",
                r.freshness.count,
                r.freshness.p50_us,
                r.freshness.p95_us,
                r.freshness.p99_us,
                r.freshness.max_us
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "slo: budget {} us · {} violation(s) · {} arrival burst(s) · {} retries",
                r.slo_budget_us, r.slo_violations, r.arrival_bursts, r.retries
            )
            .map_err(|e| e.to_string())?;
            let mut mismatches = 0;
            for (table, expect) in &expected.loadable {
                let tid = server.engine().table_id(table).map_err(|e| e.to_string())?;
                let got = server.engine().row_count(tid);
                if got != *expect {
                    writeln!(out, "MISMATCH {table}: expected {expect}, got {got}")
                        .map_err(|e| e.to_string())?;
                    mismatches += 1;
                }
            }
            write_telemetry_summary(out, &obs)?;
            if let Some(path) = metrics {
                std::fs::write(&path, obs.to_jsonl())
                    .map_err(|e| format!("write {path:?}: {e}"))?;
                writeln!(out, "metrics written to {}", path.display())
                    .map_err(|e| e.to_string())?;
            }
            if let Some(path) = report {
                std::fs::write(
                    &path,
                    serde_json::to_string_pretty(&r).expect("live report serializes"),
                )
                .map_err(|e| format!("write {path:?}: {e}"))?;
                writeln!(out, "report written to {}", path.display()).map_err(|e| e.to_string())?;
            }
            if r.failed_files > 0 {
                writeln!(out, "  {} micro-batch(es) failed to load", r.failed_files)
                    .map_err(|e| e.to_string())?;
            }
            if mismatches > 0 || r.failed_files > 0 {
                writeln!(out, "live ingest: FAIL").map_err(|e| e.to_string())?;
                return Ok(1);
            }
            writeln!(
                out,
                "live ingest: PASS · freshness SLO {}",
                if r.slo_met() { "MET" } else { "VIOLATED" }
            )
            .map_err(|e| e.to_string())?;
            Ok(0)
        }
        Command::Campaign {
            seed,
            files,
            nodes,
            quick,
            loader_kill_at,
            no_swap_crash,
            restart_server,
            readers,
            report,
            metrics,
        } => {
            let cfg = crate::chaos::CampaignChaosConfig {
                seed,
                files,
                nodes,
                quick,
                loader_kill_at,
                swap_crash: !no_swap_crash,
                restart_server,
                readers,
                ..crate::chaos::CampaignChaosConfig::default()
            };
            let obs = Arc::new(skyobs::Registry::new());
            let r = crate::chaos::run_campaign_chaos_with_obs(&cfg, &obs)?;
            writeln!(
                out,
                "campaign chaos: seed {} · {} resume(s) · {} server restart(s) · swapped: {}",
                seed, r.campaign_resumes, r.server_restarts, r.swapped
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "live night: {} batch(es) · freshness p50={} us p95={} us p99={} us max={} us · {} SLO violation(s)",
                r.live.batches,
                r.live.freshness.p50_us,
                r.live.freshness.p95_us,
                r.live.freshness.p99_us,
                r.live.freshness.max_us,
                r.live.slo_violations
            )
            .map_err(|e| e.to_string())?;
            writeln!(out, "faults injected:").map_err(|e| e.to_string())?;
            for (kind, n) in &r.faults_by_kind {
                writeln!(out, "  {kind:<16} {n:>6}").map_err(|e| e.to_string())?;
            }
            writeln!(
                out,
                "fleet: {} loader kill(s) · {} lease reclaim(s) · {} fenced operation(s)",
                r.loader_kills, r.lease_reclaims, r.fencing_rejections
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "readers: {} scan(s) · {} old-season · {} new-season · {} torn",
                r.reads_total, r.reads_old_season, r.reads_new_season, r.mixed_season_reads
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "rows: {} expected, {} present, {} lost, {} duplicated · {} shadow residual · {} purged",
                r.expected_rows,
                r.actual_rows,
                r.lost_rows,
                r.duplicated_rows,
                r.shadow_residual_rows,
                r.purged_rows
            )
            .map_err(|e| e.to_string())?;
            for m in &r.mismatches {
                writeln!(out, "  MISMATCH {m}").map_err(|e| e.to_string())?;
            }
            write_telemetry_summary(out, &obs)?;
            if let Some(path) = metrics {
                std::fs::write(&path, obs.to_jsonl())
                    .map_err(|e| format!("write {path:?}: {e}"))?;
                writeln!(out, "metrics written to {}", path.display())
                    .map_err(|e| e.to_string())?;
            }
            if let Some(path) = report {
                std::fs::write(
                    &path,
                    serde_json::to_string_pretty(&r).expect("campaign report serializes"),
                )
                .map_err(|e| format!("write {path:?}: {e}"))?;
                writeln!(out, "report written to {}", path.display()).map_err(|e| e.to_string())?;
            }
            if r.swapped && r.exactly_once() && r.swap_atomic() {
                writeln!(out, "exactly-once: PASS · season-atomicity: PASS")
                    .map_err(|e| e.to_string())?;
                Ok(0)
            } else {
                writeln!(
                    out,
                    "exactly-once: {} · season-atomicity: {}",
                    if r.exactly_once() && r.swapped {
                        "PASS"
                    } else {
                        "FAIL"
                    },
                    if r.swap_atomic() { "PASS" } else { "FAIL" }
                )
                .map_err(|e| e.to_string())?;
                Ok(1)
            }
        }
        Command::Scrub {
            seed,
            files,
            nodes,
            bit_rot,
            scrub_interval_ms,
            wal_rot,
            readers,
            quick,
            report,
            metrics,
        } => {
            let cfg = crate::chaos::ScrubChaosConfig {
                seed,
                files,
                nodes,
                rot_rate: bit_rot,
                scrub_interval: std::time::Duration::from_millis(scrub_interval_ms),
                wal_rot,
                readers,
                quick,
                ..crate::chaos::ScrubChaosConfig::default()
            };
            let obs = Arc::new(skyobs::Registry::new());
            let r = crate::chaos::run_scrub_chaos_with_obs(&cfg, &obs)?;
            writeln!(
                out,
                "scrub chaos: seed {} · {} heap bit(s) rotted · wal rot: {} · {} scrub pass(es)",
                seed, r.heap_rot_injected, r.wal_rot_injected, r.scrub_passes
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "scrubber: {} page(s) walked · {} bad record(s) · {} bad node(s) · {} quarantined",
                r.scrub_pages, r.bad_records, r.bad_nodes, r.quarantined_rows
            )
            .map_err(|e| e.to_string())?;
            if r.wal_rot_injected {
                writeln!(
                    out,
                    "restart: recovered from log: {} · replay flagged corruption: {} · rebuilt from source: {}",
                    r.recovered_from_log, r.log_replay_flagged_corruption, r.rebuilt_from_source
                )
                .map_err(|e| e.to_string())?;
            }
            writeln!(
                out,
                "readers: {} scan(s) · {} blocked by CRC · {} corrupt row(s) served",
                r.reads_total, r.blocked_reads, r.corrupt_rows_served
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "repair: {} file(s) reloaded ({}) · {} row(s) restored · {} survivor(s) deduped · {} unmapped",
                r.repair.files_reloaded.len(),
                if r.repair.widened_for_wal_rot {
                    "widened to full night"
                } else {
                    "mapped by id span"
                },
                r.repair.rows_restored,
                r.repair.rows_skipped,
                r.repair.unmapped_rows
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "rows: {} expected, {} present, {} lost, {} duplicated · {} bad after repair",
                r.expected_rows,
                r.actual_rows,
                r.lost_rows,
                r.duplicated_rows,
                r.post_repair_bad_records
            )
            .map_err(|e| e.to_string())?;
            for m in &r.mismatches {
                writeln!(out, "  MISMATCH {m}").map_err(|e| e.to_string())?;
            }
            write_telemetry_summary(out, &obs)?;
            if let Some(path) = metrics {
                std::fs::write(&path, obs.to_jsonl())
                    .map_err(|e| format!("write {path:?}: {e}"))?;
                writeln!(out, "metrics written to {}", path.display())
                    .map_err(|e| e.to_string())?;
            }
            if let Some(path) = report {
                std::fs::write(
                    &path,
                    serde_json::to_string_pretty(&r).expect("scrub report serializes"),
                )
                .map_err(|e| format!("write {path:?}: {e}"))?;
                writeln!(out, "report written to {}", path.display()).map_err(|e| e.to_string())?;
            }
            if r.healed() {
                writeln!(out, "integrity: HEALED").map_err(|e| e.to_string())?;
                Ok(0)
            } else {
                writeln!(out, "integrity: FAIL").map_err(|e| e.to_string())?;
                Ok(1)
            }
        }
        Command::ShardChaos {
            seed,
            files,
            shards,
            readers,
            quick,
            shard_kill_at,
            shard_stall_at,
            lease_ttl_ms,
            no_restart_coordinator,
            report,
            metrics,
        } => {
            let mut cfg = crate::chaos::ShardChaosConfig {
                seed,
                files,
                shards,
                readers,
                quick,
                shard_kill_at,
                shard_stall_at,
                restart_coordinator: !no_restart_coordinator,
                ..crate::chaos::ShardChaosConfig::default()
            };
            if let Some(ms) = lease_ttl_ms {
                if ms == 0 {
                    return Err("--lease-ttl must be at least 1 ms".into());
                }
                cfg.lease_ttl = std::time::Duration::from_millis(ms);
            }
            let obs = Arc::new(skyobs::Registry::new());
            let r = crate::chaos::run_shard_chaos_with_obs(&cfg, &obs)?;
            writeln!(
                out,
                "shard chaos: seed {} · {} zone(s) · {} shard kill(s) · {} stall(s) · {} coordinator restart(s)",
                seed, shards, r.shard_kills, r.shard_stalls, r.coordinator_restarts
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "supervisor: {} reclaim(s) · {} rebuild(s) · {} fenced flush(es) · {} requeue(s)",
                r.reclaims, r.rebuilds, r.fenced_flushes, r.requeues
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "readers: {} scan(s) · {} flagged partial (never silent) · {} corrupt row(s) served",
                r.reads_total, r.partial_reads, r.corrupt_rows_served
            )
            .map_err(|e| e.to_string())?;
            writeln!(out, "faults injected:").map_err(|e| e.to_string())?;
            for (kind, n) in &r.faults_by_kind {
                writeln!(out, "  {kind:<16} {n:>6}").map_err(|e| e.to_string())?;
            }
            for (z, n) in r.per_zone_rows.iter().enumerate() {
                writeln!(out, "  zone {z}: {n} objects row(s)").map_err(|e| e.to_string())?;
            }
            writeln!(
                out,
                "rows: {} expected, {} present, {} lost, {} duplicated",
                r.expected_rows, r.actual_rows, r.lost_rows, r.duplicated_rows
            )
            .map_err(|e| e.to_string())?;
            for m in &r.mismatches {
                writeln!(out, "  MISMATCH {m}").map_err(|e| e.to_string())?;
            }
            write_telemetry_summary(out, &obs)?;
            if let Some(path) = metrics {
                std::fs::write(&path, obs.to_jsonl())
                    .map_err(|e| format!("write {path:?}: {e}"))?;
                writeln!(out, "metrics written to {}", path.display())
                    .map_err(|e| e.to_string())?;
            }
            if let Some(path) = report {
                std::fs::write(
                    &path,
                    serde_json::to_string_pretty(&r).expect("shard chaos report serializes"),
                )
                .map_err(|e| format!("write {path:?}: {e}"))?;
                writeln!(out, "report written to {}", path.display()).map_err(|e| e.to_string())?;
            }
            if r.exactly_once() {
                writeln!(out, "exactly-once: PASS").map_err(|e| e.to_string())?;
                Ok(0)
            } else {
                writeln!(out, "exactly-once: FAIL").map_err(|e| e.to_string())?;
                Ok(1)
            }
        }
        Command::Serve {
            seed,
            users,
            queries,
            ingest_nodes,
            fast_deadline_ms,
            quick,
            report,
            metrics,
        } => {
            let mut cfg = crate::serving::ServeLoadConfig::default()
                .with_seed(seed)
                .with_users(users)
                .with_queries_per_user(queries)
                .with_ingest_nodes(ingest_nodes)
                .with_quick(quick);
            if let Some(ms) = fast_deadline_ms {
                if ms == 0 {
                    return Err("--fast-deadline must be at least 1 ms".into());
                }
                cfg = cfg.with_fast_deadline(std::time::Duration::from_millis(ms));
            }
            let outcome = crate::serving::run_serve_load(&cfg)?;
            let r = &outcome.report;
            writeln!(
                out,
                "serve: seed {} · {} users × {} queries · {} ingest node(s) · makespan {:.2?}",
                r.seed, r.users, queries, r.ingest_nodes, r.makespan
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "fast queue: {} admitted · {} completed · {} demoted · {} rejected",
                r.fast_admitted, r.fast_completed, r.fast_demoted, r.fast_rejected
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "slow queue: {} submitted · {} completed · {} failed · {} MyDB table(s), {} row(s)",
                r.slow_submitted, r.slow_completed, r.slow_failed, r.mydb_tables, r.mydb_rows
            )
            .map_err(|e| e.to_string())?;
            let q = |label: &str, s: &crate::serving::QueueStats| {
                format!(
                    "  {label:<14} n={:<5} p50={:>8} us  p95={:>8} us  p99={:>8} us  max={:>8} us",
                    s.count, s.p50_us, s.p95_us, s.p99_us, s.max_us
                )
            };
            writeln!(out, "{}", q("fast wall", &r.fast_wall)).map_err(|e| e.to_string())?;
            writeln!(out, "{}", q("fast modeled", &r.fast_modeled)).map_err(|e| e.to_string())?;
            writeln!(out, "{}", q("slow wall", &r.slow_wall)).map_err(|e| e.to_string())?;
            writeln!(out, "{}", q("slow wait", &r.slow_wait)).map_err(|e| e.to_string())?;
            if ingest_nodes > 0 {
                writeln!(
                    out,
                    "ingest: {} row(s) loaded concurrently · complete: {}",
                    r.ingest_rows, r.ingest_complete
                )
                .map_err(|e| e.to_string())?;
            }
            write_telemetry_summary(out, outcome.server.obs())?;
            if let Some(path) = metrics {
                std::fs::write(&path, outcome.server.obs().to_jsonl())
                    .map_err(|e| format!("write {path:?}: {e}"))?;
                writeln!(out, "metrics written to {}", path.display())
                    .map_err(|e| e.to_string())?;
            }
            if let Some(path) = report {
                std::fs::write(
                    &path,
                    serde_json::to_string_pretty(r).expect("serve report serializes"),
                )
                .map_err(|e| format!("write {path:?}: {e}"))?;
                writeln!(out, "report written to {}", path.display()).map_err(|e| e.to_string())?;
            }
            if ingest_nodes > 0 && !r.ingest_complete {
                writeln!(out, "ingest: INCOMPLETE").map_err(|e| e.to_string())?;
                return Ok(1);
            }
            Ok(0)
        }
        Command::Inspect {
            file,
            top_spans,
            shards,
        } => {
            let text = std::fs::read_to_string(&file).map_err(|e| format!("read {file:?}: {e}"))?;
            if let Some(n) = top_spans {
                return inspect_top_spans(out, &file, &text, n);
            }
            let mut by_table: BTreeMap<&'static str, u64> = BTreeMap::new();
            let mut bad = 0u64;
            for line in text.lines() {
                match skycat::parse_line(line) {
                    Ok(rec) => *by_table.entry(rec.tag.table_name()).or_insert(0) += 1,
                    Err(_) => bad += 1,
                }
            }
            writeln!(out, "{}:", file.display()).map_err(|e| e.to_string())?;
            for (t, n) in &by_table {
                writeln!(out, "  {t:<24} {n:>7}").map_err(|e| e.to_string())?;
            }
            writeln!(out, "  unparseable lines: {bad}").map_err(|e| e.to_string())?;
            if let Some(zones) = shards {
                inspect_shards(out, &file, &text, zones)?;
            }
            Ok(0)
        }
        Command::Load {
            dir,
            nodes,
            config,
            journal,
            report,
            verify,
            audit,
            pipeline,
            metrics,
        } => {
            let mut loader_cfg = match config {
                Some(path) => {
                    let json = std::fs::read_to_string(&path)
                        .map_err(|e| format!("read {path:?}: {e}"))?;
                    LoaderConfig::from_json(&json).map_err(|e| format!("parse {path:?}: {e}"))?
                }
                None => LoaderConfig::paper(),
            };
            if let Some(p) = pipeline {
                loader_cfg.pipeline = p;
            }
            loader_cfg.validate()?;

            let files = read_catalog_dir(&dir)?;
            if files.is_empty() {
                return Err(format!("no *.cat files in {}", dir.display()));
            }
            let manifest: Option<Manifest> = {
                let path = dir.join("manifest.json");
                match std::fs::read_to_string(&path) {
                    Ok(json) => Some(
                        serde_json::from_str(&json).map_err(|e| format!("parse {path:?}: {e}"))?,
                    ),
                    Err(_) => None,
                }
            };
            let obs_id = manifest.as_ref().map_or(100, |m| m.obs_id);

            let server: Arc<Server> = Server::start(DbConfig::paper(TimeScale::ZERO));
            skycat::create_all(server.engine()).map_err(|e| e.to_string())?;
            skycat::seed_static(server.engine()).map_err(|e| e.to_string())?;
            skycat::seed_observation(server.engine(), 1, obs_id).map_err(|e| e.to_string())?;

            let journal_store = match &journal {
                Some(path) => Some(LoadJournal::load(path).map_err(|e| e.to_string())?),
                None => None,
            };
            let night = load_night_with_journal(
                &server,
                &files,
                &loader_cfg,
                nodes,
                AssignmentPolicy::Dynamic,
                journal_store.as_ref(),
            )
            .map_err(|e| e.to_string())?;
            if let (Some(path), Some(j)) = (&journal, &journal_store) {
                j.save(path).map_err(|e| e.to_string())?;
            }

            writeln!(
                out,
                "loaded {} rows ({} skipped) from {} files on {} nodes in {:.2?}",
                night.rows_loaded(),
                night.rows_skipped(),
                night.files.len(),
                nodes,
                night.makespan
            )
            .map_err(|e| e.to_string())?;
            // A load where *everything* was skipped is an operational error
            // (wrong file, wrong format), not a successful night.
            if night.rows_loaded() == 0 && night.rows_skipped() > 0 {
                return Err(format!(
                    "all {} rows were skipped — wrong files or a format mismatch? \
                     (re-running an already-loaded night with --journal reports 0 skipped)",
                    night.rows_skipped()
                ));
            }
            for (t, n) in night.loaded_by_table() {
                writeln!(out, "  {t:<24} {n:>7}").map_err(|e| e.to_string())?;
            }
            if night.retries > 0 || night.breaker_trips > 0 {
                writeln!(
                    out,
                    "resilience: {} retries · {} breaker trip(s) · {:.2?} degraded ({} ladder moves)",
                    night.retries,
                    night.breaker_trips,
                    night.degraded_time,
                    night.degrade_transitions.len()
                )
                .map_err(|e| e.to_string())?;
                for (kind, n) in &night.faults_survived {
                    writeln!(out, "  survived {kind:<16} {n:>6}").map_err(|e| e.to_string())?;
                }
            }
            if night.loader_kills + night.loader_stalls + night.lease_reclaims > 0 {
                writeln!(
                    out,
                    "fleet: {} loader kill(s) · {} stall(s) · {} lease reclaim(s) · {} fenced flush(es)",
                    night.loader_kills,
                    night.loader_stalls,
                    night.lease_reclaims,
                    night.fencing_rejections
                )
                .map_err(|e| e.to_string())?;
            }
            let _ = server.obs_snapshot(); // sync model.* gauges into the registry
            write_telemetry_summary(out, server.obs())?;
            if let Some(path) = &metrics {
                std::fs::write(path, server.obs().to_jsonl())
                    .map_err(|e| format!("write {path:?}: {e}"))?;
                writeln!(out, "metrics written to {}", path.display())
                    .map_err(|e| e.to_string())?;
            }
            if !night.is_complete() {
                for f in &night.failed_files {
                    writeln!(out, "  FAILED {}: {}", f.file, f.error).map_err(|e| e.to_string())?;
                }
                return Err(format!(
                    "{} file(s) failed to load; the journal (if any) holds their progress",
                    night.failed_files.len()
                ));
            }

            if let Some(path) = report {
                std::fs::write(
                    &path,
                    serde_json::to_string_pretty(&night).expect("report serializes"),
                )
                .map_err(|e| format!("write {path:?}: {e}"))?;
                writeln!(out, "report written to {}", path.display()).map_err(|e| e.to_string())?;
            }

            if verify {
                let Some(manifest) = manifest else {
                    return Err("--verify requires manifest.json in the directory".into());
                };
                let mut mismatches = 0;
                for (table, expect) in &manifest.loadable {
                    let tid = server.engine().table_id(table).map_err(|e| e.to_string())?;
                    let got = server.engine().row_count(tid);
                    if got != *expect {
                        writeln!(out, "MISMATCH {table}: expected {expect}, got {got}")
                            .map_err(|e| e.to_string())?;
                        mismatches += 1;
                    }
                }
                if mismatches > 0 {
                    return Err(format!("{mismatches} table(s) mismatched the manifest"));
                }
                writeln!(out, "verified against manifest: exact match")
                    .map_err(|e| e.to_string())?;
            }

            if audit {
                let audit_report =
                    crate::audit::audit_repository(server.engine()).map_err(|e| e.to_string())?;
                writeln!(
                    out,
                    "audit: {} rows, {} FK checks, {} CHECK evaluations, {} recomputations",
                    audit_report.rows_checked,
                    audit_report.fk_checks,
                    audit_report.check_evaluations,
                    audit_report.recomputations
                )
                .map_err(|e| e.to_string())?;
                if !audit_report.is_clean() {
                    for f in audit_report.findings.iter().take(20) {
                        writeln!(out, "  AUDIT FINDING [{}] {}", f.table, f.detail)
                            .map_err(|e| e.to_string())?;
                    }
                    return Err(format!(
                        "audit found {} problem(s)",
                        audit_report.findings.len()
                    ));
                }
                writeln!(out, "audit: repository is clean").map_err(|e| e.to_string())?;
            }
            Ok(0)
        }
    }
}

/// One-line telemetry summary: registry population and span-ring state.
fn write_telemetry_summary(
    out: &mut dyn std::io::Write,
    obs: &skyobs::Registry,
) -> Result<(), String> {
    let snap = obs.snapshot();
    writeln!(
        out,
        "telemetry: {} counters · {} gauges · {} span(s) held ({} dropped)",
        snap.counters.len(),
        snap.gauges.len(),
        obs.spans().len(),
        obs.spans_dropped()
    )
    .map_err(|e| e.to_string())
}

/// Print how a catalog file's rows would route across `zones`
/// declination zones. The band spans the declinations actually present
/// in the file so the breakdown is meaningful for any instrument
/// footprint; replicated tables (which broadcast to every shard) are
/// reported once, not per zone.
fn inspect_shards(
    out: &mut dyn std::io::Write,
    file: &Path,
    text: &str,
    zones: u32,
) -> Result<(), String> {
    use skydb::shard::ZoneMap;
    use skydb::Value;
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for line in text.lines() {
        let Ok(rec) = skycat::parse_line(line) else {
            continue;
        };
        let Ok((table, row)) = skycat::transform(&rec) else {
            continue;
        };
        if table == "objects" {
            if let Some(Value::Float(dec)) = row.get(3) {
                lo = lo.min(*dec);
                hi = hi.max(*dec);
            }
        }
    }
    let map = if lo.is_finite() && hi > lo {
        // Nudge the upper edge so the maximum dec itself stays in band.
        ZoneMap::band(zones, lo, hi + (hi - lo) * 1e-9)
    } else {
        ZoneMap::full_sky(zones)
    };
    let mut router = crate::shardload::ShardRouter::new(map);
    let routed = router.route(
        &CatalogFile {
            name: file.display().to_string(),
            text: text.to_owned(),
            expected: ExpectedCounts::default(),
        },
        None,
    );
    writeln!(out, "  routed across {zones} declination zone(s):").map_err(|e| e.to_string())?;
    for z in 0..zones {
        let (zlo, zhi) = map.bounds(z);
        let per_table = routed.zone_rows(z);
        let zoned: u64 = skycat::CATALOG_TABLES
            .iter()
            .enumerate()
            .filter(|(_, t)| crate::shardload::ZONED_TABLES.contains(t))
            .map(|(i, _)| per_table[i].len() as u64)
            .sum();
        let objects = skycat::CATALOG_TABLES
            .iter()
            .position(|t| *t == "objects")
            .map_or(0, |i| per_table[i].len() as u64);
        writeln!(
            out,
            "    zone {z} [{zlo:+9.4}, {zhi:+9.4}):  {objects:>7} objects  {zoned:>7} zoned row(s)"
        )
        .map_err(|e| e.to_string())?;
    }
    let replicated: u64 = skycat::CATALOG_TABLES
        .iter()
        .enumerate()
        .filter(|(_, t)| !crate::shardload::ZONED_TABLES.contains(t))
        .map(|(i, _)| routed.zone_rows(0)[i].len() as u64)
        .sum();
    writeln!(
        out,
        "    + {replicated} replicated row(s) broadcast to every zone"
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

/// Print the N slowest spans recorded in a `--metrics` JSONL dump.
fn inspect_top_spans(
    out: &mut dyn std::io::Write,
    file: &Path,
    text: &str,
    n: usize,
) -> Result<i32, String> {
    let mut spans: Vec<(u64, u64, String, String, String)> = Vec::new();
    for line in text.lines() {
        if !line.contains("\"type\":\"span\"") {
            continue;
        }
        let (Some(name), Some(attr), Some(outcome)) = (
            json_str_field(line, "name"),
            json_str_field(line, "attr"),
            json_str_field(line, "outcome"),
        ) else {
            continue;
        };
        let (Some(start), Some(dur)) = (
            json_u64_field(line, "start_us"),
            json_u64_field(line, "dur_us"),
        ) else {
            continue;
        };
        spans.push((dur, start, name, attr, outcome));
    }
    if spans.is_empty() {
        writeln!(out, "no spans recorded in {}", file.display()).map_err(|e| e.to_string())?;
        return Ok(0);
    }
    // Slowest first; ties resolve by start time so output is deterministic.
    spans.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    writeln!(
        out,
        "top {} span(s) by duration in {}:",
        n.min(spans.len()),
        file.display()
    )
    .map_err(|e| e.to_string())?;
    for (dur, start, name, attr, outcome) in spans.iter().take(n) {
        writeln!(
            out,
            "  {dur:>10} us  {name:<8} {attr:<28} start={start} us  [{outcome}]"
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(0)
}

/// Extract a `"key":"value"` string field from one JSONL line.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    Some(rest[..rest.find('"')?].to_owned())
}

/// Extract a `"key":123` numeric field from one JSONL line.
fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let digits: &str = &rest[..rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len())];
    digits.parse().ok()
}

/// Read every `*.cat` file in a directory, sorted by name.
fn read_catalog_dir(dir: &Path) -> Result<Vec<CatalogFile>, String> {
    let mut files = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read dir {dir:?}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "cat") {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("unknown.cat")
                .to_owned();
            let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path:?}: {e}"))?;
            files.push(CatalogFile {
                name,
                text,
                expected: ExpectedCounts::default(),
            });
        }
    }
    files.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("skyload-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The chaos soaks are wall-clock sensitive (lease TTLs, scrub
    /// intervals, reader threads); running several at once on a loaded
    /// machine starves their timers. Each soak-running test holds this
    /// lock so they execute one at a time.
    static SOAK_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn parse_commands() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args("help")).unwrap(), Command::Help);
        let g = parse_args(&args(
            "generate --out /tmp/x --seed 7 --files 3 --error-rate 0.05",
        ))
        .unwrap();
        assert_eq!(
            g,
            Command::Generate {
                out: PathBuf::from("/tmp/x"),
                seed: 7,
                files: 3,
                error_rate: 0.05,
                obs_id: 100,
            }
        );
        let l = parse_args(&args("load --dir /tmp/x --nodes 3 --verify --audit")).unwrap();
        match l {
            Command::Load {
                nodes,
                verify,
                audit,
                pipeline,
                ..
            } => {
                assert_eq!(nodes, 3);
                assert!(verify);
                assert!(audit);
                assert_eq!(pipeline, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("bogus")).is_err());
        assert!(parse_args(&args("generate")).is_err());
        assert!(parse_args(&args("load --dir")).is_err());
    }

    #[test]
    fn parse_pipeline_flag() {
        match parse_args(&args("load --dir /tmp/x --pipeline double")).unwrap() {
            Command::Load { pipeline, .. } => assert_eq!(pipeline, Some(PipelineMode::Double)),
            other => panic!("{other:?}"),
        }
        match parse_args(&args("load --dir /tmp/x --pipeline off")).unwrap() {
            Command::Load { pipeline, .. } => assert_eq!(pipeline, Some(PipelineMode::Off)),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("load --dir /tmp/x --pipeline sideways")).is_err());
    }

    #[test]
    fn generate_load_verify_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut buf = Vec::new();
        let code = execute(
            parse_args(&args(&format!(
                "generate --out {} --seed 9 --files 3 --error-rate 0.05",
                dir.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        assert_eq!(code, 0);
        assert!(dir.join("manifest.json").exists());
        assert_eq!(
            std::fs::read_dir(&dir)
                .unwrap()
                .filter(|e| e
                    .as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "cat"))
                .count(),
            3
        );

        let mut buf = Vec::new();
        let report_path = dir.join("report.json");
        let code = execute(
            parse_args(&args(&format!(
                "load --dir {} --nodes 2 --report {} --verify --audit",
                dir.display(),
                report_path.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        assert_eq!(code, 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("verified against manifest: exact match"),
            "{text}"
        );
        assert!(text.contains("audit: repository is clean"), "{text}");
        assert!(report_path.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pipelined_load_verifies_against_manifest() {
        let dir = tmpdir("pipelined");
        execute(
            parse_args(&args(&format!(
                "generate --out {} --seed 12 --files 2 --error-rate 0.03",
                dir.display()
            )))
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();
        let mut buf = Vec::new();
        let code = execute(
            parse_args(&args(&format!(
                "load --dir {} --nodes 2 --pipeline double --verify",
                dir.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        assert_eq!(code, 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("verified against manifest: exact match"),
            "{text}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_chaos_flags() {
        match parse_args(&args("chaos --seed 3 --files 2 --nodes 2 --quick")).unwrap() {
            Command::Chaos {
                seed,
                files,
                nodes,
                quick,
                report,
                ..
            } => {
                assert_eq!((seed, files, nodes, quick), (3, 2, 2, true));
                assert_eq!(report, None);
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&args("chaos")).unwrap() {
            Command::Chaos { quick, .. } => assert!(!quick),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chaos_command_runs_quick_soak() {
        let _soak = SOAK_LOCK.lock();
        let dir = tmpdir("chaos");
        let report_path = dir.join("chaos.json");
        let mut buf = Vec::new();
        let code = execute(
            parse_args(&args(&format!(
                "chaos --seed 11 --files 3 --nodes 2 --quick --report {}",
                report_path.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("exactly-once: PASS"), "{text}");
        assert!(text.contains("faults injected:"), "{text}");
        assert!(report_path.exists());
        let json = std::fs::read_to_string(&report_path).unwrap();
        assert!(json.contains("\"faults_by_kind\""), "{json}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_shard_chaos_flags() {
        match parse_args(&args(
            "shard-chaos --seed 5 --files 4 --shards 2 --readers 3 --quick \
             --shard-kill 2 --shard-stall 3 --lease-ttl 80 --no-restart-coordinator",
        ))
        .unwrap()
        {
            Command::ShardChaos {
                seed,
                files,
                shards,
                readers,
                quick,
                shard_kill_at,
                shard_stall_at,
                lease_ttl_ms,
                no_restart_coordinator,
                ..
            } => {
                assert_eq!((seed, files, shards, readers), (5, 4, 2, 3));
                assert!(quick && no_restart_coordinator);
                assert_eq!(shard_kill_at, Some(2));
                assert_eq!(shard_stall_at, Some(3));
                assert_eq!(lease_ttl_ms, Some(80));
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&args("shard-chaos")).unwrap() {
            Command::ShardChaos {
                shards,
                shard_kill_at,
                shard_stall_at,
                no_restart_coordinator,
                ..
            } => {
                assert_eq!(shards, 3);
                assert!(shard_kill_at.is_some(), "default kills a shard");
                assert!(shard_stall_at.is_some(), "default stalls a shard");
                assert!(!no_restart_coordinator, "restart is on by default");
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("shard-chaos --shards 0")).is_err());
    }

    #[test]
    fn shard_chaos_command_runs_quick_soak() {
        let _soak = SOAK_LOCK.lock();
        let dir = tmpdir("shard-chaos");
        let report_path = dir.join("shard.json");
        let metrics_path = dir.join("shard.jsonl");
        let mut buf = Vec::new();
        let code = execute(
            parse_args(&args(&format!(
                "shard-chaos --seed 2005 --files 3 --shards 3 --quick --report {} --metrics {}",
                report_path.display(),
                metrics_path.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("exactly-once: PASS"), "{text}");
        assert!(text.contains("shard chaos: seed 2005"), "{text}");
        let json = std::fs::read_to_string(&report_path).unwrap();
        assert!(json.contains("\"per_zone_rows\""), "{json}");
        let jsonl = std::fs::read_to_string(&metrics_path).unwrap();
        for counter in ["shard.reclaims", "shard.rebuilds", "shard.gather.queries"] {
            assert!(jsonl.contains(counter), "missing {counter} in {jsonl}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inspect_shards_prints_per_zone_counts() {
        let dir = tmpdir("inspect-shards");
        execute(
            parse_args(&args(&format!(
                "generate --out {} --seed 3 --files 1",
                dir.display()
            )))
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();
        let cat = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "cat"))
            .unwrap();
        let mut buf = Vec::new();
        let code = execute(
            parse_args(&args(&format!("inspect {} --shards 3", cat.display()))).unwrap(),
            &mut buf,
        )
        .unwrap();
        assert_eq!(code, 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("routed across 3 declination zone(s):"),
            "{text}"
        );
        assert!(text.contains("zone 0 ["), "{text}");
        assert!(text.contains("zone 2 ["), "{text}");
        assert!(
            text.contains("replicated row(s) broadcast to every zone"),
            "{text}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_scrub_flags() {
        match parse_args(&args(
            "scrub --seed 9 --files 2 --nodes 2 --bit-rot 0.5 --scrub-interval 20 --wal-rot --readers 3 --quick",
        ))
        .unwrap()
        {
            Command::Scrub {
                seed,
                files,
                nodes,
                bit_rot,
                scrub_interval_ms,
                wal_rot,
                readers,
                quick,
                ..
            } => {
                assert_eq!((seed, files, nodes, readers), (9, 2, 2, 3));
                assert_eq!(bit_rot, 0.5);
                assert_eq!(scrub_interval_ms, 20);
                assert!(wal_rot && quick);
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&args("scrub")).unwrap() {
            Command::Scrub { wal_rot, quick, .. } => assert!(!wal_rot && !quick),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("scrub --scrub-interval 0")).is_err());
    }

    #[test]
    fn scrub_command_heals_and_dumps_metrics() {
        let _soak = SOAK_LOCK.lock();
        let dir = tmpdir("scrub");
        let report_path = dir.join("scrub.json");
        let metrics_path = dir.join("metrics.jsonl");
        let mut buf = Vec::new();
        let code = execute(
            parse_args(&args(&format!(
                "scrub --seed 71 --quick --report {} --metrics {}",
                report_path.display(),
                metrics_path.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("integrity: HEALED"), "{text}");
        assert!(text.contains("corrupt row(s) served"), "{text}");

        // The JSON report and the JSONL metrics dump agree: the scrub.*
        // and repair.* counters the report is a view over are present.
        let json = std::fs::read_to_string(&report_path).unwrap();
        assert!(json.contains("\"bad_records\""), "{json}");
        assert!(json.contains("\"files_reloaded\""), "{json}");
        let jsonl = std::fs::read_to_string(&metrics_path).unwrap();
        for counter in [
            "scrub.pages",
            "scrub.bad_records",
            "scrub.quarantined",
            "repair.files_reloaded",
            "repair.rows_restored",
        ] {
            assert!(jsonl.contains(counter), "missing {counter} in {jsonl}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_live_and_campaign_flags() {
        match parse_args(&args(
            "live --seed 4 --files 6 --nodes 2 --mean-interarrival 20 --slo-budget 900 --quick",
        ))
        .unwrap()
        {
            Command::Live {
                seed,
                files,
                nodes,
                mean_interarrival_ms,
                slo_budget_ms,
                quick,
                ..
            } => {
                assert_eq!((seed, files, nodes), (4, 6, 2));
                assert_eq!((mean_interarrival_ms, slo_budget_ms), (20, 900));
                assert!(quick);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("live --slo-budget 0")).is_err());
        match parse_args(&args("campaign --seed 8 --restart-server --readers 5")).unwrap() {
            Command::Campaign {
                seed,
                no_swap_crash,
                restart_server,
                readers,
                loader_kill_at,
                ..
            } => {
                assert_eq!(seed, 8);
                assert!(!no_swap_crash, "swap crash is on by default");
                assert!(restart_server);
                assert_eq!(readers, 5);
                assert!(loader_kill_at.is_some(), "default kills a loader");
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&args("campaign --no-swap-crash")).unwrap() {
            Command::Campaign { no_swap_crash, .. } => assert!(no_swap_crash),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn live_command_reports_freshness_and_passes() {
        let _soak = SOAK_LOCK.lock();
        let dir = tmpdir("live");
        let report_path = dir.join("live.json");
        let metrics_path = dir.join("live.jsonl");
        let mut buf = Vec::new();
        let code = execute(
            parse_args(&args(&format!(
                "live --seed 17 --files 3 --nodes 2 --quick --report {} --metrics {}",
                report_path.display(),
                metrics_path.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("freshness: n="), "{text}");
        assert!(text.contains("live ingest: PASS"), "{text}");
        let json = std::fs::read_to_string(&report_path).unwrap();
        assert!(json.contains("\"freshness\""), "{json}");
        assert!(json.contains("\"slo_violations\""), "{json}");
        let jsonl = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(jsonl.contains("live.freshness_us"), "{jsonl}");
        assert!(jsonl.contains("live.batches"), "{jsonl}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn campaign_command_survives_quick_chaos() {
        let _soak = SOAK_LOCK.lock();
        let dir = tmpdir("campaign");
        let report_path = dir.join("campaign.json");
        let metrics_path = dir.join("campaign.jsonl");
        let mut buf = Vec::new();
        let code = execute(
            parse_args(&args(&format!(
                "campaign --seed 23 --quick --report {} --metrics {}",
                report_path.display(),
                metrics_path.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(
            text.contains("exactly-once: PASS · season-atomicity: PASS"),
            "{text}"
        );
        assert!(text.contains("swapped: true"), "{text}");
        assert!(text.contains("swap_crash"), "{text}");
        let json = std::fs::read_to_string(&report_path).unwrap();
        assert!(json.contains("\"mixed_season_reads\": 0"), "{json}");
        assert!(json.contains("\"campaign_resumes\": 1"), "{json}");
        let jsonl = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(jsonl.contains("live.freshness_us"), "{jsonl}");
        assert!(jsonl.contains("campaign.swaps"), "{jsonl}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_serve_flags() {
        match parse_args(&args(
            "serve --seed 7 --users 3 --queries 10 --ingest-nodes 0 --fast-deadline 25 --quick",
        ))
        .unwrap()
        {
            Command::Serve {
                seed,
                users,
                queries,
                ingest_nodes,
                fast_deadline_ms,
                quick,
                ..
            } => {
                assert_eq!((seed, users, queries, ingest_nodes), (7, 3, 10, 0));
                assert_eq!(fast_deadline_ms, Some(25));
                assert!(quick);
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&args("serve")).unwrap() {
            Command::Serve {
                quick,
                fast_deadline_ms,
                ingest_nodes,
                ..
            } => {
                assert!(!quick);
                assert_eq!(fast_deadline_ms, None);
                assert!(ingest_nodes > 0, "default serve runs under ingest");
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("serve --fast-deadline soon")).is_err());
    }

    #[test]
    fn serve_command_runs_quick_mix() {
        let _soak = SOAK_LOCK.lock();
        let dir = tmpdir("serve");
        let report_path = dir.join("serve.json");
        let metrics_path = dir.join("serve.jsonl");
        let mut buf = Vec::new();
        let code = execute(
            parse_args(&args(&format!(
                "serve --seed 2005 --users 2 --queries 8 --ingest-nodes 2 --quick \
                 --report {} --metrics {}",
                report_path.display(),
                metrics_path.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("fast queue:"), "{text}");
        assert!(text.contains("slow queue:"), "{text}");
        assert!(text.contains("fast wall"), "{text}");
        assert!(text.contains("ingest:"), "{text}");
        let json = std::fs::read_to_string(&report_path).unwrap();
        assert!(json.contains("\"fast_modeled\""), "{json}");
        let jsonl = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(jsonl.contains("serve.fast.admitted"), "{jsonl}");
        assert!(jsonl.contains("serve.fast.latency_us"), "{jsonl}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_metrics_and_top_spans_flags() {
        match parse_args(&args("load --dir /tmp/x --metrics m.jsonl")).unwrap() {
            Command::Load { metrics, .. } => assert_eq!(metrics, Some(PathBuf::from("m.jsonl"))),
            other => panic!("{other:?}"),
        }
        match parse_args(&args("chaos --quick --metrics m.jsonl")).unwrap() {
            Command::Chaos { metrics, .. } => assert_eq!(metrics, Some(PathBuf::from("m.jsonl"))),
            other => panic!("{other:?}"),
        }
        match parse_args(&args("inspect m.jsonl --top-spans 5")).unwrap() {
            Command::Inspect {
                file,
                top_spans,
                shards,
            } => {
                assert_eq!(file, PathBuf::from("m.jsonl"));
                assert_eq!(top_spans, Some(5));
                assert_eq!(shards, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("inspect m.jsonl --top-spans five")).is_err());
    }

    #[test]
    fn chaos_metrics_counters_match_report_totals() {
        let _soak = SOAK_LOCK.lock();
        // The acceptance check in miniature: the JSONL dump and the chaos
        // report are two views over one registry, so the headline counters
        // must agree exactly, line for line.
        let cfg = crate::chaos::ChaosConfig {
            seed: 11,
            files: 3,
            nodes: 2,
            quick: true,
            ..crate::chaos::ChaosConfig::default()
        };
        let obs = Arc::new(skyobs::Registry::new());
        let soak = crate::chaos::run_chaos_with_obs(&cfg, &obs).unwrap();
        let jsonl = obs.to_jsonl();
        let line = |name: &str, value: u64| {
            format!("{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}")
        };
        for (name, value) in [
            ("retries", soak.retries),
            ("breaker_trips", soak.breaker_trips),
            ("loader_kills", soak.loader_kills),
            ("loader_stalls", soak.loader_stalls),
            ("fleet.reclaims", soak.lease_reclaims),
            ("fleet.fence_rejections", soak.fencing_rejections),
        ] {
            assert!(
                jsonl.lines().any(|l| l == line(name, value)),
                "dump disagrees with report on {name}={value}"
            );
        }
        for (kind, n) in &soak.faults_by_kind {
            assert!(
                jsonl
                    .lines()
                    .any(|l| l == line(&format!("server.faults.{kind}"), *n)),
                "dump disagrees with report on fault kind {kind}={n}"
            );
        }
    }

    #[test]
    fn chaos_metrics_dump_feeds_top_spans() {
        let _soak = SOAK_LOCK.lock();
        let dir = tmpdir("chaos-metrics");
        let metrics_path = dir.join("metrics.jsonl");
        let mut buf = Vec::new();
        let code = execute(
            parse_args(&args(&format!(
                "chaos --seed 11 --files 2 --nodes 2 --quick --metrics {}",
                metrics_path.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("telemetry:"), "{text}");
        assert!(text.contains("metrics written to"), "{text}");
        let jsonl = std::fs::read_to_string(&metrics_path).unwrap();
        for line in jsonl.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "not a JSON object line: {line}"
            );
        }
        assert!(jsonl.contains("\"type\":\"span\""), "no spans in dump");

        let mut buf = Vec::new();
        let code = execute(
            parse_args(&args(&format!(
                "inspect {} --top-spans 3",
                metrics_path.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        assert_eq!(code, 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("top 3 span(s) by duration"), "{text}");
        assert!(text.contains("flush"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inspect_summarizes_tables() {
        let dir = tmpdir("inspect");
        let mut buf = Vec::new();
        execute(
            parse_args(&args(&format!(
                "generate --out {} --seed 3 --files 1",
                dir.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let cat = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "cat"))
            .unwrap();
        let mut buf = Vec::new();
        let code = execute(
            parse_args(&args(&format!("inspect {}", cat.display()))).unwrap(),
            &mut buf,
        )
        .unwrap();
        assert_eq!(code, 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("objects"));
        assert!(text.contains("unparseable lines: 0"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_errors_cleanly() {
        let mut buf = Vec::new();
        let err = execute(
            parse_args(&args("load --dir /definitely/not/here")).unwrap(),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.contains("read dir"));
    }

    #[test]
    fn load_with_journal_resumes_across_invocations() {
        let dir = tmpdir("journal");
        let mut buf = Vec::new();
        execute(
            parse_args(&args(&format!(
                "generate --out {} --seed 5 --files 2",
                dir.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let journal = dir.join("load.journal");
        // First full load records the journal…
        execute(
            parse_args(&args(&format!(
                "load --dir {} --nodes 1 --journal {} --verify",
                dir.display(),
                journal.display()
            )))
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();
        assert!(journal.exists());
        // …and a second invocation (fresh repository, completed journal)
        // loads zero rows: everything is already recorded as committed.
        let mut buf = Vec::new();
        execute(
            parse_args(&args(&format!(
                "load --dir {} --nodes 1 --journal {}",
                dir.display(),
                journal.display()
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("loaded 0 rows"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
