//! The `array-set` data structure (paper §4.3).
//!
//! "The array-set data structure consists of a dynamically maintained set
//! of two-dimensional arrays, each associated with a destination table in
//! the database. One dimension of each array corresponds to table rows, and
//! the other to table attributes. Arrays are cached in memory … the
//! framework creates a new array in array-set whenever it reads an input
//! row targeted for a database table for which no array is currently
//! maintained. When any of the arrays in array-set are fully populated,
//! bulk loading occurs. At the end of the bulk-loading cycle, the arrays in
//! array-set are destroyed and their memory released."
//!
//! Beyond the paper's implementation, the two §4.3 *future work* items are
//! supported: per-table array capacities (from the loader's config file)
//! and an aggregate **memory high-water mark** that triggers a cycle when
//! total buffered footprint crosses a byte threshold.
//!
//! Buffered memory is registered with a client [`MemoryModel`] so that an
//! oversized array-set produces paging penalties (the Fig. 6 knee).

use skydb::value::{Row, Value};
use skysim::mem::MemoryModel;

use crate::config::LoaderConfig;

/// One table's buffered rows (a "2-D array": rows × attributes).
#[derive(Debug)]
struct TableArray {
    table: String,
    capacity: usize,
    rows: Vec<Row>,
    footprint: u64,
}

/// The set of per-table buffer arrays, flushed in parent-before-child order.
#[derive(Debug)]
pub struct ArraySet {
    /// Arrays in parent-before-child order (fixed at construction from the
    /// catalog's topological order).
    arrays: Vec<TableArray>,
    /// Aggregate buffered footprint in bytes (with overhead factor).
    total_footprint: u64,
    overhead_factor: f64,
    high_water: Option<u64>,
    mem: MemoryModel,
    cycles: u64,
    rows_buffered: u64,
}

impl ArraySet {
    /// Build an array-set for `tables` (parent-before-child order), sized
    /// per `cfg`, accounting against `mem`.
    pub fn new(tables: &[String], cfg: &LoaderConfig, mem: MemoryModel) -> Self {
        let arrays = tables
            .iter()
            .map(|t| TableArray {
                capacity: cfg.array_size_for(t),
                table: t.clone(),
                rows: Vec::new(),
                footprint: 0,
            })
            .collect();
        ArraySet {
            arrays,
            total_footprint: 0,
            overhead_factor: cfg.client_overhead_factor,
            high_water: cfg.memory_high_water_bytes,
            mem,
            cycles: 0,
            rows_buffered: 0,
        }
    }

    /// Number of tables this set covers.
    pub fn table_count(&self) -> usize {
        self.arrays.len()
    }

    /// Index of a table's array, if it is one of ours.
    pub fn index_of(&self, table: &str) -> Option<usize> {
        self.arrays.iter().position(|a| a.table == table)
    }

    /// Buffer a row for the array at `idx` (from [`ArraySet::index_of`]).
    /// Returns `true` if the set should now be flushed.
    pub fn push(&mut self, idx: usize, row: Row) -> bool {
        let footprint = (row_footprint(&row) as f64 * self.overhead_factor) as u64;
        let a = &mut self.arrays[idx];
        if a.rows.is_empty() {
            // "creates a new array … whenever it reads an input row targeted
            // for a database table for which no array is currently
            // maintained": allocate at declared capacity, like the Java
            // original.
            a.rows.reserve(a.capacity);
        }
        a.rows.push(row);
        a.footprint += footprint;
        self.total_footprint += footprint;
        self.rows_buffered += 1;
        self.mem.allocate(footprint);
        // Touching the newly written row pays paging cost if the client is
        // over budget.
        self.mem.touch(footprint);
        self.should_flush_after(idx)
    }

    fn should_flush_after(&self, idx: usize) -> bool {
        let a = &self.arrays[idx];
        if a.rows.len() >= a.capacity {
            return true;
        }
        if let Some(hwm) = self.high_water {
            if self.total_footprint >= hwm {
                return true;
            }
        }
        false
    }

    /// `true` if any array is at capacity (or the high-water mark is hit).
    pub fn wants_flush(&self) -> bool {
        (0..self.arrays.len()).any(|i| self.should_flush_after(i))
    }

    /// `true` if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.arrays.iter().all(|a| a.rows.is_empty())
    }

    /// Rows currently buffered for the array at `idx`.
    pub fn len_at(&self, idx: usize) -> usize {
        self.arrays[idx].rows.len()
    }

    /// The table name of the array at `idx`.
    pub fn table_at(&self, idx: usize) -> &str {
        &self.arrays[idx].table
    }

    /// Seal the current cycle's arrays into an immutable [`SealedArraySet`]
    /// and reset this set to empty so the next cycle can fill fresh arrays.
    ///
    /// The sealed set keeps its memory registered with the shared
    /// [`MemoryModel`]; each array is touched and released only when the
    /// flusher drains it via [`SealedArraySet::take`], exactly as
    /// [`ArraySet::take`] would have. Sealing counts as completing a
    /// bulk-loading cycle.
    pub fn seal(&mut self) -> SealedArraySet {
        let arrays = self
            .arrays
            .iter_mut()
            .map(|a| SealedArray {
                table: a.table.clone(),
                rows: std::mem::take(&mut a.rows),
                footprint: std::mem::take(&mut a.footprint),
            })
            .collect();
        self.total_footprint = 0;
        self.cycles += 1;
        SealedArraySet {
            arrays,
            mem: self.mem.clone(),
        }
    }

    /// Drain one table's rows for a bulk-loading cycle. Reading the rows
    /// out touches their memory (paging cost when over budget); the array
    /// itself is destroyed and its memory released, per §4.3.
    pub fn take(&mut self, idx: usize) -> Vec<Row> {
        let a = &mut self.arrays[idx];
        if a.rows.is_empty() {
            return Vec::new();
        }
        self.mem.touch(a.footprint);
        self.mem.release(a.footprint);
        self.total_footprint -= a.footprint;
        a.footprint = 0;
        std::mem::take(&mut a.rows)
    }

    /// Mark the end of a bulk-loading cycle.
    pub fn end_cycle(&mut self) {
        debug_assert!(self.is_empty(), "cycle ended with rows still buffered");
        self.cycles += 1;
    }

    /// Completed bulk-loading cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total rows that have passed through the set.
    pub fn rows_buffered(&self) -> u64 {
        self.rows_buffered
    }

    /// Current aggregate footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.total_footprint
    }

    /// The client memory model (for paging statistics).
    pub fn memory(&self) -> &MemoryModel {
        &self.mem
    }
}

/// One sealed table array awaiting its flush.
#[derive(Debug)]
struct SealedArray {
    table: String,
    rows: Vec<Row>,
    footprint: u64,
}

/// A completed cycle's arrays, detached from the live [`ArraySet`] by
/// [`ArraySet::seal`] so they can be drained — possibly on another thread —
/// while the live set fills again. Tables keep the same indices and
/// parent-before-child order as the live set.
#[derive(Debug)]
pub struct SealedArraySet {
    arrays: Vec<SealedArray>,
    mem: MemoryModel,
}

impl SealedArraySet {
    /// Number of tables this set covers (same order as the live set).
    pub fn table_count(&self) -> usize {
        self.arrays.len()
    }

    /// The table name of the array at `idx`.
    pub fn table_at(&self, idx: usize) -> &str {
        &self.arrays[idx].table
    }

    /// Rows buffered for the array at `idx`.
    pub fn len_at(&self, idx: usize) -> usize {
        self.arrays[idx].rows.len()
    }

    /// `true` if no array holds rows.
    pub fn is_empty(&self) -> bool {
        self.arrays.iter().all(|a| a.rows.is_empty())
    }

    /// Drain one table's rows, with the same memory-model semantics as
    /// [`ArraySet::take`]: reading the rows touches their memory, then the
    /// array is destroyed and its memory released.
    pub fn take(&mut self, idx: usize) -> Vec<Row> {
        let a = &mut self.arrays[idx];
        if a.rows.is_empty() {
            return Vec::new();
        }
        self.mem.touch(a.footprint);
        self.mem.release(a.footprint);
        a.footprint = 0;
        std::mem::take(&mut a.rows)
    }
}

impl Drop for SealedArraySet {
    /// A sealed set dropped without being fully drained (e.g. the flusher
    /// aborted on a connection error) must still release its registered
    /// memory, or the shared model would leak resident bytes.
    fn drop(&mut self) {
        for a in &mut self.arrays {
            if a.footprint > 0 {
                self.mem.release(a.footprint);
                a.footprint = 0;
            }
        }
    }
}

/// Raw in-memory footprint of one row.
fn row_footprint(row: &[Value]) -> usize {
    std::mem::size_of::<Row>() + row.iter().map(Value::footprint).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysim::time::TimeScale;
    use std::time::Duration;

    fn mem() -> MemoryModel {
        MemoryModel::unconstrained()
    }

    fn tables() -> Vec<String> {
        vec!["frames".into(), "objects".into(), "fingers".into()]
    }

    fn row() -> Row {
        vec![Value::Int(1), Value::Float(2.0)]
    }

    #[test]
    fn fills_and_triggers_at_capacity() {
        let cfg = LoaderConfig::test().with_array_size(3);
        let mut a = ArraySet::new(&tables(), &cfg, mem());
        let obj = a.index_of("objects").unwrap();
        assert!(!a.push(obj, row()));
        assert!(!a.push(obj, row()));
        assert!(a.push(obj, row()), "third row hits capacity 3");
        assert!(a.wants_flush());
        assert_eq!(a.len_at(obj), 3);
    }

    #[test]
    fn per_table_capacity_respected() {
        let cfg = LoaderConfig::test()
            .with_array_size(100)
            .with_table_array_size("fingers", 2);
        let mut a = ArraySet::new(&tables(), &cfg, mem());
        let fng = a.index_of("fingers").unwrap();
        assert!(!a.push(fng, row()));
        assert!(a.push(fng, row()), "fingers capacity 2");
    }

    #[test]
    fn take_releases_memory_and_preserves_order() {
        let cfg = LoaderConfig::test().with_array_size(10);
        let m = mem();
        let mut a = ArraySet::new(&tables(), &cfg, m.clone());
        let obj = a.index_of("objects").unwrap();
        for i in 0..5i64 {
            a.push(obj, vec![Value::Int(i)]);
        }
        assert!(a.footprint() > 0);
        assert!(m.resident() > 0);
        let rows = a.take(obj);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0], vec![Value::Int(0)]);
        assert_eq!(rows[4], vec![Value::Int(4)]);
        assert_eq!(a.footprint(), 0);
        assert_eq!(m.resident(), 0);
        assert!(a.is_empty());
        a.end_cycle();
        assert_eq!(a.cycles(), 1);
        // Array is re-created on the next push.
        assert!(!a.push(obj, row()));
        assert_eq!(a.len_at(obj), 1);
    }

    #[test]
    fn seal_detaches_cycle_and_resets_live_set() {
        let cfg = LoaderConfig::test().with_array_size(10);
        let m = mem();
        let mut a = ArraySet::new(&tables(), &cfg, m.clone());
        let obj = a.index_of("objects").unwrap();
        for i in 0..4i64 {
            a.push(obj, vec![Value::Int(i)]);
        }
        let resident_before = m.resident();
        assert!(resident_before > 0);

        let mut sealed = a.seal();
        // Live set is immediately reusable and counts the cycle.
        assert!(a.is_empty());
        assert_eq!(a.footprint(), 0);
        assert_eq!(a.cycles(), 1);
        assert!(!a.push(obj, row()));
        // Sealed set holds the rows; memory stays resident until drained.
        assert_eq!(sealed.table_at(obj), "objects");
        assert_eq!(sealed.len_at(obj), 4);
        assert!(!sealed.is_empty());
        assert_eq!(m.resident(), resident_before + a.footprint());

        let rows = sealed.take(obj);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], vec![Value::Int(0)]);
        assert_eq!(rows[3], vec![Value::Int(3)]);
        assert!(sealed.is_empty());
        // Only the live set's new row remains resident.
        assert_eq!(m.resident(), a.footprint());
    }

    #[test]
    fn dropped_sealed_set_releases_memory() {
        let cfg = LoaderConfig::test().with_array_size(10);
        let m = mem();
        let mut a = ArraySet::new(&tables(), &cfg, m.clone());
        let obj = a.index_of("objects").unwrap();
        for _ in 0..3 {
            a.push(obj, row());
        }
        let sealed = a.seal();
        assert!(m.resident() > 0);
        drop(sealed);
        assert_eq!(m.resident(), 0, "undrained sealed set must release");
    }

    #[test]
    fn high_water_mark_triggers_before_capacity() {
        let cfg = LoaderConfig::test().with_array_size(1_000_000);
        let mut cfg = cfg;
        cfg.memory_high_water_bytes = Some(4000);
        let mut a = ArraySet::new(&tables(), &cfg, mem());
        let obj = a.index_of("objects").unwrap();
        let mut triggered = false;
        for _ in 0..100 {
            if a.push(obj, row()) {
                triggered = true;
                break;
            }
        }
        assert!(triggered, "high-water mark should trigger a cycle");
        assert!(a.len_at(obj) < 1000, "well before array capacity");
    }

    #[test]
    fn overcommitted_client_pays_paging() {
        let model = MemoryModel::new(2_000, 256, Duration::from_micros(10), TimeScale::ZERO);
        let cfg = LoaderConfig::test().with_array_size(1000);
        let mut a = ArraySet::new(&tables(), &cfg, model.clone());
        let obj = a.index_of("objects").unwrap();
        for _ in 0..200 {
            a.push(obj, row());
        }
        assert!(model.faults() > 0, "overcommit should fault");
        assert!(model.modeled_time() > Duration::ZERO);
    }

    #[test]
    fn unknown_table_has_no_index() {
        let cfg = LoaderConfig::test();
        let a = ArraySet::new(&tables(), &cfg, mem());
        assert_eq!(a.index_of("nope"), None);
        assert_eq!(a.table_at(0), "frames");
        assert_eq!(a.table_count(), 3);
    }
}
