//! Chaos-soak harness: load a full night under a seeded multi-kind fault
//! plan — resets, busy rejections, latency spikes, disk-full commits,
//! per-batch corruption and a mid-night crash-on-flush — and verify that
//! the repository still ends up with **exactly one copy of every loadable
//! row**.
//!
//! The harness owns the piece the retry layer deliberately does not: when
//! the server crashes (torn commit flush), it recovers a fresh engine from
//! the durable log, re-installs the fault plan (without the crash, which
//! already fired), and resumes the remaining files from the shared
//! checkpoint journal. Everything in between — backoff, breaker trips,
//! degradation — is [`crate::parallel::load_night_with_journal`]'s job.
//!
//! Every fault decision derives from [`ChaosConfig::seed`], so a run is
//! reproducible bit-for-bit: same seed, same fault schedule.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

use serde::Serialize;

use skycat::gen::{aggregate_expected, generate_observation, CatalogFile, GenConfig};
use skydb::engine::Engine;
use skydb::fault::{FaultPlan, FaultPlanConfig};
use skydb::{DbConfig, Server};
use skysim::cluster::AssignmentPolicy;

use crate::config::{CommitPolicy, LoaderConfig};
use crate::recovery::LoadJournal;
use crate::report::ser_duration;
use crate::resilience::{DegradeTransition, RetryPolicy};

/// How many crash/recover cycles the harness tolerates before declaring
/// the soak wedged.
const MAX_RESTARTS: usize = 8;

/// How many load generations (including non-crash retries of failed
/// files) the harness runs before giving up.
const MAX_GENERATIONS: usize = 24;

/// Knobs for one chaos soak.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosConfig {
    /// Master seed: drives both the synthetic night and the fault plan.
    pub seed: u64,
    /// Catalog files in the night.
    pub files: usize,
    /// Parallel loader nodes.
    pub nodes: usize,
    /// Generator object-corruption rate (dirty *data*, distinct from
    /// injected *faults*).
    pub error_rate: f64,
    /// Quick mode: a smaller night and a gentler plan, for CI.
    pub quick: bool,
    /// Kill the loader holding the Nth lease grant (1-based) mid-file.
    pub loader_kill_at: Option<u64>,
    /// Freeze the loader holding the Nth lease grant (1-based) past its
    /// TTL, then let it wake as a zombie and flush under its stale epoch.
    pub loader_stall_at: Option<u64>,
    /// Lease TTL for the soak's fleet — short, so reclaims happen on a
    /// test timescale rather than the production default.
    #[serde(with = "ser_duration")]
    pub lease_ttl: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 2005,
            files: 6,
            nodes: 3,
            error_rate: 0.02,
            quick: false,
            loader_kill_at: None,
            loader_stall_at: None,
            lease_ttl: Duration::from_millis(250),
        }
    }
}

impl ChaosConfig {
    /// The fault plan this soak runs under. `with_crash` adds the one
    /// crash-on-flush; the post-recovery generations run without it.
    pub fn fault_plan(&self, with_crash: bool) -> FaultPlanConfig {
        // Rates are per *call*: they must leave clean windows long enough
        // for a whole flush (several batch calls + a commit) to land, or
        // the load cannot make forward progress between faults.
        let mut plan = FaultPlanConfig::new(self.seed)
            .with_resets(0.006)
            .with_busy(0.006)
            .with_latency(0.015, Duration::from_millis(20))
            .with_disk_full(0.06)
            .with_corruption(0.01);
        if with_crash {
            // Far enough in that real work is committed before the crash,
            // early enough that it reliably fires even in quick mode.
            plan = plan.with_crash_on_flush(7);
        }
        if let Some(n) = self.loader_kill_at {
            plan = plan.with_loader_kill_at(n);
        }
        if let Some(n) = self.loader_stall_at {
            plan = plan.with_loader_stall_at(n);
        }
        plan
    }

    /// The loader configuration the soak drives: per-flush commits so the
    /// journal advances under fire, and a retry policy whose call-timeout
    /// budget is tighter than the plan's latency spike (so spikes surface
    /// as timeouts and exercise that path too).
    pub fn loader(&self) -> LoaderConfig {
        LoaderConfig::test()
            .with_array_size(300)
            .with_commit_policy(CommitPolicy::PerFlush)
            .with_retry(
                RetryPolicy::default()
                    .with_seed(self.seed)
                    .with_call_timeout(Duration::from_millis(10)),
            )
            .with_fleet(
                crate::fleet::FleetPolicy::default()
                    .with_lease_ttl(self.lease_ttl)
                    .with_heartbeat_interval((self.lease_ttl / 4).max(Duration::from_millis(1))),
            )
    }

    fn gen_config(&self) -> GenConfig {
        let files = if self.quick {
            self.files.min(4)
        } else {
            self.files
        };
        GenConfig::night(self.seed, 100)
            .with_files(files.max(1))
            .with_error_rate(self.error_rate)
    }
}

/// What a soak observed, and the exactly-once verdict.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosReport {
    /// The configuration the soak ran with.
    pub config: ChaosConfig,
    /// Load generations executed (1 = no crash, no stragglers).
    pub generations: usize,
    /// Crash/recover cycles survived.
    pub restarts: usize,
    /// Faults injected per kind, accumulated across server generations.
    pub faults_by_kind: BTreeMap<String, u64>,
    /// Client-side retry attempts across all generations.
    pub retries: u64,
    /// Circuit-breaker trips across all generations.
    pub breaker_trips: u64,
    /// Loader processes killed mid-file by the fault plan.
    pub loader_kills: u64,
    /// Loader processes frozen past their lease TTL by the fault plan.
    pub loader_stalls: u64,
    /// Expired leases the supervisor reclaimed and reassigned.
    pub lease_reclaims: u64,
    /// Stale-epoch flushes the database fenced out before anything applied.
    pub fencing_rejections: u64,
    /// Wall-clock time the fleet spent below full batch mode.
    #[serde(with = "ser_duration")]
    pub degraded_time: Duration,
    /// Every degradation-ladder move, in order, across generations.
    pub degrade_transitions: Vec<DegradeTransition>,
    /// Rows the repository should hold, per table.
    pub expected_rows: u64,
    /// Rows the repository holds after the soak.
    pub actual_rows: u64,
    /// Rows expected but missing (must be 0).
    pub lost_rows: u64,
    /// Rows present more than once (must be 0).
    pub duplicated_rows: u64,
    /// Per-table mismatches, if any (empty on success).
    pub mismatches: Vec<String>,
    /// Files that never loaded (empty on success).
    pub unfinished_files: Vec<String>,
}

impl ChaosReport {
    /// Did every loadable row land exactly once?
    pub fn exactly_once(&self) -> bool {
        self.lost_rows == 0 && self.duplicated_rows == 0 && self.unfinished_files.is_empty()
    }

    /// Distinct fault kinds that actually fired.
    pub fn fault_kinds_fired(&self) -> usize {
        self.faults_by_kind.values().filter(|&&n| n > 0).count()
    }
}

fn fresh_server(obs_id: i64, obs: Arc<skyobs::Registry>) -> Result<Arc<Server>, String> {
    let server = Server::start_with_obs(DbConfig::test(), obs);
    skycat::create_all(server.engine()).map_err(|e| e.to_string())?;
    skycat::seed_static(server.engine()).map_err(|e| e.to_string())?;
    skycat::seed_observation(server.engine(), 1, obs_id).map_err(|e| e.to_string())?;
    Ok(server)
}

/// Run one chaos soak to completion.
///
/// Loads a synthetic night under the seeded fault plan, recovering the
/// server from its durable log whenever a crash-on-flush downs it, and
/// retrying failed files across bounded generations. Never panics on
/// fault-induced failures; the verdict lands in the report.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    run_chaos_with_obs(cfg, &Arc::new(skyobs::Registry::new()))
}

/// [`run_chaos`], observed through a caller-supplied telemetry registry.
///
/// One registry spans every server generation: the coordinator hands the
/// same [`skyobs::Registry`] to the initial server and to each recovered
/// one, so fault and loader counters accumulate across crash/recover
/// cycles with no per-generation banking. The report's totals are a view
/// over the registry's final snapshot (delta since entry), which is what
/// makes a `--metrics` JSONL dump agree with the report exactly.
pub fn run_chaos_with_obs(
    cfg: &ChaosConfig,
    obs: &Arc<skyobs::Registry>,
) -> Result<ChaosReport, String> {
    let files = generate_observation(&cfg.gen_config());
    let expected = aggregate_expected(&files);
    let loader = cfg.loader();
    loader.validate()?;
    let journal = LoadJournal::new();
    let baseline = obs.snapshot();

    let mut server = fresh_server(100, obs.clone())?;
    server.set_fault_plan(Some(FaultPlan::new(cfg.fault_plan(true))));

    let mut degrade_transitions = Vec::new();
    let mut generations = 0usize;
    let mut restarts = 0usize;
    let mut remaining: Vec<CatalogFile> = files.clone();

    while !remaining.is_empty() && generations < MAX_GENERATIONS {
        generations += 1;
        let night = crate::parallel::load_night_with_journal(
            &server,
            &remaining,
            &loader,
            cfg.nodes,
            AssignmentPolicy::Dynamic,
            Some(&journal),
        )
        .map_err(|e| e.to_string())?;
        degrade_transitions.extend(night.degrade_transitions.iter().cloned());
        let done: BTreeSet<&str> = night.files.iter().map(|f| f.file.as_str()).collect();
        remaining.retain(|f| !done.contains(f.name.as_str()));
        if remaining.is_empty() {
            break;
        }
        if server.is_crashed() {
            // Recover from the durable log. The replacement engine keeps
            // its own private registry (replaying the log must not double
            // the coordinator's counters) while the server rejoins the
            // shared one, so fault counters keep accumulating in place.
            restarts += 1;
            if restarts > MAX_RESTARTS {
                break;
            }
            let log = server.engine().durable_log();
            let engine = Engine::recover_from_log(DbConfig::test(), skycat::build_schemas(), &log)
                .map_err(|e| format!("recovery failed: {e}"))?;
            server = Server::with_engine_and_obs(engine, obs.clone());
            server.set_fault_plan(Some(FaultPlan::new(cfg.fault_plan(false))));
        }
        // Not crashed: some files exhausted their budgets. The journal
        // kept their progress; the next generation retries them.
    }
    let delta = server.obs_snapshot().since(&baseline);

    // The verdict: count every table against the generator's ground truth.
    server.set_fault_plan(None);
    let mut lost = 0u64;
    let mut duplicated = 0u64;
    let mut actual_rows = 0u64;
    let mut mismatches = Vec::new();
    for (table, expect) in &expected.loadable {
        let tid = server.engine().table_id(table).map_err(|e| e.to_string())?;
        let got = server.engine().row_count(tid);
        actual_rows += got;
        if got < *expect {
            lost += expect - got;
            mismatches.push(format!("{table}: expected {expect}, got {got} (lost)"));
        } else if got > *expect {
            duplicated += got - expect;
            mismatches.push(format!(
                "{table}: expected {expect}, got {got} (duplicated)"
            ));
        }
    }

    Ok(ChaosReport {
        config: cfg.clone(),
        generations,
        restarts,
        faults_by_kind: delta.with_prefix("server.faults."),
        retries: delta.counter("retries"),
        breaker_trips: delta.counter("breaker_trips"),
        loader_kills: delta.counter("loader_kills"),
        loader_stalls: delta.counter("loader_stalls"),
        lease_reclaims: delta.counter("fleet.reclaims"),
        fencing_rejections: delta.counter("fleet.fence_rejections"),
        degraded_time: Duration::from_micros(delta.counter("degrade.time_us")),
        degrade_transitions,
        expected_rows: expected.total_loadable(),
        actual_rows,
        lost_rows: lost,
        duplicated_rows: duplicated,
        mismatches,
        unfinished_files: remaining.into_iter().map(|f| f.name).collect(),
    })
}

// ---------------------------------------------------------------------
// Campaign chaos: live ingest, then a shadow-swap campaign under fire
// with concurrent serve traffic.
// ---------------------------------------------------------------------

/// Knobs for one campaign chaos soak: a live micro-batch night ingests
/// season 1 under connection weather and arrival bursts, then a
/// reprocessing campaign loads season 2 into shadow tables (loader kills
/// included), crashes its coordinator at the swap point, and is resumed —
/// all while [`skydb::serve::QueryService`] readers hammer the live
/// `objects` table and assert they only ever see one season.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignChaosConfig {
    /// Master seed: arrival schedule, nights and fault plan.
    pub seed: u64,
    /// Files in season 1 (season 2 gets one more, so the two seasons have
    /// distinguishable row counts).
    pub files: usize,
    /// Parallel loader nodes.
    pub nodes: usize,
    /// Quick mode for CI.
    pub quick: bool,
    /// Kill the loader holding the Nth lease grant (1-based) mid-file.
    pub loader_kill_at: Option<u64>,
    /// Crash the campaign coordinator at the swap point.
    pub swap_crash: bool,
    /// Treat the swap crash as a full server crash: recover the engine
    /// from the durable log (base + shadow schemas, creation order)
    /// before resuming. `false` models a coordinator-only crash with the
    /// server surviving.
    pub restart_server: bool,
    /// Concurrent serve-tier reader threads.
    pub readers: usize,
    /// Lease TTL for the fleets.
    #[serde(with = "ser_duration")]
    pub lease_ttl: Duration,
}

impl Default for CampaignChaosConfig {
    fn default() -> Self {
        CampaignChaosConfig {
            seed: 2005,
            files: 3,
            nodes: 2,
            quick: false,
            loader_kill_at: Some(2),
            swap_crash: true,
            restart_server: false,
            readers: 3,
            lease_ttl: Duration::from_millis(250),
        }
    }
}

impl CampaignChaosConfig {
    fn season_files(&self) -> (Vec<CatalogFile>, Vec<CatalogFile>) {
        let n1 = if self.quick {
            self.files.min(3)
        } else {
            self.files
        }
        .max(1);
        // One extra file in season 2: strictly more rows per table, so a
        // scan's row count identifies its season.
        let v1 = generate_observation(&GenConfig::night(self.seed, 100).with_files(n1));
        let v2 = generate_observation(
            &GenConfig::night(self.seed ^ 0x5EA5_0002, 100).with_files(n1 + 1),
        );
        (v1, v2)
    }

    /// Fault plan: connection weather + arrival bursts for the live
    /// night, a loader kill for the fleets, and (first campaign attempt
    /// only) the swap crash.
    fn fault_plan(&self, with_swap_crash: bool) -> FaultPlanConfig {
        let mut plan = FaultPlanConfig::new(self.seed)
            .with_resets(0.004)
            .with_latency(0.01, Duration::from_millis(10))
            .with_arrival_bursts(0.25);
        if let Some(n) = self.loader_kill_at {
            plan = plan.with_loader_kill_at(n);
        }
        if with_swap_crash && self.swap_crash {
            plan = plan.with_swap_crash_at(1);
        }
        plan
    }

    fn loader(&self) -> LoaderConfig {
        LoaderConfig::test()
            .with_array_size(300)
            .with_commit_policy(CommitPolicy::PerFlush)
            .with_retry(
                RetryPolicy::default()
                    .with_seed(self.seed)
                    .with_call_timeout(Duration::from_millis(10)),
            )
            .with_fleet(
                crate::fleet::FleetPolicy::default()
                    .with_lease_ttl(self.lease_ttl)
                    .with_heartbeat_interval((self.lease_ttl / 4).max(Duration::from_millis(1))),
            )
    }
}

/// What a campaign chaos soak observed.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignChaosReport {
    /// The configuration the soak ran with.
    pub config: CampaignChaosConfig,
    /// The live night that ingested season 1 (freshness percentiles live
    /// here, mirroring the `live.freshness_us` histogram).
    pub live: crate::live::LiveReport,
    /// Campaign resumes after coordinator crashes.
    pub campaign_resumes: u64,
    /// Full server crash/recover cycles.
    pub server_restarts: usize,
    /// Injected swap crashes (`server.faults.swap_crash`).
    pub swap_crashes: u64,
    /// Injected arrival bursts.
    pub arrival_bursts: u64,
    /// Loaders killed mid-file.
    pub loader_kills: u64,
    /// Expired leases reclaimed.
    pub lease_reclaims: u64,
    /// Stale-epoch operations fenced out.
    pub fencing_rejections: u64,
    /// Faults injected per kind across the soak.
    pub faults_by_kind: BTreeMap<String, u64>,
    /// Serve-tier scans completed by the reader threads.
    pub reads_total: u64,
    /// Scans that saw season 1.
    pub reads_old_season: u64,
    /// Scans that saw season 2.
    pub reads_new_season: u64,
    /// Scans that saw neither season's exact row count (must be 0).
    pub mixed_season_reads: u64,
    /// Rows season 2 should hold, per the generator's ground truth.
    pub expected_rows: u64,
    /// Rows the live tables hold after the campaign.
    pub actual_rows: u64,
    /// Rows expected but missing (must be 0).
    pub lost_rows: u64,
    /// Rows present more than once (must be 0).
    pub duplicated_rows: u64,
    /// Rows left in the demoted shadow tables (must be 0 after cleanup).
    pub shadow_residual_rows: u64,
    /// Per-phase, per-table mismatches (empty on success).
    pub mismatches: Vec<String>,
    /// Whether the campaign's swap completed.
    pub swapped: bool,
    /// Demoted rows purged by the campaign.
    pub purged_rows: u64,
}

impl CampaignChaosReport {
    /// Did every season-2 row land exactly once, with season 1 fully
    /// retired?
    pub fn exactly_once(&self) -> bool {
        self.lost_rows == 0
            && self.duplicated_rows == 0
            && self.shadow_residual_rows == 0
            && self.mismatches.is_empty()
    }

    /// Did every concurrent read see exactly one season?
    pub fn swap_atomic(&self) -> bool {
        self.mixed_season_reads == 0 && self.reads_total > 0
    }
}

/// The database configuration every soak harness runs its servers on:
/// paper hardware at zero time-scale, so modeled costs are accounted (the
/// freshness clock needs them) without real sleeping.
pub(crate) fn soak_db_config() -> DbConfig {
    DbConfig::paper(skysim::TimeScale::ZERO)
}

/// Stand up one seeded catalog server for a soak: [`soak_db_config`]
/// hardware, the full catalog schema, the static + observation seeds, and
/// the soak's fault plan armed. The campaign, scrub, and shard soaks all
/// start their servers here instead of repeating the wiring.
pub(crate) fn soak_catalog_server(
    obs: &Arc<skyobs::Registry>,
    plan: Option<FaultPlanConfig>,
) -> Result<Arc<Server>, String> {
    let server = Server::start_with_obs(soak_db_config(), obs.clone());
    skycat::create_all(server.engine()).map_err(|e| e.to_string())?;
    skycat::seed_static(server.engine()).map_err(|e| e.to_string())?;
    skycat::seed_observation(server.engine(), 1, 100).map_err(|e| e.to_string())?;
    if let Some(p) = plan {
        server.set_fault_plan(Some(FaultPlan::new(p)));
    }
    Ok(server)
}

/// Compare the live catalog tables against a season's ground truth,
/// appending `phase`-tagged mismatches.
fn verify_season(
    engine: &Engine,
    expected: &BTreeMap<&'static str, u64>,
    phase: &str,
    mismatches: &mut Vec<String>,
) -> Result<(u64, u64, u64), String> {
    let (mut actual, mut lost, mut duplicated) = (0u64, 0u64, 0u64);
    for (table, expect) in expected {
        let tid = engine.table_id(table).map_err(|e| e.to_string())?;
        let got = engine.row_count(tid);
        actual += got;
        if got < *expect {
            lost += expect - got;
            mismatches.push(format!(
                "{phase}: {table} expected {expect}, got {got} (lost)"
            ));
        } else if got > *expect {
            duplicated += got - expect;
            mismatches.push(format!(
                "{phase}: {table} expected {expect}, got {got} (duplicated)"
            ));
        }
    }
    Ok((actual, lost, duplicated))
}

/// Run one campaign chaos soak: live-ingest season 1, then re-derive it
/// as season 2 through a shadow-swap campaign under loader kills and a
/// coordinator crash at the swap point, with serve-tier readers verifying
/// swap atomicity throughout.
pub fn run_campaign_chaos(cfg: &CampaignChaosConfig) -> Result<CampaignChaosReport, String> {
    run_campaign_chaos_with_obs(cfg, &Arc::new(skyobs::Registry::new()))
}

/// [`run_campaign_chaos`] against a caller-owned telemetry registry, so
/// the `live.freshness_us` histogram and campaign counters survive for a
/// `--metrics` dump.
pub fn run_campaign_chaos_with_obs(
    cfg: &CampaignChaosConfig,
    obs: &Arc<skyobs::Registry>,
) -> Result<CampaignChaosReport, String> {
    use skydb::serve::{FastOutcome, Query, QueryService, ServeConfig};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::RwLock;

    let (v1, v2) = cfg.season_files();
    let expected1 = aggregate_expected(&v1);
    let expected2 = aggregate_expected(&v2);
    let n1_objects = expected1.loadable["objects"];
    let n2_objects = expected2.loadable["objects"];
    assert_ne!(n1_objects, n2_objects, "seasons must be distinguishable");

    let obs = obs.clone();
    let baseline = obs.snapshot();
    let db_cfg = soak_db_config;
    let server = soak_catalog_server(&obs, Some(cfg.fault_plan(true)))?;

    let mut mismatches = Vec::new();

    // ---- Phase 1: live micro-batch night ingests season 1 -----------
    let live_journal = LoadJournal::new();
    let live_cfg = crate::live::LiveConfig {
        seed: cfg.seed,
        nodes: cfg.nodes,
        mean_interarrival: Duration::from_millis(5),
        burst_run: 2,
        burst_factor: 8.0,
        slo_budget: Duration::from_secs(600),
        loader: cfg.loader(),
    };
    let live = crate::live::run_live(&server, &v1, &live_cfg, Some(&live_journal))
        .map_err(|e| e.to_string())?;
    verify_season(
        server.engine(),
        &expected1.loadable,
        "after live night",
        &mut mismatches,
    )?;

    // ---- Phase 2: serve-tier readers come online --------------------
    // Huge fast deadline: no demotions, so no MyDB result tables are
    // created mid-campaign (keeps WAL-replay table ids aligned for the
    // restart-server mode).
    let serve_cfg = ServeConfig::default().with_fast_deadline(Duration::from_secs(3600));
    let svc_slot = Arc::new(RwLock::new(Arc::new(QueryService::start(
        server.clone(),
        serve_cfg.clone(),
    ))));
    let stop = Arc::new(AtomicBool::new(false));
    let reads_old = Arc::new(AtomicU64::new(0));
    let reads_new = Arc::new(AtomicU64::new(0));
    let reads_mixed = Arc::new(AtomicU64::new(0));
    let reader_handles: Vec<_> = (0..cfg.readers.max(1))
        .map(|r| {
            let slot = svc_slot.clone();
            let stop = stop.clone();
            let (old, new, mixed) = (reads_old.clone(), reads_new.clone(), reads_mixed.clone());
            std::thread::spawn(move || {
                let user = format!("reader{r}");
                while !stop.load(Ordering::Relaxed) {
                    let svc = slot.read().unwrap().clone();
                    match svc.fast_query(
                        &user,
                        Query::Scan {
                            table: "objects".into(),
                            filter: None,
                        },
                    ) {
                        Ok(FastOutcome::Done(res)) => {
                            let n = res.rows.len() as u64;
                            if n == n1_objects {
                                old.fetch_add(1, Ordering::Relaxed);
                            } else if n == n2_objects {
                                new.fetch_add(1, Ordering::Relaxed);
                            } else {
                                mixed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        // Demotions can't happen (huge deadline); queue
                        // rejections are not season evidence either way.
                        Ok(FastOutcome::Demoted(_)) | Err(_) => {}
                    }
                }
            })
        })
        .collect();

    // ---- Phase 3: the campaign, crash and all -----------------------
    let workdir = std::env::temp_dir().join(format!(
        "skyloader-campaign-chaos-{}-{}",
        cfg.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&workdir);
    std::fs::create_dir_all(&workdir).map_err(|e| e.to_string())?;
    let manifest_path = workdir.join("campaign.manifest");
    let campaign_journal = LoadJournal::new();
    let campaign_cfg = crate::campaign::CampaignConfig {
        campaign_id: cfg.seed,
        nodes: cfg.nodes,
        build_htm_index: false,
        loader: cfg.loader(),
    };

    let mut server = server;
    let mut server_restarts = 0usize;
    let first = crate::campaign::run_campaign(
        &server,
        &v2,
        &campaign_cfg,
        &manifest_path,
        Some(&campaign_journal),
    );
    let final_report = match first {
        Ok(r) => r,
        Err(skydb::error::DbError::ServerDown(_)) if cfg.swap_crash => {
            // The coordinator died at the swap point. Either the server
            // died with it (recover from the durable log: base + shadow
            // schemas, creation order) or it kept serving.
            if cfg.restart_server {
                server_restarts += 1;
                let log = server.engine().durable_log();
                let mut schemas = skycat::build_schemas();
                schemas.extend(crate::campaign::shadow_schemas(&format!(
                    "__c{}",
                    campaign_cfg.campaign_id
                )));
                let engine = Engine::recover_from_log(db_cfg(), schemas, &log)
                    .map_err(|e| format!("recovery failed: {e}"))?;
                server = Server::with_engine_and_obs(engine, obs.clone());
                // Readers re-target the recovered server.
                *svc_slot.write().unwrap() =
                    Arc::new(QueryService::start(server.clone(), serve_cfg.clone()));
            }
            // Either way the resumed coordinator runs without the crash.
            server.set_fault_plan(Some(FaultPlan::new(cfg.fault_plan(false))));
            crate::campaign::resume_campaign(
                &server,
                &v2,
                &campaign_cfg,
                &manifest_path,
                Some(&campaign_journal),
            )
            .map_err(|e| format!("campaign resume failed: {e}"))?
        }
        Err(e) => return Err(format!("campaign failed: {e}")),
    };

    // Let the readers observe the promoted season before stopping.
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    for h in reader_handles {
        h.join().map_err(|_| "reader panicked".to_string())?;
    }

    // ---- Verdict ----------------------------------------------------
    server.set_fault_plan(None);
    let (actual, lost, duplicated) = verify_season(
        server.engine(),
        &expected2.loadable,
        "after campaign",
        &mut mismatches,
    )?;
    let mut shadow_residual = 0u64;
    for table in skycat::CATALOG_TABLES {
        let shadow = format!("{table}__c{}", campaign_cfg.campaign_id);
        let tid = server
            .engine()
            .table_id(&shadow)
            .map_err(|e| e.to_string())?;
        shadow_residual += server.engine().row_count(tid);
    }
    let delta = server.obs_snapshot().since(&baseline);
    let _ = std::fs::remove_dir_all(&workdir);

    Ok(CampaignChaosReport {
        config: cfg.clone(),
        live,
        campaign_resumes: delta.counter("campaign.resumes"),
        server_restarts,
        swap_crashes: delta.counter("server.faults.swap_crash"),
        arrival_bursts: delta.counter("server.faults.arrival_burst"),
        loader_kills: delta.counter("loader_kills"),
        lease_reclaims: delta.counter("fleet.reclaims"),
        fencing_rejections: delta.counter("fleet.fence_rejections"),
        faults_by_kind: delta.with_prefix("server.faults."),
        reads_total: reads_old.load(std::sync::atomic::Ordering::Relaxed)
            + reads_new.load(std::sync::atomic::Ordering::Relaxed)
            + reads_mixed.load(std::sync::atomic::Ordering::Relaxed),
        reads_old_season: reads_old.load(std::sync::atomic::Ordering::Relaxed),
        reads_new_season: reads_new.load(std::sync::atomic::Ordering::Relaxed),
        mixed_season_reads: reads_mixed.load(std::sync::atomic::Ordering::Relaxed),
        expected_rows: expected2.total_loadable(),
        actual_rows: actual,
        lost_rows: lost,
        duplicated_rows: duplicated,
        shadow_residual_rows: shadow_residual,
        mismatches,
        swapped: final_report.swapped,
        purged_rows: final_report.purged_rows,
    })
}

// ---------------------------------------------------------------------
// Scrub chaos: bit rot under live ingest + serving, background scrubber,
// journal-driven self-repair.
// ---------------------------------------------------------------------

/// Knobs for one scrub chaos soak: a live night ingests under connection
/// weather while seeded bit rot flips bits in committed heap rows, a
/// background scrubber walks the tables concurrently with serving, and a
/// journal-driven repair re-derives every quarantined row from its source
/// file. With [`ScrubChaosConfig::wal_rot`] the soak also rots the durable
/// log and restarts the server, proving recovery stops replay at the first
/// bad record and the repair widens to the whole night.
#[derive(Debug, Clone, Serialize)]
pub struct ScrubChaosConfig {
    /// Master seed: night, fault plan, and rot schedule.
    pub seed: u64,
    /// Catalog files in the night.
    pub files: usize,
    /// Parallel loader nodes.
    pub nodes: usize,
    /// Quick mode for CI.
    pub quick: bool,
    /// Concurrent serve-tier reader threads.
    pub readers: usize,
    /// Per-opportunity probability that the rot driver flips a bit
    /// (opportunities are polled on a timer while the night loads, each
    /// decided by the seeded [`skydb::fault::FaultKind::BitRot`] schedule).
    pub rot_rate: f64,
    /// Also flip one bit in the durable WAL after the night, then restart
    /// the server from the (now-damaged) log.
    pub wal_rot: bool,
    /// Real-time interval between background scrub passes.
    #[serde(with = "ser_duration")]
    pub scrub_interval: Duration,
    /// Lease TTL for the fleet.
    #[serde(with = "ser_duration")]
    pub lease_ttl: Duration,
}

impl Default for ScrubChaosConfig {
    fn default() -> Self {
        ScrubChaosConfig {
            seed: 2005,
            files: 3,
            nodes: 2,
            quick: false,
            readers: 2,
            rot_rate: 0.35,
            wal_rot: false,
            scrub_interval: Duration::from_millis(10),
            lease_ttl: Duration::from_millis(250),
        }
    }
}

impl ScrubChaosConfig {
    fn night(&self) -> Vec<CatalogFile> {
        let files = if self.quick {
            self.files.min(2)
        } else {
            self.files
        }
        .max(1);
        generate_observation(&GenConfig::night(self.seed, 100).with_files(files))
    }

    /// Server-side plan: mild connection weather so ingest retries stay
    /// exercised. Bit rot is *not* injected per call — the rot driver owns
    /// it, deciding each opportunity against its own seeded schedule.
    fn fault_plan(&self) -> FaultPlanConfig {
        FaultPlanConfig::new(self.seed)
            .with_resets(0.004)
            .with_latency(0.01, Duration::from_millis(10))
    }

    fn loader(&self) -> LoaderConfig {
        LoaderConfig::test()
            .with_array_size(300)
            .with_commit_policy(CommitPolicy::PerFlush)
            .with_retry(
                RetryPolicy::default()
                    .with_seed(self.seed)
                    .with_call_timeout(Duration::from_millis(10)),
            )
            .with_fleet(
                crate::fleet::FleetPolicy::default()
                    .with_lease_ttl(self.lease_ttl)
                    .with_heartbeat_interval((self.lease_ttl / 4).max(Duration::from_millis(1))),
            )
    }
}

/// What a scrub chaos soak observed, and the heal verdict.
#[derive(Debug, Clone, Serialize)]
pub struct ScrubChaosReport {
    /// The configuration the soak ran with.
    pub config: ScrubChaosConfig,
    /// Heap-row bits actually flipped (≥ 1: the soak forces one flip even
    /// if the timed schedule never fired).
    pub heap_rot_injected: u64,
    /// Whether a WAL bit was flipped.
    pub wal_rot_injected: bool,
    /// Whether the server was restarted from its durable log.
    pub recovered_from_log: bool,
    /// Whether log replay itself flagged a CRC failure (it may instead
    /// surface as a torn-tail truncation, depending on which byte rotted).
    pub log_replay_flagged_corruption: bool,
    /// Whether recovery was impossible (replay constraint failure) and the
    /// repository was rebuilt from schema + source files instead.
    pub rebuilt_from_source: bool,
    /// Background + final scrub passes completed.
    pub scrub_passes: u64,
    /// Heap pages walked across all passes.
    pub scrub_pages: u64,
    /// Rows that failed their CRC across all passes.
    pub bad_records: u64,
    /// Index trees that failed validation (must be 0).
    pub bad_nodes: u64,
    /// Rows quarantined across all passes.
    pub quarantined_rows: u64,
    /// Serve-tier reads completed successfully.
    pub reads_total: u64,
    /// Reads refused with an at-rest corruption error (the rot was *seen*
    /// but never *served*).
    pub blocked_reads: u64,
    /// Rows returned to readers that are not part of the night's id space
    /// (must be 0: rot is either blocked or quarantined, never served).
    pub corrupt_rows_served: u64,
    /// The repair pass's own report (merged across attempts).
    pub repair: crate::repair::RepairReport,
    /// Repair passes run until every target file retired (a reload can
    /// fail under the soak's connection weather and is simply re-run).
    pub repair_attempts: u64,
    /// Rows that still failed a CRC in the verification scrub *after*
    /// repair (must be 0).
    pub post_repair_bad_records: u64,
    /// Faults injected per kind across the soak.
    pub faults_by_kind: BTreeMap<String, u64>,
    /// Rows the repository should hold.
    pub expected_rows: u64,
    /// Rows it holds after scrub + repair.
    pub actual_rows: u64,
    /// Rows expected but missing (must be 0).
    pub lost_rows: u64,
    /// Rows present more than once (must be 0).
    pub duplicated_rows: u64,
    /// Per-table mismatches (empty on success).
    pub mismatches: Vec<String>,
}

impl ScrubChaosReport {
    /// Did the catalog heal to the generator's ground truth, with no rot
    /// ever served and nothing lost or duplicated?
    pub fn healed(&self) -> bool {
        self.lost_rows == 0
            && self.duplicated_rows == 0
            && self.corrupt_rows_served == 0
            && self.post_repair_bad_records == 0
            && self.mismatches.is_empty()
            && self.repair.complete()
    }
}

/// Run one scrub chaos soak: live ingest + serving under seeded bit rot,
/// concurrent scrubbing, optional WAL rot + restart, then journal-driven
/// repair and a row-exact verdict against the generator's ground truth.
pub fn run_scrub_chaos(cfg: &ScrubChaosConfig) -> Result<ScrubChaosReport, String> {
    run_scrub_chaos_with_obs(cfg, &Arc::new(skyobs::Registry::new()))
}

/// [`run_scrub_chaos`] against a caller-owned telemetry registry, so the
/// `scrub.*` and `repair.*` counters survive for a `--metrics` dump.
pub fn run_scrub_chaos_with_obs(
    cfg: &ScrubChaosConfig,
    obs: &Arc<skyobs::Registry>,
) -> Result<ScrubChaosReport, String> {
    use skydb::fault::FaultKind;
    use skydb::scrub::{run_scrub, QuarantinedRow, ScrubConfig};
    use skydb::serve::{FastOutcome, Query, QueryService, ServeConfig};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::RwLock;

    let night = cfg.night();
    let expected = aggregate_expected(&night);
    let loader = cfg.loader();
    loader.validate()?;
    let obs = obs.clone();
    let baseline = obs.snapshot();

    let db_cfg = soak_db_config;
    let server = soak_catalog_server(&obs, Some(cfg.fault_plan()))?;

    // Object ids this night can legitimately serve: any id inside one of
    // the night's file spans. A served row outside them is rot that leaked.
    let valid_spans: BTreeSet<i64> = (0..night.len() as i64)
        .map(|i| 100 * 1000 + i + 1)
        .collect();

    // ---- serve-tier readers ------------------------------------------
    let serve_cfg = ServeConfig::default().with_fast_deadline(Duration::from_secs(3600));
    let svc_slot = Arc::new(RwLock::new(Arc::new(QueryService::start(
        server.clone(),
        serve_cfg.clone(),
    ))));
    let stop_readers = Arc::new(AtomicBool::new(false));
    let reads_ok = Arc::new(AtomicU64::new(0));
    let reads_blocked = Arc::new(AtomicU64::new(0));
    let corrupt_served = Arc::new(AtomicU64::new(0));
    let reader_handles: Vec<_> = (0..cfg.readers.max(1))
        .map(|r| {
            let slot = svc_slot.clone();
            let stop = stop_readers.clone();
            let (ok, blocked, leaked) = (
                reads_ok.clone(),
                reads_blocked.clone(),
                corrupt_served.clone(),
            );
            let spans = valid_spans.clone();
            std::thread::spawn(move || {
                let user = format!("reader{r}");
                while !stop.load(Ordering::Relaxed) {
                    let svc = slot.read().unwrap().clone();
                    match svc.fast_query(
                        &user,
                        Query::Scan {
                            table: "objects".into(),
                            filter: None,
                        },
                    ) {
                        Ok(FastOutcome::Done(res)) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            for row in &res.rows {
                                let served_valid = matches!(
                                    row.first(),
                                    Some(skydb::Value::Int(id))
                                        if spans.contains(&(id / 10_000_000)));
                                if !served_valid {
                                    leaked.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(skydb::serve::ServeError::Db(
                            skydb::error::DbError::DataCorruption(_),
                        )) => {
                            // The engine refused to serve a rotted row:
                            // exactly the contract. Never row data.
                            blocked.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(FastOutcome::Demoted(_)) | Err(_) => {}
                    }
                }
            })
        })
        .collect();

    // ---- background scrubber + rot driver ----------------------------
    let stop_background = Arc::new(AtomicBool::new(false));
    let quarantined_acc: Arc<parking_lot::Mutex<Vec<QuarantinedRow>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let scrub_passes = Arc::new(AtomicU64::new(0));
    let scrub_errors: Arc<parking_lot::Mutex<Vec<String>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let scrubber = {
        let server = server.clone();
        let obs = obs.clone();
        let stop = stop_background.clone();
        let acc = quarantined_acc.clone();
        let passes = scrub_passes.clone();
        let errors = scrub_errors.clone();
        let interval = cfg.scrub_interval;
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                match run_scrub(server.engine(), &ScrubConfig::default(), &obs) {
                    Ok(report) => {
                        passes.fetch_add(1, Ordering::Relaxed);
                        acc.lock().extend(report.quarantined);
                    }
                    Err(e) => errors.lock().push(format!("background scrub: {e}")),
                }
            }
        })
    };
    // The rot driver: each tick is one opportunity, decided by the seeded
    // BitRot schedule, so one seed reproduces the same fire-ordinal
    // sequence. Flips alternate between the two biggest child tables.
    let rot_injected = Arc::new(AtomicU64::new(0));
    let rot_driver = {
        let server = server.clone();
        let stop = stop_background.clone();
        let injected = rot_injected.clone();
        let plan = FaultPlan::new(FaultPlanConfig::new(cfg.seed).with_bit_rot(cfg.rot_rate));
        let seed = cfg.seed;
        std::thread::spawn(move || {
            let tables = ["objects", "fingers"];
            let mut tick = 0u64;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(2));
                tick += 1;
                if plan.decide_bit_rot_fault().is_some() {
                    let table = tables[(tick % tables.len() as u64) as usize];
                    if server
                        .engine()
                        .rot_heap_row(table, seed ^ tick.wrapping_mul(0x9E37))
                        .is_some()
                    {
                        injected.fetch_add(1, Ordering::Relaxed);
                        server.note_injected_fault(FaultKind::BitRot);
                    }
                }
            }
        })
    };

    // ---- the live night ----------------------------------------------
    let journal = LoadJournal::new();
    let live_cfg = crate::live::LiveConfig {
        seed: cfg.seed,
        nodes: cfg.nodes,
        mean_interarrival: Duration::from_millis(5),
        burst_run: 2,
        burst_factor: 8.0,
        slo_budget: Duration::from_secs(600),
        loader: cfg.loader(),
    };
    let live_result = crate::live::run_live(&server, &night, &live_cfg, Some(&journal));
    stop_background.store(true, Ordering::Relaxed);
    rot_driver.join().map_err(|_| "rot driver panicked")?;
    scrubber.join().map_err(|_| "scrubber panicked")?;
    live_result.map_err(|e| format!("live night failed: {e}"))?;

    // One guaranteed flip after the night, so the detect→quarantine→repair
    // path is exercised even if every timed opportunity declined.
    if server
        .engine()
        .rot_heap_row("objects", cfg.seed ^ 0xF0F0)
        .is_some()
    {
        rot_injected.fetch_add(1, Ordering::Relaxed);
        server.note_injected_fault(FaultKind::BitRot);
    }

    // ---- optional WAL rot + restart ----------------------------------
    let mut server = server;
    let mut recovered_from_log = false;
    let mut log_flagged = false;
    let mut rebuilt_from_source = false;
    if cfg.wal_rot {
        server.engine().checkpoint();
        if server.engine().rot_wal_bit(cfg.seed ^ 0x0A1).is_some() {
            server.note_injected_fault(FaultKind::BitRot);
        }
        let log = server.engine().durable_log();
        match Engine::recover_from_log_checked(db_cfg(), skycat::build_schemas(), &log) {
            Ok((engine, corrupt)) => {
                recovered_from_log = true;
                log_flagged = corrupt;
                server = Server::with_engine_and_obs(engine, obs.clone());
            }
            Err(_) => {
                // The lost middle of the log took FK parents with it:
                // replay cannot satisfy constraints. Disaster path — an
                // empty repository re-derived wholly from source files.
                rebuilt_from_source = true;
                let fresh = Server::start_with_obs(db_cfg(), obs.clone());
                skycat::create_all(fresh.engine()).map_err(|e| e.to_string())?;
                skycat::seed_static(fresh.engine()).map_err(|e| e.to_string())?;
                skycat::seed_observation(fresh.engine(), 1, 100).map_err(|e| e.to_string())?;
                server = fresh;
            }
        }
        *svc_slot.write().unwrap() =
            Arc::new(QueryService::start(server.clone(), serve_cfg.clone()));
    }

    // ---- final scrub pass, then repair -------------------------------
    let final_scrub = run_scrub(server.engine(), &ScrubConfig::default(), &obs)
        .map_err(|e| format!("final scrub: {e}"))?;
    scrub_passes.fetch_add(1, Ordering::Relaxed);
    let mut quarantined = std::mem::take(&mut *quarantined_acc.lock());
    quarantined.extend(final_scrub.quarantined);

    // Repair runs under the same connection weather as the night: a file
    // whose reload exhausts its retry budget stays in `failed_files`, and
    // the harness re-runs the pass (idempotent — restored rows dedup as PK
    // skips) like the chaos soak re-runs a failed generation.
    let mut repair = crate::repair::run_repair(
        &server,
        &night,
        &quarantined,
        cfg.wal_rot,
        &loader,
        cfg.nodes,
        &journal,
    )?;
    let mut repair_attempts = 1u64;
    while !repair.complete() && repair_attempts < 4 {
        repair_attempts += 1;
        let again = crate::repair::run_repair(
            &server,
            &night,
            &quarantined,
            cfg.wal_rot,
            &loader,
            cfg.nodes,
            &journal,
        )?;
        repair.rows_restored += again.rows_restored;
        repair.rows_skipped += again.rows_skipped;
        repair.failed_files = again.failed_files;
    }

    // Verification scrub: after repair, nothing may fail a CRC.
    let verify_scrub = run_scrub(server.engine(), &ScrubConfig::default(), &obs)
        .map_err(|e| format!("verification scrub: {e}"))?;
    scrub_passes.fetch_add(1, Ordering::Relaxed);

    stop_readers.store(true, Ordering::Relaxed);
    for h in reader_handles {
        h.join().map_err(|_| "reader panicked".to_string())?;
    }

    // ---- verdict ------------------------------------------------------
    server.set_fault_plan(None);
    let mut mismatches = std::mem::take(&mut *scrub_errors.lock());
    let (actual, lost, duplicated) = verify_season(
        server.engine(),
        &expected.loadable,
        "after repair",
        &mut mismatches,
    )?;
    let delta = server.obs_snapshot().since(&baseline);

    Ok(ScrubChaosReport {
        config: cfg.clone(),
        heap_rot_injected: rot_injected.load(Ordering::Relaxed),
        wal_rot_injected: cfg.wal_rot,
        recovered_from_log,
        log_replay_flagged_corruption: log_flagged,
        rebuilt_from_source,
        scrub_passes: scrub_passes.load(Ordering::Relaxed),
        scrub_pages: delta.counter("scrub.pages"),
        bad_records: delta.counter("scrub.bad_records"),
        bad_nodes: delta.counter("scrub.bad_nodes"),
        quarantined_rows: delta.counter("scrub.quarantined"),
        reads_total: reads_ok.load(Ordering::Relaxed),
        blocked_reads: reads_blocked.load(Ordering::Relaxed),
        corrupt_rows_served: corrupt_served.load(Ordering::Relaxed),
        repair,
        repair_attempts,
        post_repair_bad_records: verify_scrub.bad_records(),
        faults_by_kind: delta.with_prefix("server.faults."),
        expected_rows: expected.total_loadable(),
        actual_rows: actual,
        lost_rows: lost,
        duplicated_rows: duplicated,
        mismatches,
    })
}

/// Knobs for one shard chaos soak: live micro-batch ingest into a
/// declination-sharded group while a seeded driver kills and stalls
/// shards, the supervisor rebuilds them behind fencing epochs, and the
/// coordinator itself restarts mid-night.
#[derive(Debug, Clone, Serialize)]
pub struct ShardChaosConfig {
    /// Master seed: drives the night, the weather, and the shard faults.
    pub seed: u64,
    /// Catalog files in the night.
    pub files: usize,
    /// Declination zones (= shards).
    pub shards: u32,
    /// Serve-tier reader threads.
    pub readers: usize,
    /// Quick mode: a smaller night, for CI.
    pub quick: bool,
    /// Kill the shard picked at the Nth shard-fault opportunity (1-based).
    pub shard_kill_at: Option<u64>,
    /// Freeze a shard's heartbeat past its lease TTL at the Nth
    /// opportunity instead — the stall the supervisor must detect by
    /// lease expiry, whose zombie flushes the fence must reject.
    pub shard_stall_at: Option<u64>,
    /// Per-tick kill probability on top of the pins.
    pub shard_kill_rate: f64,
    /// Per-tick stall probability on top of the pins.
    pub shard_stall_rate: f64,
    /// Shard lease TTL: a heartbeat older than this declares the shard
    /// dead.
    #[serde(with = "ser_duration")]
    pub lease_ttl: Duration,
    /// Restart the coordinator mid-night: a fresh [`skydb::shard::ShardGroup`]
    /// re-adopts the live servers with journal-restored epochs one
    /// generation higher, fencing any writer still holding a pre-restart
    /// token.
    pub restart_coordinator: bool,
}

impl Default for ShardChaosConfig {
    fn default() -> Self {
        ShardChaosConfig {
            seed: 2005,
            files: 6,
            shards: 3,
            readers: 2,
            quick: false,
            shard_kill_at: Some(1),
            shard_stall_at: Some(2),
            shard_kill_rate: 0.0,
            shard_stall_rate: 0.0,
            lease_ttl: Duration::from_millis(60),
            restart_coordinator: true,
        }
    }
}

impl ShardChaosConfig {
    fn night(&self) -> Vec<CatalogFile> {
        let files = if self.quick {
            self.files.min(4)
        } else {
            self.files
        };
        let gen = GenConfig::night(self.seed, 100)
            .with_files(files)
            .with_error_rate(0.05);
        generate_observation(&gen)
    }

    /// Connection weather each shard server runs under, salted so shards
    /// draw different schedules from one soak seed. Deliberately milder
    /// than the single-engine soak: the *shard* faults are the story
    /// here, the weather just keeps the retry paths warm.
    fn weather(&self, salt: u64) -> FaultPlanConfig {
        FaultPlanConfig::new(self.seed ^ salt.wrapping_mul(0x9E37_79B9))
            .with_resets(0.003)
            .with_busy(0.003)
            .with_latency(0.008, Duration::from_millis(5))
    }

    /// The seeded kill/stall schedule the shard-fault driver polls.
    fn shard_faults(&self) -> FaultPlanConfig {
        let mut plan = FaultPlanConfig::new(self.seed)
            .with_shard_crashes(self.shard_kill_rate)
            .with_shard_stalls(self.shard_stall_rate);
        if let Some(n) = self.shard_kill_at {
            plan = plan.with_shard_crash_at(n);
        }
        if let Some(n) = self.shard_stall_at {
            plan = plan.with_shard_stall_at(n);
        }
        plan
    }
}

/// What one shard chaos soak observed and proved.
#[derive(Debug, Clone, Serialize)]
pub struct ShardChaosReport {
    /// The configuration that produced this report.
    pub config: ShardChaosConfig,
    /// Shards killed mid-ingest by the driver.
    pub shard_kills: u64,
    /// Shard heartbeats frozen past their TTL by the driver.
    pub shard_stalls: u64,
    /// Shard generations fenced and taken by the supervisor
    /// (`shard.reclaims`).
    pub reclaims: u64,
    /// Replacement shard servers installed (`shard.rebuilds`).
    pub rebuilds: u64,
    /// Loader flushes rejected by a fencing epoch and requeued.
    pub fenced_flushes: u64,
    /// Whole-file requeues for any retryable cause.
    pub requeues: u64,
    /// Coordinator restarts performed mid-night.
    pub coordinator_restarts: u64,
    /// Serve-tier reads that completed.
    pub reads_total: u64,
    /// Reads answered degraded — explicitly flagged partial with the
    /// missing zones listed, never silently truncated.
    pub partial_reads: u64,
    /// Served rows whose object id lies outside the night's file spans
    /// (must be 0 — nothing corrupt is ever served).
    pub corrupt_rows_served: u64,
    /// Final `objects` row count per zone.
    pub per_zone_rows: Vec<u64>,
    /// Rows the repository should hold (generator ground truth).
    pub expected_rows: u64,
    /// Rows it holds across shards (replicated tables counted once).
    pub actual_rows: u64,
    /// Rows expected but missing (must be 0).
    pub lost_rows: u64,
    /// Rows present more than once (must be 0).
    pub duplicated_rows: u64,
    /// Per-zone, per-table mismatches (empty on success).
    pub mismatches: Vec<String>,
    /// Injected-fault counters by kind.
    pub faults_by_kind: BTreeMap<String, u64>,
}

impl ShardChaosReport {
    /// Did every loadable row land exactly once in exactly the right
    /// zone, with nothing corrupt ever served?
    pub fn exactly_once(&self) -> bool {
        self.lost_rows == 0
            && self.duplicated_rows == 0
            && self.corrupt_rows_served == 0
            && self.mismatches.is_empty()
    }
}

/// Run one shard chaos soak: live micro-batch ingest into a sharded
/// group + serve-tier readers + a seeded shard-kill/stall driver + a
/// coordinator restart, then a row-exact per-zone verdict against an
/// independent single-engine reference load.
pub fn run_shard_chaos(cfg: &ShardChaosConfig) -> Result<ShardChaosReport, String> {
    run_shard_chaos_with_obs(cfg, &Arc::new(skyobs::Registry::new()))
}

/// [`run_shard_chaos`] against a caller-owned telemetry registry, so the
/// `shard.*` counters survive for a `--metrics` dump.
pub fn run_shard_chaos_with_obs(
    cfg: &ShardChaosConfig,
    obs: &Arc<skyobs::Registry>,
) -> Result<ShardChaosReport, String> {
    use crate::shardload::{
        shard_epoch_journal_key, ShardLoadConfig, ShardLoader, ShardRouter, ShardSupervisor,
        ShardSupervisorConfig, ZONED_TABLES,
    };
    use skydb::fault::FaultKind;
    use skydb::serve::{FastOutcome, Query, QueryService, ServeConfig};
    use skydb::shard::{GatherPolicy, ShardGroup, ZoneMap};
    use skysim::rng::SplitMix64;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::RwLock;
    use std::time::Instant;

    let night = cfg.night();
    let expected = aggregate_expected(&night);
    // The generator's four ccds emit decs over [-1.2, 1.2): shard exactly
    // that band so every zone actually receives rows.
    let map = ZoneMap::band(cfg.shards.max(1), -1.2, 1.2);
    let reference = crate::shardload::clean_reference(&map, &night)?;
    let obs = obs.clone();
    let baseline = obs.snapshot();

    // One seeded catalog server per zone, each under its own weather.
    let servers = (0..map.zones())
        .map(|z| soak_catalog_server(&obs, Some(cfg.weather(z as u64))))
        .collect::<Result<Vec<_>, String>>()?;
    let policy = GatherPolicy::default()
        .with_attempts(8)
        .with_per_shard_timeout(Duration::from_millis(100))
        .with_seed(cfg.seed)
        .with_allow_partial(true);
    let group_slot = Arc::new(RwLock::new(Arc::new(ShardGroup::new(
        map,
        servers,
        &ZONED_TABLES,
        policy.clone(),
        &obs,
    ))));
    let journal = Arc::new(LoadJournal::new());
    let sup_cfg = ShardSupervisorConfig::soak(soak_db_config(), cfg.lease_ttl)
        .with_fault_plan(cfg.weather(0x5A));
    let sup_slot = Arc::new(RwLock::new(ShardSupervisor::start(
        group_slot.read().unwrap().clone(),
        &obs,
        sup_cfg.clone(),
        night.clone(),
        journal.clone(),
    )));

    // Object ids this night can legitimately serve (same integrity check
    // as the scrub soak): anything outside the night's file spans that a
    // reader sees is corruption leaking through the serve tier.
    let valid_spans: BTreeSet<i64> = (0..night.len() as i64)
        .map(|i| 100 * 1000 + i + 1)
        .collect();

    // ---- serve-tier readers over a swappable service slot ------------
    let serve_cfg = ServeConfig::default().with_fast_deadline(Duration::from_secs(3600));
    let svc_slot = Arc::new(RwLock::new(Arc::new(QueryService::start_sharded(
        group_slot.read().unwrap().clone(),
        serve_cfg.clone(),
        &obs,
    ))));
    let stop_readers = Arc::new(AtomicBool::new(false));
    let reads_ok = Arc::new(AtomicU64::new(0));
    let partial_reads = Arc::new(AtomicU64::new(0));
    let corrupt_served = Arc::new(AtomicU64::new(0));
    let reader_handles: Vec<_> = (0..cfg.readers.max(1))
        .map(|r| {
            let slot = svc_slot.clone();
            let stop = stop_readers.clone();
            let (ok, partial, leaked) = (
                reads_ok.clone(),
                partial_reads.clone(),
                corrupt_served.clone(),
            );
            let spans = valid_spans.clone();
            std::thread::spawn(move || {
                let user = format!("reader{r}");
                while !stop.load(Ordering::Relaxed) {
                    let svc = slot.read().unwrap().clone();
                    match svc.fast_query(
                        &user,
                        Query::Scan {
                            table: "objects".into(),
                            filter: None,
                        },
                    ) {
                        Ok(FastOutcome::Done(res)) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            if res.partial {
                                // Degraded answer: explicitly flagged,
                                // missing zones listed — the contract.
                                partial.fetch_add(1, Ordering::Relaxed);
                            }
                            for row in &res.rows {
                                let valid = matches!(
                                    row.first(),
                                    Some(skydb::Value::Int(id))
                                        if spans.contains(&(id / 10_000_000)));
                                if !valid {
                                    leaked.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Ok(FastOutcome::Demoted(_)) | Err(_) => {}
                    }
                }
            })
        })
        .collect();

    // ---- the shard-kill/stall driver ---------------------------------
    let stop_driver = Arc::new(AtomicBool::new(false));
    let kills = Arc::new(AtomicU64::new(0));
    let stalls = Arc::new(AtomicU64::new(0));
    let driver = {
        let group_slot = group_slot.clone();
        let sup_slot = sup_slot.clone();
        let stop = stop_driver.clone();
        let (kills, stalls) = (kills.clone(), stalls.clone());
        let plan = FaultPlan::new(cfg.shard_faults());
        let shards = map.zones() as u64;
        std::thread::spawn(move || {
            let mut events = 0u64;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(2));
                if let Some(kind) = plan.decide_shard_fault() {
                    events += 1;
                    let victim = (events % shards) as u32;
                    let group = group_slot.read().unwrap().clone();
                    match kind {
                        FaultKind::ShardCrash => {
                            let server = group.server(victim);
                            server.note_injected_fault(FaultKind::ShardCrash);
                            server.crash();
                            kills.fetch_add(1, Ordering::Relaxed);
                        }
                        FaultKind::ShardStall => {
                            group
                                .server(victim)
                                .note_injected_fault(FaultKind::ShardStall);
                            sup_slot.read().unwrap().stall(victim, true);
                            stalls.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {}
                    }
                }
            }
        })
    };

    // ---- live micro-batch ingest, coordinator restart mid-night ------
    let load_cfg = ShardLoadConfig::default();
    let mut router = ShardRouter::new(map);
    let mut pacing = SplitMix64::new(cfg.seed ^ 0x16E57);
    let restart_after = if cfg.restart_coordinator {
        night.len() / 2
    } else {
        usize::MAX
    };
    let mut coordinator_restarts = 0u64;
    let mut requeues = 0u64;
    let mut fenced_flushes = 0u64;
    for (i, file) in night.iter().enumerate() {
        if i == restart_after {
            // Coordinator restart: the old group and its supervisor are
            // gone. A fresh coordinator re-adopts the live servers, folds
            // the journal's persisted epochs back in one generation
            // higher — fencing any writer still holding a pre-restart
            // token — and the serve tier re-targets.
            let old_sup = sup_slot.read().unwrap().clone();
            old_sup.shutdown();
            let old_group = group_slot.read().unwrap().clone();
            let servers: Vec<Arc<Server>> = (0..old_group.zones())
                .map(|z| old_group.server(z))
                .collect();
            let new_group = Arc::new(ShardGroup::new(
                map,
                servers,
                &ZONED_TABLES,
                policy.clone(),
                &obs,
            ));
            for z in 0..new_group.zones() {
                new_group.restore_epoch(z, journal.epoch_for(&shard_epoch_journal_key(z)) + 1);
            }
            *group_slot.write().unwrap() = new_group.clone();
            *sup_slot.write().unwrap() = ShardSupervisor::start(
                new_group.clone(),
                &obs,
                sup_cfg.clone(),
                night.clone(),
                journal.clone(),
            );
            *svc_slot.write().unwrap() = Arc::new(QueryService::start_sharded(
                new_group,
                serve_cfg.clone(),
                &obs,
            ));
            coordinator_restarts += 1;
        }
        let group = group_slot.read().unwrap().clone();
        let loader = ShardLoader::new(group, load_cfg.clone(), &obs);
        let r = loader.load_files(&mut router, std::slice::from_ref(file), Some(&journal))?;
        requeues += r.requeues;
        fenced_flushes += r.fenced_flushes;
        // Poisson-ish inter-batch gaps so the drivers interleave with
        // flushes rather than only landing between files.
        std::thread::sleep(Duration::from_micros((pacing.next_f64() * 3000.0) as u64));
    }

    // ---- drain: stop injecting, let the supervisor heal everything ----
    stop_driver.store(true, Ordering::Relaxed);
    driver.join().map_err(|_| "shard-fault driver panicked")?;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let group = group_slot.read().unwrap().clone();
        let sup = sup_slot.read().unwrap().clone();
        let healthy = (0..group.zones()).all(|z| !group.server(z).is_crashed())
            && sup.stalled_zones().is_empty();
        if healthy || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // One TTL of settle so a reclaim racing the drain check completes.
    std::thread::sleep(cfg.lease_ttl);
    sup_slot.read().unwrap().clone().shutdown();
    stop_readers.store(true, Ordering::Relaxed);
    for h in reader_handles {
        h.join().map_err(|_| "reader panicked".to_string())?;
    }

    let group = group_slot.read().unwrap().clone();
    for z in 0..group.zones() {
        group.server(z).set_fault_plan(None);
    }

    // ---- verdict ------------------------------------------------------
    let mut mismatches = Vec::new();
    for (table, expect) in &expected.loadable {
        if reference.totals[table] != *expect {
            mismatches.push(format!(
                "reference load diverged from generator truth for {table}: {} vs {expect}",
                reference.totals[table]
            ));
        }
    }
    let final_scan = group
        .scan("objects", None)
        .map_err(|e| format!("final scan: {e}"))?;
    if final_scan.partial {
        mismatches.push(format!(
            "final scan degraded: zones {:?} missing",
            final_scan.missing_zones
        ));
    }
    if final_scan.rows.len() as u64 != reference.totals["objects"] {
        mismatches.push(format!(
            "final scatter-gather scan: expected {} objects, got {}",
            reference.totals["objects"],
            final_scan.rows.len()
        ));
    }
    let (mut actual, mut lost, mut duplicated) = (0u64, 0u64, 0u64);
    let mut per_zone_rows = Vec::new();
    for zone in 0..group.zones() {
        let server = group.server(zone);
        let engine = server.engine();
        for (table, expect) in &reference.per_zone[zone as usize] {
            let table: &'static str = table;
            let tid = engine.table_id(table).map_err(|e| e.to_string())?;
            let got = engine.row_count(tid);
            // Replicated tables hold a full copy per shard; count zone
            // 0's copy toward the whole-repository total.
            if ZONED_TABLES.contains(&table) || zone == 0 {
                actual += got;
            }
            if got < *expect {
                lost += expect - got;
                mismatches.push(format!(
                    "zone {zone}: {table} expected {expect}, got {got} (lost)"
                ));
            } else if got > *expect {
                duplicated += got - expect;
                mismatches.push(format!(
                    "zone {zone}: {table} expected {expect}, got {got} (duplicated)"
                ));
            }
        }
        let tid = engine.table_id("objects").map_err(|e| e.to_string())?;
        per_zone_rows.push(engine.row_count(tid));
    }
    let delta = obs.snapshot().since(&baseline);

    Ok(ShardChaosReport {
        config: cfg.clone(),
        shard_kills: kills.load(Ordering::Relaxed),
        shard_stalls: stalls.load(Ordering::Relaxed),
        reclaims: delta.counter("shard.reclaims"),
        rebuilds: delta.counter("shard.rebuilds"),
        fenced_flushes,
        requeues,
        coordinator_restarts,
        reads_total: reads_ok.load(Ordering::Relaxed),
        partial_reads: partial_reads.load(Ordering::Relaxed),
        corrupt_rows_served: corrupt_served.load(Ordering::Relaxed),
        per_zone_rows,
        expected_rows: expected.total_loadable(),
        actual_rows: actual,
        lost_rows: lost,
        duplicated_rows: duplicated,
        mismatches,
        faults_by_kind: delta.with_prefix("server.faults."),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_soak_delivers_exactly_once() {
        let cfg = ChaosConfig {
            seed: 11,
            files: 4,
            nodes: 2,
            quick: true,
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg).unwrap();
        assert!(
            report.exactly_once(),
            "lost={} dup={} unfinished={:?} mismatches={:?}",
            report.lost_rows,
            report.duplicated_rows,
            report.unfinished_files,
            report.mismatches
        );
        assert!(report.restarts >= 1, "the crash-on-flush never fired");
        assert!(
            report.fault_kinds_fired() >= 4,
            "only {:?} fired",
            report.faults_by_kind
        );
    }

    #[test]
    fn loader_kill_and_zombie_soak_stays_exactly_once() {
        // A loader killed on the first grant and another frozen into a
        // zombie on the second, on top of the usual connection weather:
        // the supervisor must reclaim both leases and the zombie's stale
        // flush must be fenced — with every loadable row landing once.
        let cfg = ChaosConfig {
            seed: 77,
            files: 4,
            nodes: 2,
            quick: true,
            loader_kill_at: Some(1),
            loader_stall_at: Some(2),
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg).unwrap();
        assert!(
            report.exactly_once(),
            "lost={} dup={} unfinished={:?} mismatches={:?}",
            report.lost_rows,
            report.duplicated_rows,
            report.unfinished_files,
            report.mismatches
        );
        assert!(report.loader_kills >= 1, "the loader kill never fired");
        assert!(report.loader_stalls >= 1, "the loader stall never fired");
        assert!(
            report.lease_reclaims >= 2,
            "expected both faulted leases reclaimed, got {}",
            report.lease_reclaims
        );
        assert!(
            report.fencing_rejections >= 1,
            "the zombie's stale flush was never fenced"
        );
    }

    #[test]
    fn same_seed_reproduces_the_fault_schedule() {
        // Single-node runs are fully deterministic: two soaks with one
        // seed must observe the identical fault counters.
        let cfg = ChaosConfig {
            seed: 29,
            files: 3,
            nodes: 1,
            quick: true,
            ..ChaosConfig::default()
        };
        let a = run_chaos(&cfg).unwrap();
        let b = run_chaos(&cfg).unwrap();
        assert_eq!(a.faults_by_kind, b.faults_by_kind);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.generations, b.generations);
        assert_eq!(a.restarts, b.restarts);
        assert!(a.exactly_once() && b.exactly_once());
    }

    #[test]
    fn campaign_chaos_survives_coordinator_crash_at_swap() {
        let cfg = CampaignChaosConfig {
            seed: 41,
            quick: true,
            ..CampaignChaosConfig::default()
        };
        let report = run_campaign_chaos(&cfg).unwrap();
        assert!(
            report.exactly_once(),
            "lost={} dup={} shadow_residual={} mismatches={:?}",
            report.lost_rows,
            report.duplicated_rows,
            report.shadow_residual_rows,
            report.mismatches
        );
        assert!(
            report.swap_atomic(),
            "mixed={} total={}",
            report.mixed_season_reads,
            report.reads_total
        );
        assert!(report.swapped, "the campaign never swapped");
        assert_eq!(report.swap_crashes, 1, "the swap crash never fired");
        assert_eq!(report.campaign_resumes, 1, "the coordinator never resumed");
        assert!(report.loader_kills >= 1, "the loader kill never fired");
        assert!(
            report.live.freshness.count > 0 && report.live.freshness.max_us > 0,
            "live freshness histogram was never populated: {:?}",
            report.live.freshness
        );
        assert!(
            report.live.slo_met(),
            "freshness SLO blown in a quiet night"
        );
        assert!(report.purged_rows > 0, "season 1 was never purged");
    }

    #[test]
    fn campaign_chaos_survives_full_server_crash_at_swap() {
        let cfg = CampaignChaosConfig {
            seed: 43,
            quick: true,
            restart_server: true,
            ..CampaignChaosConfig::default()
        };
        let report = run_campaign_chaos(&cfg).unwrap();
        assert!(
            report.exactly_once(),
            "lost={} dup={} shadow_residual={} mismatches={:?}",
            report.lost_rows,
            report.duplicated_rows,
            report.shadow_residual_rows,
            report.mismatches
        );
        assert!(report.swap_atomic(), "mixed={}", report.mixed_season_reads);
        assert_eq!(report.server_restarts, 1);
        assert!(report.swapped);
        // The recovered engine replays the WAL by table id, so the swap
        // (a name-level rebind) is gone after recovery: the resumed
        // coordinator must redo it, not skip it.
        assert_eq!(report.campaign_resumes, 1);
    }

    #[test]
    fn scrub_chaos_heals_bit_rot_under_live_serving() {
        let cfg = ScrubChaosConfig {
            seed: 71,
            quick: true,
            ..ScrubChaosConfig::default()
        };
        let report = run_scrub_chaos(&cfg).unwrap();
        assert!(
            report.healed(),
            "lost={} dup={} served_corrupt={} post_repair_bad={} mismatches={:?}",
            report.lost_rows,
            report.duplicated_rows,
            report.corrupt_rows_served,
            report.post_repair_bad_records,
            report.mismatches
        );
        assert!(report.heap_rot_injected >= 1, "no rot was ever injected");
        assert!(
            report.bad_records >= 1 && report.quarantined_rows >= 1,
            "the scrubber never caught the rot: {report:?}"
        );
        assert!(
            !report.repair.files_reloaded.is_empty(),
            "repair reloaded nothing"
        );
        assert!(report.scrub_passes >= 2);
        assert!(report.reads_total > 0, "readers never ran");
        assert_eq!(report.bad_nodes, 0);
    }

    #[test]
    fn scrub_chaos_survives_wal_rot_and_restart() {
        let cfg = ScrubChaosConfig {
            seed: 72,
            quick: true,
            wal_rot: true,
            ..ScrubChaosConfig::default()
        };
        let report = run_scrub_chaos(&cfg).unwrap();
        assert!(
            report.healed(),
            "lost={} dup={} served_corrupt={} rebuilt={} mismatches={:?}",
            report.lost_rows,
            report.duplicated_rows,
            report.corrupt_rows_served,
            report.rebuilt_from_source,
            report.mismatches
        );
        assert!(report.wal_rot_injected);
        assert!(
            report.recovered_from_log || report.rebuilt_from_source,
            "a WAL-rot soak must restart from the log or rebuild from source"
        );
        assert!(report.repair.widened_for_wal_rot);
        assert_eq!(
            report.repair.files_reloaded.len(),
            cfg.files.min(2),
            "widened repair must reload the whole night"
        );
    }

    #[test]
    fn shard_chaos_survives_kill_stall_and_coordinator_restart() {
        let cfg = ShardChaosConfig {
            seed: 2005,
            quick: true,
            ..ShardChaosConfig::default()
        };
        let report = run_shard_chaos(&cfg).unwrap();
        assert!(
            report.exactly_once(),
            "lost={} dup={} corrupt_served={} mismatches={:?}",
            report.lost_rows,
            report.duplicated_rows,
            report.corrupt_rows_served,
            report.mismatches
        );
        assert!(report.shard_kills >= 1, "the shard kill never fired");
        assert!(report.shard_stalls >= 1, "the shard stall never fired");
        assert!(
            report.reclaims >= 2,
            "expected both faulted shards reclaimed, got {}",
            report.reclaims
        );
        assert!(report.rebuilds >= 2, "got {} rebuilds", report.rebuilds);
        assert_eq!(report.coordinator_restarts, 1);
        assert!(report.reads_total > 0, "readers never ran");
        assert_eq!(report.actual_rows, report.expected_rows);
        assert!(
            report.per_zone_rows.iter().all(|&n| n > 0),
            "every zone should own rows: {:?}",
            report.per_zone_rows
        );
    }
}
