//! Chaos-soak harness: load a full night under a seeded multi-kind fault
//! plan — resets, busy rejections, latency spikes, disk-full commits,
//! per-batch corruption and a mid-night crash-on-flush — and verify that
//! the repository still ends up with **exactly one copy of every loadable
//! row**.
//!
//! The harness owns the piece the retry layer deliberately does not: when
//! the server crashes (torn commit flush), it recovers a fresh engine from
//! the durable log, re-installs the fault plan (without the crash, which
//! already fired), and resumes the remaining files from the shared
//! checkpoint journal. Everything in between — backoff, breaker trips,
//! degradation — is [`crate::parallel::load_night_with_journal`]'s job.
//!
//! Every fault decision derives from [`ChaosConfig::seed`], so a run is
//! reproducible bit-for-bit: same seed, same fault schedule.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

use serde::Serialize;

use skycat::gen::{aggregate_expected, generate_observation, CatalogFile, GenConfig};
use skydb::engine::Engine;
use skydb::fault::{FaultPlan, FaultPlanConfig};
use skydb::{DbConfig, Server};
use skysim::cluster::AssignmentPolicy;

use crate::config::{CommitPolicy, LoaderConfig};
use crate::recovery::LoadJournal;
use crate::report::ser_duration;
use crate::resilience::{DegradeTransition, RetryPolicy};

/// How many crash/recover cycles the harness tolerates before declaring
/// the soak wedged.
const MAX_RESTARTS: usize = 8;

/// How many load generations (including non-crash retries of failed
/// files) the harness runs before giving up.
const MAX_GENERATIONS: usize = 24;

/// Knobs for one chaos soak.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosConfig {
    /// Master seed: drives both the synthetic night and the fault plan.
    pub seed: u64,
    /// Catalog files in the night.
    pub files: usize,
    /// Parallel loader nodes.
    pub nodes: usize,
    /// Generator object-corruption rate (dirty *data*, distinct from
    /// injected *faults*).
    pub error_rate: f64,
    /// Quick mode: a smaller night and a gentler plan, for CI.
    pub quick: bool,
    /// Kill the loader holding the Nth lease grant (1-based) mid-file.
    pub loader_kill_at: Option<u64>,
    /// Freeze the loader holding the Nth lease grant (1-based) past its
    /// TTL, then let it wake as a zombie and flush under its stale epoch.
    pub loader_stall_at: Option<u64>,
    /// Lease TTL for the soak's fleet — short, so reclaims happen on a
    /// test timescale rather than the production default.
    #[serde(with = "ser_duration")]
    pub lease_ttl: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 2005,
            files: 6,
            nodes: 3,
            error_rate: 0.02,
            quick: false,
            loader_kill_at: None,
            loader_stall_at: None,
            lease_ttl: Duration::from_millis(250),
        }
    }
}

impl ChaosConfig {
    /// The fault plan this soak runs under. `with_crash` adds the one
    /// crash-on-flush; the post-recovery generations run without it.
    pub fn fault_plan(&self, with_crash: bool) -> FaultPlanConfig {
        // Rates are per *call*: they must leave clean windows long enough
        // for a whole flush (several batch calls + a commit) to land, or
        // the load cannot make forward progress between faults.
        let mut plan = FaultPlanConfig::new(self.seed)
            .with_resets(0.006)
            .with_busy(0.006)
            .with_latency(0.015, Duration::from_millis(20))
            .with_disk_full(0.06)
            .with_corruption(0.01);
        if with_crash {
            // Far enough in that real work is committed before the crash,
            // early enough that it reliably fires even in quick mode.
            plan = plan.with_crash_on_flush(7);
        }
        if let Some(n) = self.loader_kill_at {
            plan = plan.with_loader_kill_at(n);
        }
        if let Some(n) = self.loader_stall_at {
            plan = plan.with_loader_stall_at(n);
        }
        plan
    }

    /// The loader configuration the soak drives: per-flush commits so the
    /// journal advances under fire, and a retry policy whose call-timeout
    /// budget is tighter than the plan's latency spike (so spikes surface
    /// as timeouts and exercise that path too).
    pub fn loader(&self) -> LoaderConfig {
        LoaderConfig::test()
            .with_array_size(300)
            .with_commit_policy(CommitPolicy::PerFlush)
            .with_retry(
                RetryPolicy::default()
                    .with_seed(self.seed)
                    .with_call_timeout(Duration::from_millis(10)),
            )
            .with_fleet(
                crate::fleet::FleetPolicy::default()
                    .with_lease_ttl(self.lease_ttl)
                    .with_heartbeat_interval((self.lease_ttl / 4).max(Duration::from_millis(1))),
            )
    }

    fn gen_config(&self) -> GenConfig {
        let files = if self.quick {
            self.files.min(4)
        } else {
            self.files
        };
        GenConfig::night(self.seed, 100)
            .with_files(files.max(1))
            .with_error_rate(self.error_rate)
    }
}

/// What a soak observed, and the exactly-once verdict.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosReport {
    /// The configuration the soak ran with.
    pub config: ChaosConfig,
    /// Load generations executed (1 = no crash, no stragglers).
    pub generations: usize,
    /// Crash/recover cycles survived.
    pub restarts: usize,
    /// Faults injected per kind, accumulated across server generations.
    pub faults_by_kind: BTreeMap<String, u64>,
    /// Client-side retry attempts across all generations.
    pub retries: u64,
    /// Circuit-breaker trips across all generations.
    pub breaker_trips: u64,
    /// Loader processes killed mid-file by the fault plan.
    pub loader_kills: u64,
    /// Loader processes frozen past their lease TTL by the fault plan.
    pub loader_stalls: u64,
    /// Expired leases the supervisor reclaimed and reassigned.
    pub lease_reclaims: u64,
    /// Stale-epoch flushes the database fenced out before anything applied.
    pub fencing_rejections: u64,
    /// Wall-clock time the fleet spent below full batch mode.
    #[serde(with = "ser_duration")]
    pub degraded_time: Duration,
    /// Every degradation-ladder move, in order, across generations.
    pub degrade_transitions: Vec<DegradeTransition>,
    /// Rows the repository should hold, per table.
    pub expected_rows: u64,
    /// Rows the repository holds after the soak.
    pub actual_rows: u64,
    /// Rows expected but missing (must be 0).
    pub lost_rows: u64,
    /// Rows present more than once (must be 0).
    pub duplicated_rows: u64,
    /// Per-table mismatches, if any (empty on success).
    pub mismatches: Vec<String>,
    /// Files that never loaded (empty on success).
    pub unfinished_files: Vec<String>,
}

impl ChaosReport {
    /// Did every loadable row land exactly once?
    pub fn exactly_once(&self) -> bool {
        self.lost_rows == 0 && self.duplicated_rows == 0 && self.unfinished_files.is_empty()
    }

    /// Distinct fault kinds that actually fired.
    pub fn fault_kinds_fired(&self) -> usize {
        self.faults_by_kind.values().filter(|&&n| n > 0).count()
    }
}

fn fresh_server(obs_id: i64, obs: Arc<skyobs::Registry>) -> Result<Arc<Server>, String> {
    let server = Server::start_with_obs(DbConfig::test(), obs);
    skycat::create_all(server.engine()).map_err(|e| e.to_string())?;
    skycat::seed_static(server.engine()).map_err(|e| e.to_string())?;
    skycat::seed_observation(server.engine(), 1, obs_id).map_err(|e| e.to_string())?;
    Ok(server)
}

/// Run one chaos soak to completion.
///
/// Loads a synthetic night under the seeded fault plan, recovering the
/// server from its durable log whenever a crash-on-flush downs it, and
/// retrying failed files across bounded generations. Never panics on
/// fault-induced failures; the verdict lands in the report.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    run_chaos_with_obs(cfg, &Arc::new(skyobs::Registry::new()))
}

/// [`run_chaos`], observed through a caller-supplied telemetry registry.
///
/// One registry spans every server generation: the coordinator hands the
/// same [`skyobs::Registry`] to the initial server and to each recovered
/// one, so fault and loader counters accumulate across crash/recover
/// cycles with no per-generation banking. The report's totals are a view
/// over the registry's final snapshot (delta since entry), which is what
/// makes a `--metrics` JSONL dump agree with the report exactly.
pub fn run_chaos_with_obs(
    cfg: &ChaosConfig,
    obs: &Arc<skyobs::Registry>,
) -> Result<ChaosReport, String> {
    let files = generate_observation(&cfg.gen_config());
    let expected = aggregate_expected(&files);
    let loader = cfg.loader();
    loader.validate()?;
    let journal = LoadJournal::new();
    let baseline = obs.snapshot();

    let mut server = fresh_server(100, obs.clone())?;
    server.set_fault_plan(Some(FaultPlan::new(cfg.fault_plan(true))));

    let mut degrade_transitions = Vec::new();
    let mut generations = 0usize;
    let mut restarts = 0usize;
    let mut remaining: Vec<CatalogFile> = files.clone();

    while !remaining.is_empty() && generations < MAX_GENERATIONS {
        generations += 1;
        let night = crate::parallel::load_night_with_journal(
            &server,
            &remaining,
            &loader,
            cfg.nodes,
            AssignmentPolicy::Dynamic,
            Some(&journal),
        )
        .map_err(|e| e.to_string())?;
        degrade_transitions.extend(night.degrade_transitions.iter().cloned());
        let done: BTreeSet<&str> = night.files.iter().map(|f| f.file.as_str()).collect();
        remaining.retain(|f| !done.contains(f.name.as_str()));
        if remaining.is_empty() {
            break;
        }
        if server.is_crashed() {
            // Recover from the durable log. The replacement engine keeps
            // its own private registry (replaying the log must not double
            // the coordinator's counters) while the server rejoins the
            // shared one, so fault counters keep accumulating in place.
            restarts += 1;
            if restarts > MAX_RESTARTS {
                break;
            }
            let log = server.engine().durable_log();
            let engine = Engine::recover_from_log(DbConfig::test(), skycat::build_schemas(), &log)
                .map_err(|e| format!("recovery failed: {e}"))?;
            server = Server::with_engine_and_obs(engine, obs.clone());
            server.set_fault_plan(Some(FaultPlan::new(cfg.fault_plan(false))));
        }
        // Not crashed: some files exhausted their budgets. The journal
        // kept their progress; the next generation retries them.
    }
    let delta = server.obs_snapshot().since(&baseline);

    // The verdict: count every table against the generator's ground truth.
    server.set_fault_plan(None);
    let mut lost = 0u64;
    let mut duplicated = 0u64;
    let mut actual_rows = 0u64;
    let mut mismatches = Vec::new();
    for (table, expect) in &expected.loadable {
        let tid = server.engine().table_id(table).map_err(|e| e.to_string())?;
        let got = server.engine().row_count(tid);
        actual_rows += got;
        if got < *expect {
            lost += expect - got;
            mismatches.push(format!("{table}: expected {expect}, got {got} (lost)"));
        } else if got > *expect {
            duplicated += got - expect;
            mismatches.push(format!(
                "{table}: expected {expect}, got {got} (duplicated)"
            ));
        }
    }

    Ok(ChaosReport {
        config: cfg.clone(),
        generations,
        restarts,
        faults_by_kind: delta.with_prefix("server.faults."),
        retries: delta.counter("retries"),
        breaker_trips: delta.counter("breaker_trips"),
        loader_kills: delta.counter("loader_kills"),
        loader_stalls: delta.counter("loader_stalls"),
        lease_reclaims: delta.counter("fleet.reclaims"),
        fencing_rejections: delta.counter("fleet.fence_rejections"),
        degraded_time: Duration::from_micros(delta.counter("degrade.time_us")),
        degrade_transitions,
        expected_rows: expected.total_loadable(),
        actual_rows,
        lost_rows: lost,
        duplicated_rows: duplicated,
        mismatches,
        unfinished_files: remaining.into_iter().map(|f| f.name).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_soak_delivers_exactly_once() {
        let cfg = ChaosConfig {
            seed: 11,
            files: 4,
            nodes: 2,
            quick: true,
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg).unwrap();
        assert!(
            report.exactly_once(),
            "lost={} dup={} unfinished={:?} mismatches={:?}",
            report.lost_rows,
            report.duplicated_rows,
            report.unfinished_files,
            report.mismatches
        );
        assert!(report.restarts >= 1, "the crash-on-flush never fired");
        assert!(
            report.fault_kinds_fired() >= 4,
            "only {:?} fired",
            report.faults_by_kind
        );
    }

    #[test]
    fn loader_kill_and_zombie_soak_stays_exactly_once() {
        // A loader killed on the first grant and another frozen into a
        // zombie on the second, on top of the usual connection weather:
        // the supervisor must reclaim both leases and the zombie's stale
        // flush must be fenced — with every loadable row landing once.
        let cfg = ChaosConfig {
            seed: 77,
            files: 4,
            nodes: 2,
            quick: true,
            loader_kill_at: Some(1),
            loader_stall_at: Some(2),
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg).unwrap();
        assert!(
            report.exactly_once(),
            "lost={} dup={} unfinished={:?} mismatches={:?}",
            report.lost_rows,
            report.duplicated_rows,
            report.unfinished_files,
            report.mismatches
        );
        assert!(report.loader_kills >= 1, "the loader kill never fired");
        assert!(report.loader_stalls >= 1, "the loader stall never fired");
        assert!(
            report.lease_reclaims >= 2,
            "expected both faulted leases reclaimed, got {}",
            report.lease_reclaims
        );
        assert!(
            report.fencing_rejections >= 1,
            "the zombie's stale flush was never fenced"
        );
    }

    #[test]
    fn same_seed_reproduces_the_fault_schedule() {
        // Single-node runs are fully deterministic: two soaks with one
        // seed must observe the identical fault counters.
        let cfg = ChaosConfig {
            seed: 29,
            files: 3,
            nodes: 1,
            quick: true,
            ..ChaosConfig::default()
        };
        let a = run_chaos(&cfg).unwrap();
        let b = run_chaos(&cfg).unwrap();
        assert_eq!(a.faults_by_kind, b.faults_by_kind);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.generations, b.generations);
        assert_eq!(a.restarts, b.restarts);
        assert!(a.exactly_once() && b.exactly_once());
    }
}
