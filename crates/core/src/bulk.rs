//! The `bulk-loading` algorithm (paper Fig. 3) and the non-bulk baseline.
//!
//! The loader reads a catalog file line by line, parses / validates /
//! transforms / computes each row (§3), and buffers it into the
//! [`ArraySet`]. When any array fills (or the memory high-water mark is
//! hit), the set is sealed and a **bulk-loading cycle** flushes every array
//! in parent-before-child order (paper Fig. 2), each as a sequence of
//! `batch-size` batched inserts via the internal `batch_rows` — which
//! implements Fig. 3's `batch_row` recovery exactly: on a batch error, rows
//! before the failing offset have persisted (JDBC semantics), the failing
//! row is skipped and logged, and loading resumes at the row after it.
//!
//! The same driver also implements the Fig. 4 baseline ([`ExecMode::
//! Singleton`]): identical parsing, buffering and ordering, but one
//! database call per row.
//!
//! # Pipelined (double-buffered) loading
//!
//! With [`PipelineMode::Double`] the two halves run on separate threads:
//! the parse side fills one array-set while a dedicated flusher drains the
//! previously sealed one. Both modes drive the *same* [`FlushWorker`]
//! drain loop, so the wire-call sequence — batches, error recovery,
//! commits, journal checkpoints — is identical by construction; only the
//! overlap differs. Handoff is a rendezvous channel: the parser blocks at
//! each seal until the flusher has finished the previous set, which bounds
//! residency at exactly two array-sets (the paper's client heap budget is
//! sized for one, so pipelined loads trade paging headroom for overlap).
//! Each mode reports per-stage modeled times and a modeled makespan:
//! serial chains parse + flush + paging; double combines the per-cycle
//! stage times under the pipeline's handoff discipline
//! ([`pipeline_makespan`]).

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use skycat::format::parse_line;
use skycat::transform::transform;
use skycat::CatalogFile;
use skydb::error::{DbError, DbResult};
use skydb::server::{PreparedInsert, Session};
use skydb::value::Row;
use skysim::mem::MemoryModel;
use skysim::time::Waiter;

use crate::arrayset::{ArraySet, SealedArraySet};
use crate::config::{CommitPolicy, ExecMode, LoaderConfig, PipelineMode};
use crate::recovery::LoadJournal;
use crate::report::{FileReport, ModeledCost, SkipKind};

/// Load one in-memory catalog file through a session.
pub fn load_catalog_file(
    session: &Session,
    cfg: &LoaderConfig,
    file: &CatalogFile,
) -> DbResult<FileReport> {
    load_catalog_text(session, cfg, &file.name, &file.text)
}

/// Load catalog text through a session.
pub fn load_catalog_text(
    session: &Session,
    cfg: &LoaderConfig,
    name: &str,
    text: &str,
) -> DbResult<FileReport> {
    Loader::new(session, cfg, name)?.run(text, None)
}

/// Load catalog text with checkpoint/resume support: previously committed
/// lines (per the journal) are skipped, and the journal is updated at every
/// commit so a crashed load can resume where it left off.
pub fn load_catalog_text_with_journal(
    session: &Session,
    cfg: &LoaderConfig,
    name: &str,
    text: &str,
    journal: &LoadJournal,
) -> DbResult<FileReport> {
    Loader::new(session, cfg, name)?.run(text, Some(journal))
}

struct Loader<'a> {
    session: &'a Session,
    cfg: &'a LoaderConfig,
    /// Prepared statements, parallel to the array-set's table order.
    stmts: Vec<PreparedInsert>,
    arrays: ArraySet,
    report: FileReport,
    batches_since_commit: u64,
}

impl<'a> Loader<'a> {
    fn new(session: &'a Session, cfg: &'a LoaderConfig, name: &str) -> DbResult<Loader<'a>> {
        cfg.validate()
            .map_err(skydb::error::DbError::InvalidSchema)?;
        // Flush order is parent-before-child; CATALOG_TABLES is declared in
        // the data model's topological order ("this processing sequence
        // depends entirely on the data model", §4.2).
        let tables: Vec<String> = skycat::CATALOG_TABLES
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        // Prepared statements may target shadow tables (campaign loads set
        // `table_suffix`); everything else — parse, array-set bookkeeping,
        // reports — keeps the logical table names.
        let stmts = tables
            .iter()
            .map(|t| session.prepare_insert(&format!("{t}{}", cfg.table_suffix)))
            .collect::<DbResult<Vec<_>>>()?;
        let scale = session.server().engine().scale();
        let mem = MemoryModel::new(
            cfg.client_heap_budget,
            4096,
            cfg.client_fault_penalty,
            scale,
        );
        let arrays = ArraySet::new(&tables, cfg, mem);
        let report = FileReport {
            file: name.to_owned(),
            ..FileReport::default()
        };
        Ok(Loader {
            session,
            cfg,
            stmts,
            arrays,
            report,
            batches_since_commit: 0,
        })
    }

    fn run(self, text: &str, journal: Option<&LoadJournal>) -> DbResult<FileReport> {
        let start = Instant::now();
        let Loader {
            session,
            cfg,
            stmts,
            arrays,
            mut report,
            batches_since_commit,
        } = self;
        let resume_at = journal
            .map(|j| j.committed_lines(&report.file))
            .unwrap_or(0);
        report.lines_resumed = resume_at;
        let file = report.file.clone();
        let report = Mutex::new(report);
        let scale = session.server().engine().scale();

        let mut parse = ParseSide {
            cfg,
            arrays,
            report: &report,
            waiter: Waiter::new(scale),
            obs: session.server().obs().clone(),
            file: &file,
            parse_spans: Vec::new(),
            lines_in_segment: 0,
            bytes_read: 0,
            current_line: 0,
        };
        let worker = FlushWorker {
            session,
            cfg,
            stmts: &stmts,
            journal,
            file: &file,
            report: &report,
            batches_since_commit,
            flush_spans: Vec::new(),
        };

        let mut worker = match cfg.pipeline {
            PipelineMode::Off => {
                let mut worker = worker;
                parse.consume(text, resume_at, |set, lines_through| {
                    worker.flush_set(set, lines_through)
                })?;
                worker
            }
            PipelineMode::Double => run_double(&mut parse, worker, text, resume_at)?,
        };

        // End-of-file commit — strictly after the pipeline has drained, so
        // its cost is a serial tail in both modes.
        let commit_base = ModeledCost::measure(session.server(), Duration::ZERO);
        worker.commit(parse.current_line)?;
        let commit_cost = ModeledCost::measure(session.server(), Duration::ZERO).since(commit_base);
        session.server().obs().span(
            "commit",
            file.as_str(),
            commit_base.total().as_micros() as u64,
            commit_cost.total().as_micros() as u64,
            "ok",
        );
        worker.flush_spans.push(commit_cost.total());

        let parse_spans = std::mem::take(&mut parse.parse_spans);
        let flush_spans = std::mem::take(&mut worker.flush_spans);
        let stage_parse: Duration = parse_spans.iter().sum();
        let stage_flush: Duration = flush_spans.iter().sum();
        let client_paging = parse.arrays.memory().modeled_time();
        let client_faults = parse.arrays.memory().faults();
        let cycles = parse.arrays.cycles();
        let bytes_read = parse.bytes_read;
        let chained = stage_parse + stage_flush + client_paging;
        let makespan = match cfg.pipeline {
            PipelineMode::Off => chained,
            PipelineMode::Double => pipeline_makespan(&parse_spans, &flush_spans) + client_paging,
        };
        drop(worker);
        drop(parse);

        let mut report = report.into_inner();
        report.bytes_read += bytes_read;
        report.cycles = cycles;
        report.elapsed = start.elapsed();
        report.client_paging = client_paging;
        report.client_faults = client_faults;
        report.stage_parse = stage_parse;
        report.stage_flush = stage_flush;
        report.modeled_makespan = makespan;
        report.stage_overlap = chained.saturating_sub(makespan);
        Ok(report)
    }

    /// Test-visible shim over the flush worker's Fig. 3 recovery loop.
    #[cfg(test)]
    fn batch_rows(&mut self, idx: usize, rows: &[Row]) -> DbResult<()> {
        let table = self.arrays.table_at(idx).to_owned();
        let report = Mutex::new(std::mem::take(&mut self.report));
        let mut worker = FlushWorker {
            session: self.session,
            cfg: self.cfg,
            stmts: &self.stmts,
            journal: None,
            file: "",
            report: &report,
            batches_since_commit: self.batches_since_commit,
            flush_spans: Vec::new(),
        };
        let res = worker.batch_rows_inner(idx, &table, rows);
        self.batches_since_commit = worker.batches_since_commit;
        self.report = report.into_inner();
        res
    }
}

/// The parse half of the loader: reads lines, buffers typed rows, and at
/// every flush trigger seals the live array-set and hands it to a sink —
/// the flush worker directly (serial) or a channel send (pipelined).
struct ParseSide<'a> {
    cfg: &'a LoaderConfig,
    arrays: ArraySet,
    report: &'a Mutex<FileReport>,
    waiter: Waiter,
    /// Telemetry sink for per-segment `parse` spans.
    obs: Arc<skyobs::Registry>,
    /// File name, carried as the span attribute.
    file: &'a str,
    /// Modeled parse time per sealed segment (`p_i`), plus at most one
    /// trailing segment for lines after the last seal.
    parse_spans: Vec<Duration>,
    lines_in_segment: u64,
    bytes_read: u64,
    /// Line number one past the last line consumed.
    current_line: u64,
}

impl ParseSide<'_> {
    fn consume(
        &mut self,
        text: &str,
        resume_at: u64,
        mut sink: impl FnMut(SealedArraySet, u64) -> DbResult<()>,
    ) -> DbResult<()> {
        for (line_no, line) in text.lines().enumerate() {
            let line_no = line_no as u64;
            if line_no < resume_at {
                continue; // already committed by a previous run
            }
            // Any commit caused by this iteration happens only after this
            // line's row is buffered and its set sealed — the line is
            // consumed, so line_no + 1 is the safe resume point the sealed
            // set carries to the flusher.
            self.current_line = line_no + 1;
            self.lines_in_segment += 1;
            self.bytes_read += line.len() as u64 + 1;
            let rec = match parse_line(line) {
                Ok(rec) => rec,
                Err(e) => {
                    self.report.lock().note_skipped(
                        self.cfg.max_skip_details,
                        "?",
                        Some(line_no),
                        SkipKind::Parse,
                        e.to_string(),
                    );
                    continue;
                }
            };
            let (table, row) = match transform(&rec) {
                Ok(x) => x,
                Err(e) => {
                    self.report.lock().note_skipped(
                        self.cfg.max_skip_details,
                        rec.tag.table_name(),
                        Some(line_no),
                        SkipKind::Transform,
                        e.to_string(),
                    );
                    continue;
                }
            };
            let idx = self
                .arrays
                .index_of(table)
                .expect("transform only emits catalog tables");
            if self.arrays.push(idx, row) {
                self.charge_segment();
                sink(self.arrays.seal(), self.current_line)?;
            }
        }

        // Final partial cycle: charge the tail parse segment, then seal
        // whatever is still buffered.
        self.current_line = text.lines().count() as u64;
        self.charge_segment();
        if !self.arrays.is_empty() {
            sink(self.arrays.seal(), self.current_line)?;
        }
        Ok(())
    }

    /// Close the current parse segment: record its modeled time
    /// (`lines × client_parse_cost`) and wait it out at the engine's time
    /// scale, so wall-clock pipelined runs overlap for real too.
    fn charge_segment(&mut self) {
        if self.lines_in_segment == 0 {
            return;
        }
        let p = self.cfg.client_parse_cost * self.lines_in_segment as u32;
        self.lines_in_segment = 0;
        // Span timeline lives on the parse side's own modeled clock: the
        // segment starts where the previous segments ended.
        let start: Duration = self.parse_spans.iter().sum();
        self.obs.span(
            "parse",
            self.file,
            start.as_micros() as u64,
            p.as_micros() as u64,
            "ok",
        );
        self.parse_spans.push(p);
        self.waiter.wait(p);
    }
}

/// The flush half of the loader: drains sealed array-sets through the wire
/// protocol in parent-before-child order, with Fig. 3's batch-error
/// recovery and the configured commit policy. Serial and pipelined modes
/// both run this exact drain loop, so their call sequences are identical.
struct FlushWorker<'a> {
    session: &'a Session,
    cfg: &'a LoaderConfig,
    stmts: &'a [PreparedInsert],
    journal: Option<&'a LoadJournal>,
    file: &'a str,
    report: &'a Mutex<FileReport>,
    batches_since_commit: u64,
    /// Modeled flush time per drained set (`f_i`), measured as the delta of
    /// the server's monotonic cost counters around each job (exact for a
    /// single-node load; concurrent loaders' charges bleed in otherwise).
    flush_spans: Vec<Duration>,
}

impl FlushWorker<'_> {
    /// One bulk-loading cycle: flush every array in parent-before-child
    /// order, then commit per policy. `lines_through` is the parse
    /// position this set was sealed at — the safe journal checkpoint once
    /// its rows are committed.
    fn flush_set(&mut self, mut set: SealedArraySet, lines_through: u64) -> DbResult<()> {
        let baseline = ModeledCost::measure(self.session.server(), Duration::ZERO);
        for idx in 0..set.table_count() {
            let rows = set.take(idx);
            if rows.is_empty() {
                continue;
            }
            let table = set.table_at(idx).to_owned();
            match self.cfg.mode {
                ExecMode::Bulk => self.batch_rows_inner(idx, &table, &rows)?,
                ExecMode::Singleton => self.singleton_rows(idx, &table, &rows)?,
            }
        }
        if self.cfg.commit_policy == CommitPolicy::PerFlush {
            self.commit(lines_through)?;
        }
        let cost = ModeledCost::measure(self.session.server(), Duration::ZERO).since(baseline);
        // One `flush` span per bulk-loading cycle, on the server's modeled
        // cost clock: start is the pre-drain total, duration the delta.
        self.session.server().obs().span(
            "flush",
            self.file,
            baseline.total().as_micros() as u64,
            cost.total().as_micros() as u64,
            "ok",
        );
        self.flush_spans.push(cost.total());
        Ok(())
    }

    /// Fig. 3 `batch_row`: pack `batch-size` chunks, insert, skip exactly
    /// the failing row on error, resume at the row after it.
    fn batch_rows_inner(&mut self, idx: usize, table: &str, rows: &[Row]) -> DbResult<()> {
        let stmt = self.stmts[idx];
        let mut first = 0usize;
        while first < rows.len() {
            let end = (first + self.cfg.batch_size).min(rows.len());
            let outcome = self.session.execute_batch(&stmt, &rows[first..end])?;
            let mut report = self.report.lock();
            report.batch_calls += 1;
            self.batches_since_commit += 1;
            if outcome.applied > 0 {
                report.note_loaded(table, outcome.applied as u64);
            }
            match outcome.failed {
                None => first = end,
                Some((offset, err)) => {
                    // Only *permanent* row errors (constraint and type
                    // violations — proven bad data) are skippable. A
                    // transient failure at a row — e.g. a write conflict
                    // with a still-open transaction that may yet roll
                    // back — must abort the flush and reach the retry
                    // layer, exactly as on the singleton path: skipping
                    // it would record the row as handled in the journal
                    // while it may never exist anywhere.
                    if !matches!(
                        crate::resilience::classify(&err),
                        crate::resilience::ErrorClass::Permanent
                    ) {
                        drop(report);
                        return Err(err);
                    }
                    let failed_idx = first + offset;
                    report.note_skipped(
                        self.cfg.max_skip_details,
                        table,
                        None,
                        SkipKind::from_db_error(&err),
                        format!("row {} of flushed array: {err}", failed_idx),
                    );
                    // skip_one_row; continue from the next index.
                    first = failed_idx + 1;
                }
            }
            drop(report);
            if let CommitPolicy::EveryBatches(n) = self.cfg.commit_policy {
                if self.batches_since_commit >= n {
                    self.commit_without_journal()?;
                }
            }
        }
        Ok(())
    }

    /// The non-bulk baseline: one database call per row.
    fn singleton_rows(&mut self, idx: usize, table: &str, rows: &[Row]) -> DbResult<()> {
        let stmt = self.stmts[idx];
        for row in rows {
            self.report.lock().single_calls += 1;
            match self.session.execute(&stmt, row.clone()) {
                Ok(()) => self.report.lock().note_loaded(table, 1),
                Err(e) => {
                    // Connection-level failures abort (transient ones are
                    // the retry layer's job); row-level errors skip.
                    if !matches!(
                        crate::resilience::classify(&e),
                        crate::resilience::ErrorClass::Permanent
                    ) {
                        return Err(e);
                    }
                    self.report.lock().note_skipped(
                        self.cfg.max_skip_details,
                        table,
                        None,
                        SkipKind::from_db_error(&e),
                        e.to_string(),
                    );
                }
            }
        }
        Ok(())
    }

    /// Commit and, at cycle boundaries, checkpoint the journal: every line
    /// up to `lines_through` is either loaded or skipped, so it is a safe
    /// resume point.
    fn commit(&mut self, lines_through: u64) -> DbResult<()> {
        self.session.commit()?;
        self.report.lock().commits += 1;
        self.batches_since_commit = 0;
        if let Some(j) = self.journal {
            j.record(self.file, lines_through);
        }
        Ok(())
    }

    /// Mid-cycle commit (`EveryBatches`): rows are durable, but buffered
    /// arrays mean the parse position is NOT a safe resume point — the
    /// journal is deliberately not advanced.
    fn commit_without_journal(&mut self) -> DbResult<()> {
        self.session.commit()?;
        self.report.lock().commits += 1;
        self.batches_since_commit = 0;
        Ok(())
    }
}

/// Run the double-buffered pipeline: the flush worker moves to a dedicated
/// thread and sealed sets are handed over a rendezvous channel, so at most
/// two array-sets are ever resident (the one being filled and the one being
/// drained). On a flusher error the channel drops, the parser stops at its
/// next seal, and the flusher's error — the root cause — is propagated.
fn run_double<'a>(
    parse: &mut ParseSide<'_>,
    worker: FlushWorker<'a>,
    text: &str,
    resume_at: u64,
) -> DbResult<FlushWorker<'a>> {
    let (tx, rx) = mpsc::sync_channel::<(SealedArraySet, u64)>(0);
    thread::scope(|s| {
        let flusher = s.spawn(move || -> DbResult<FlushWorker<'a>> {
            let mut worker = worker;
            while let Ok((set, lines_through)) = rx.recv() {
                worker.flush_set(set, lines_through)?;
            }
            Ok(worker)
        });
        let parse_result = parse.consume(text, resume_at, |set, lines_through| {
            tx.send((set, lines_through))
                .map_err(|_| DbError::Protocol("pipelined flusher stopped".into()))
        });
        drop(tx);
        match flusher.join().expect("flusher thread panicked") {
            Err(e) => Err(e),
            Ok(worker) => parse_result.map(|()| worker),
        }
    })
}

/// Combine per-segment parse times and per-job flush times under the
/// double-buffered pipeline's handoff discipline: flush `i` starts when
/// both segment `i` is parsed and flush `i − 1` is done.
///
/// `parse` may carry one extra trailing segment (lines after the last
/// seal) and `flush` one trailing end-of-file commit; both degenerate to
/// (partially overlapped) serial tails.
fn pipeline_makespan(parse: &[Duration], flush: &[Duration]) -> Duration {
    let mut handoff = Duration::ZERO; // the parser's clock after each seal
    let mut flush_end = Duration::ZERO; // the flusher's clock
    for (i, f) in flush.iter().enumerate() {
        let parsed = handoff + parse.get(i).copied().unwrap_or_default();
        handoff = parsed.max(flush_end);
        flush_end = handoff + *f;
    }
    let mut parser_tail = handoff;
    for p in parse.iter().skip(flush.len()) {
        parser_tail += *p;
    }
    flush_end.max(parser_tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycat::gen::{generate_file, GenConfig};
    use skydb::config::DbConfig;
    use skydb::server::Server;
    use std::sync::Arc;

    fn fresh_server() -> Arc<Server> {
        let server = Server::start(DbConfig::test());
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        server
    }

    /// A server with the paper's (nonzero) modeled costs at `TimeScale::
    /// ZERO`: instant wall-clock, but flush spans accrue real model time —
    /// needed by the stage-timing tests.
    fn paper_cost_server() -> Arc<Server> {
        let server = Server::start(DbConfig::paper(skysim::time::TimeScale::ZERO));
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        server
    }

    #[test]
    fn clean_file_loads_exactly() {
        let server = fresh_server();
        let session = server.connect();
        let file = generate_file(&GenConfig::small(42, 100), 0);
        let report = load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();
        assert_eq!(report.rows_skipped, 0);
        assert_eq!(report.rows_loaded, file.expected.total_loadable());
        for (table, expect) in &file.expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(
                server.engine().row_count(tid),
                *expect,
                "row count mismatch for {table}"
            );
        }
        assert!(report.commits >= 1);
        assert!(report.batch_calls > 0);
        assert_eq!(report.single_calls, 0);
    }

    #[test]
    fn dirty_file_skips_exactly_the_corrupted_cascade() {
        let server = fresh_server();
        let session = server.connect();
        let file = generate_file(&GenConfig::night(7, 100).with_error_rate(0.08), 0);
        assert!(file.expected.corrupted_objects > 0);
        let report = load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();
        // Loaded rows must match the generator's exact expectation.
        for (table, expect) in &file.expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(
                server.engine().row_count(tid),
                *expect,
                "row count mismatch for {table}"
            );
        }
        assert_eq!(report.rows_loaded, file.expected.total_loadable());
        assert_eq!(
            report.rows_skipped,
            file.expected.total_emitted() - file.expected.total_loadable()
        );
        // Malformed lines were skipped at parse time.
        assert_eq!(
            report.skipped_by_kind.get("parse").copied().unwrap_or(0),
            file.expected.malformed_lines
        );
        // And the error mix includes database-detected kinds.
        assert!(report.skipped_by_kind.contains_key("foreign_key"));
    }

    #[test]
    fn singleton_mode_matches_bulk_results_with_more_calls() {
        let file = generate_file(&GenConfig::small(5, 100).with_error_rate(0.05), 0);

        let bulk_server = fresh_server();
        let bulk = load_catalog_file(&bulk_server.connect(), &LoaderConfig::test(), &file).unwrap();

        let single_server = fresh_server();
        let single =
            load_catalog_file(&single_server.connect(), &LoaderConfig::non_bulk(), &file).unwrap();

        assert_eq!(bulk.rows_loaded, single.rows_loaded);
        assert_eq!(bulk.rows_skipped, single.rows_skipped);
        assert_eq!(single.batch_calls, 0);
        assert!(
            single.single_calls > bulk.batch_calls * 10,
            "singleton {} calls vs bulk {} batches",
            single.single_calls,
            bulk.batch_calls
        );
    }

    #[test]
    fn best_case_call_count_is_rows_over_batch_size() {
        // §4.2: "In the best case … the algorithm will generate
        // N/batch-size database calls."
        let server = fresh_server();
        let session = server.connect();
        let cfg = LoaderConfig::test()
            .with_batch_size(40)
            .with_array_size(400);
        let file = generate_file(&GenConfig::small(9, 100), 0);
        let report = load_catalog_file(&session, &cfg, &file).unwrap();
        let n = report.rows_loaded;
        let ideal = n.div_ceil(40);
        // Partial batches at array boundaries add calls; stay within 2× of
        // ideal and well below N.
        assert!(report.batch_calls >= ideal);
        assert!(
            report.batch_calls < ideal * 2 + 64,
            "calls {} vs ideal {ideal}",
            report.batch_calls
        );
        assert!(report.batch_calls < n / 10);
    }

    #[test]
    fn smaller_arrays_mean_more_cycles_and_calls() {
        let file = generate_file(&GenConfig::night(3, 100), 0);
        let run = |array: usize| {
            let server = fresh_server();
            let session = server.connect();
            let cfg = LoaderConfig::test()
                .with_array_size(array)
                .with_batch_size(40);
            load_catalog_file(&session, &cfg, &file).unwrap()
        };
        let small = run(100);
        let large = run(2000);
        assert_eq!(small.rows_loaded, large.rows_loaded);
        assert!(small.cycles > large.cycles);
        assert!(
            small.batch_calls > large.batch_calls,
            "small arrays {} calls should exceed large arrays {}",
            small.batch_calls,
            large.batch_calls
        );
    }

    #[test]
    fn commit_policies_commit_at_different_rates() {
        let file = generate_file(&GenConfig::small(11, 100), 0);
        let run = |policy: CommitPolicy| {
            let server = fresh_server();
            let session = server.connect();
            let cfg = LoaderConfig::test()
                .with_array_size(200)
                .with_commit_policy(policy);
            (
                load_catalog_file(&session, &cfg, &file).unwrap(),
                server.engine().stats().snapshot().commits,
            )
        };
        let (per_file, c1) = run(CommitPolicy::PerFile);
        let (per_flush, c2) = run(CommitPolicy::PerFlush);
        let (per_batch, c3) = run(CommitPolicy::EveryBatches(1));
        assert_eq!(per_file.commits, 1);
        assert!(per_flush.commits > per_file.commits);
        assert!(per_batch.commits > per_flush.commits);
        assert!(c1 < c2 && c2 < c3);
        // All load the same rows regardless of commit cadence.
        assert_eq!(per_file.rows_loaded, per_flush.rows_loaded);
        assert_eq!(per_file.rows_loaded, per_batch.rows_loaded);
    }

    #[test]
    fn paper_example_one_error_recovery_shape() {
        // Example 1 in §4.2: batch of 40, an error at array row 45 (0-based
        // 44) ⇒ batches are rows 0..40, 40..44 fail at offset 4, then
        // resume at row 45: 45..85, 85..125, …
        let server = fresh_server();
        let session = server.connect();
        // Build a frames parent + objects with a dup at position 44.
        let fstmt = session.prepare_insert("ccd_frames").unwrap();
        let istmt = session.prepare_insert("ccd_images").unwrap();
        let cstmt = session.prepare_insert("ccd_columns").unwrap();
        use skydb::value::Value;
        session
            .execute(
                &cstmt,
                vec![
                    Value::Int(900_000),
                    Value::Int(100),
                    Value::Int(1),
                    Value::Int(0),
                    Value::Float(0.0),
                    Value::Float(1.0),
                    Value::Float(0.0),
                    Value::Float(1.0),
                ],
            )
            .unwrap();
        session
            .execute(
                &istmt,
                vec![
                    Value::Int(900_001),
                    Value::Int(900_000),
                    Value::Int(0),
                    Value::Float(53000.0),
                    Value::Float(140.0),
                    Value::Float(2.5),
                    Value::Float(11.0),
                ],
            )
            .unwrap();
        session
            .execute(
                &fstmt,
                vec![
                    Value::Int(900_002),
                    Value::Int(900_001),
                    Value::Int(0),
                    Value::Float(0.0),
                    Value::Float(1.0),
                    Value::Float(0.0),
                    Value::Float(1.0),
                    Value::Null,
                    Value::Null,
                ],
            )
            .unwrap();
        session.commit().unwrap();

        let object = |id: i64| -> Row {
            vec![
                Value::Int(id),
                Value::Int(900_002),
                Value::Float(0.5),
                Value::Float(0.5),
                Value::Int((8i64) << 40),
                Value::Float(0.0),
                Value::Float(0.0),
                Value::Float(18.0),
                Value::Null,
                Value::Float(100.0),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Int(0),
                Value::Float(1.0),
                Value::Float(1.0),
            ]
        };
        let mut rows: Vec<Row> = (0..1000).map(|i| object(1_000_000 + i)).collect();
        rows[44] = object(1_000_000); // duplicate PK at row 45 (1-based)

        let baseline = server.engine().stats().snapshot().batch_calls;
        let cfg = LoaderConfig::test().with_batch_size(40);
        let mut loader = Loader::new(&session, &cfg, "example1").unwrap();
        loader.batch_rows(8, &rows).unwrap(); // index 8 = objects
        let report = loader.report;
        assert_eq!(report.rows_loaded, 999);
        assert_eq!(report.rows_skipped, 1);
        // Call count: 1000 rows in batches of 40 with one mid-array error:
        // 0..40, 40..44(fail), 45..85, …, i.e. ceil(999/40)+1 = 26 calls.
        let calls = server.engine().stats().snapshot().batch_calls - baseline;
        assert_eq!(calls, 26);
        session.commit().unwrap();
    }

    #[test]
    fn invalid_config_rejected_before_work() {
        let server = fresh_server();
        let session = server.connect();
        let cfg = LoaderConfig::test().with_batch_size(0);
        let file = generate_file(&GenConfig::small(1, 100), 0);
        assert!(load_catalog_file(&session, &cfg, &file).is_err());
    }

    #[test]
    fn pipeline_makespan_overlaps_stages() {
        let ms = Duration::from_millis;
        // Perfectly balanced, 3 jobs: p₁ + 3f = 40 vs 60 chained.
        assert_eq!(pipeline_makespan(&[ms(10); 3], &[ms(10); 3]), ms(40));
        // Flush-bound: p₁ + Σf = 31.
        assert_eq!(pipeline_makespan(&[ms(1); 3], &[ms(10); 3]), ms(31));
        // Parse-bound: Σp + fₙ = 31.
        assert_eq!(pipeline_makespan(&[ms(10); 3], &[ms(1); 3]), ms(31));
        // A short parse tail hides inside the last flush…
        assert_eq!(pipeline_makespan(&[ms(10), ms(4)], &[ms(10)]), ms(20));
        // …a long one dominates it.
        assert_eq!(pipeline_makespan(&[ms(10), ms(40)], &[ms(10)]), ms(50));
        assert_eq!(pipeline_makespan(&[], &[]), Duration::ZERO);
    }

    #[test]
    fn pipelined_load_matches_serial_results() {
        let file = generate_file(&GenConfig::night(13, 100).with_error_rate(0.05), 0);
        let run = |cfg: &LoaderConfig| {
            let server = paper_cost_server();
            let session = server.connect();
            load_catalog_file(&session, cfg, &file).unwrap()
        };
        let mut base = LoaderConfig::test().with_array_size(300);
        base.client_parse_cost = Duration::from_micros(50);
        let serial = run(&base);
        let piped = run(&base.clone().with_pipeline(PipelineMode::Double));
        // Observationally identical outcome…
        assert_eq!(serial.rows_loaded, piped.rows_loaded);
        assert_eq!(serial.rows_skipped, piped.rows_skipped);
        assert_eq!(serial.loaded_by_table, piped.loaded_by_table);
        assert_eq!(serial.skipped_by_kind, piped.skipped_by_kind);
        assert_eq!(serial.batch_calls, piped.batch_calls);
        assert_eq!(serial.commits, piped.commits);
        assert_eq!(serial.cycles, piped.cycles);
        assert_eq!(serial.bytes_read, piped.bytes_read);
        // …but only the pipelined run overlaps its stages.
        assert!(serial.stage_overlap.is_zero());
        assert!(piped.stage_overlap > Duration::ZERO);
        assert!(piped.modeled_makespan < serial.modeled_makespan);
    }

    #[test]
    fn pipelined_throughput_gain_at_balanced_stages() {
        // The acceptance experiment: calibrate the modeled parse cost to
        // the measured serial flush cost per line, then the double-buffered
        // pipeline must deliver ≥ 20% higher modeled throughput.
        let file = generate_file(&GenConfig::night(21, 100), 0);
        let run = |cfg: &LoaderConfig| {
            let server = paper_cost_server();
            let session = server.connect();
            load_catalog_file(&session, cfg, &file).unwrap()
        };
        let probe = run(&LoaderConfig::test().with_array_size(250));
        let lines = (probe.rows_loaded + probe.rows_skipped).max(1);
        let mut cfg = LoaderConfig::test().with_array_size(250);
        cfg.client_parse_cost = Duration::from_nanos(probe.stage_flush.as_nanos() as u64 / lines);
        let serial = run(&cfg);
        let piped = run(&cfg.clone().with_pipeline(PipelineMode::Double));
        assert_eq!(serial.rows_loaded, piped.rows_loaded);
        assert_eq!(serial.skipped_by_kind, piped.skipped_by_kind);
        let gain = piped.modeled_throughput_mb_per_s() / serial.modeled_throughput_mb_per_s();
        assert!(gain >= 1.2, "pipelined modeled gain {gain:.2}× below 1.2×");
    }
}
