//! The `bulk-loading` algorithm (paper Fig. 3) and the non-bulk baseline.
//!
//! The loader reads a catalog file line by line, parses / validates /
//! transforms / computes each row (§3), and buffers it into the
//! [`ArraySet`]. When any array fills (or the memory high-water mark is
//! hit), a **bulk-loading cycle** flushes every array in parent-before-
//! child order (paper Fig. 2), each as a sequence of `batch-size` batched
//! inserts via the internal `batch_rows` — which implements Fig. 3's `batch_row`
//! recovery exactly: on a batch error, rows before the failing offset have
//! persisted (JDBC semantics), the failing row is skipped and logged, and
//! loading resumes at the row after it.
//!
//! The same driver also implements the Fig. 4 baseline ([`ExecMode::
//! Singleton`]): identical parsing, buffering and ordering, but one
//! database call per row.

use std::time::Instant;

use skycat::format::parse_line;
use skycat::transform::transform;
use skycat::CatalogFile;
use skydb::error::DbResult;
use skydb::server::{PreparedInsert, Session};
use skydb::value::Row;
use skysim::mem::MemoryModel;

use crate::arrayset::ArraySet;
use crate::config::{CommitPolicy, ExecMode, LoaderConfig};
use crate::recovery::LoadJournal;
use crate::report::{FileReport, SkipKind};

/// Load one in-memory catalog file through a session.
pub fn load_catalog_file(
    session: &Session,
    cfg: &LoaderConfig,
    file: &CatalogFile,
) -> DbResult<FileReport> {
    load_catalog_text(session, cfg, &file.name, &file.text)
}

/// Load catalog text through a session.
pub fn load_catalog_text(
    session: &Session,
    cfg: &LoaderConfig,
    name: &str,
    text: &str,
) -> DbResult<FileReport> {
    Loader::new(session, cfg, name)?.run(text, None)
}

/// Load catalog text with checkpoint/resume support: previously committed
/// lines (per the journal) are skipped, and the journal is updated at every
/// commit so a crashed load can resume where it left off.
pub fn load_catalog_text_with_journal(
    session: &Session,
    cfg: &LoaderConfig,
    name: &str,
    text: &str,
    journal: &LoadJournal,
) -> DbResult<FileReport> {
    Loader::new(session, cfg, name)?.run(text, Some(journal))
}

struct Loader<'a> {
    session: &'a Session,
    cfg: &'a LoaderConfig,
    /// Checkpoint journal; every commit records progress here.
    journal: Option<&'a LoadJournal>,
    /// Prepared statements, parallel to the array-set's table order.
    stmts: Vec<PreparedInsert>,
    arrays: ArraySet,
    report: FileReport,
    batches_since_commit: u64,
    /// Line number one past the last line whose rows are all committed.
    committed_lines: u64,
    current_line: u64,
}

impl<'a> Loader<'a> {
    fn new(session: &'a Session, cfg: &'a LoaderConfig, name: &str) -> DbResult<Loader<'a>> {
        cfg.validate().map_err(skydb::error::DbError::InvalidSchema)?;
        // Flush order is parent-before-child; CATALOG_TABLES is declared in
        // the data model's topological order ("this processing sequence
        // depends entirely on the data model", §4.2).
        let tables: Vec<String> = skycat::CATALOG_TABLES
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let stmts = tables
            .iter()
            .map(|t| session.prepare_insert(t))
            .collect::<DbResult<Vec<_>>>()?;
        let scale = session.server().engine().scale();
        let mem = MemoryModel::new(
            cfg.client_heap_budget,
            4096,
            cfg.client_fault_penalty,
            scale,
        );
        let arrays = ArraySet::new(&tables, cfg, mem);
        let report = FileReport {
            file: name.to_owned(),
            ..FileReport::default()
        };
        Ok(Loader {
            session,
            cfg,
            journal: None,
            stmts,
            arrays,
            report,
            batches_since_commit: 0,
            committed_lines: 0,
            current_line: 0,
        })
    }

    fn run(mut self, text: &str, journal: Option<&'a LoadJournal>) -> DbResult<FileReport> {
        let start = Instant::now();
        self.journal = journal;
        let resume_at = journal
            .map(|j| j.committed_lines(&self.report.file))
            .unwrap_or(0);
        self.report.lines_resumed = resume_at;
        self.committed_lines = resume_at;

        for (line_no, line) in text.lines().enumerate() {
            let line_no = line_no as u64;
            if line_no < resume_at {
                continue; // already committed by a previous run
            }
            // Any commit during this iteration happens inside a flush cycle
            // triggered *after* this line's row was buffered — the line is
            // consumed, so line_no + 1 is the safe resume point.
            self.current_line = line_no + 1;
            self.report.bytes_read += line.len() as u64 + 1;
            let rec = match parse_line(line) {
                Ok(rec) => rec,
                Err(e) => {
                    self.report.note_skipped(
                        self.cfg.max_skip_details,
                        "?",
                        Some(line_no),
                        SkipKind::Parse,
                        e.to_string(),
                    );
                    continue;
                }
            };
            let (table, row) = match transform(&rec) {
                Ok(x) => x,
                Err(e) => {
                    self.report.note_skipped(
                        self.cfg.max_skip_details,
                        rec.tag.table_name(),
                        Some(line_no),
                        SkipKind::Transform,
                        e.to_string(),
                    );
                    continue;
                }
            };
            let idx = self
                .arrays
                .index_of(table)
                .expect("transform only emits catalog tables");
            if self.arrays.push(idx, row) {
                self.flush_cycle()?;
            }
        }

        // Final partial cycle + end-of-file commit.
        self.current_line = text.lines().count() as u64;
        if !self.arrays.is_empty() {
            self.flush_cycle()?;
        }
        self.commit()?;

        self.report.cycles = self.arrays.cycles();
        self.report.elapsed = start.elapsed();
        self.report.client_paging = self.arrays.memory().modeled_time();
        self.report.client_faults = self.arrays.memory().faults();
        Ok(self.report)
    }

    /// One bulk-loading cycle: flush every array in parent-before-child
    /// order, then destroy the arrays (handled by `take`).
    fn flush_cycle(&mut self) -> DbResult<()> {
        for idx in 0..self.arrays.table_count() {
            let rows = self.arrays.take(idx);
            if rows.is_empty() {
                continue;
            }
            match self.cfg.mode {
                ExecMode::Bulk => self.batch_rows(idx, &rows)?,
                ExecMode::Singleton => self.singleton_rows(idx, &rows)?,
            }
        }
        self.arrays.end_cycle();
        if self.cfg.commit_policy == CommitPolicy::PerFlush {
            self.commit()?;
        }
        Ok(())
    }

    /// Fig. 3 `batch_row`: pack `batch-size` chunks, insert, skip exactly
    /// the failing row on error, resume at the row after it.
    fn batch_rows(&mut self, idx: usize, rows: &[Row]) -> DbResult<()> {
        let stmt = self.stmts[idx];
        let table = self.arrays.table_at(idx).to_owned();
        let mut first = 0usize;
        while first < rows.len() {
            let end = (first + self.cfg.batch_size).min(rows.len());
            let outcome = self.session.execute_batch(&stmt, &rows[first..end])?;
            self.report.batch_calls += 1;
            self.batches_since_commit += 1;
            if outcome.applied > 0 {
                self.report.note_loaded(&table, outcome.applied as u64);
            }
            match outcome.failed {
                None => first = end,
                Some((offset, err)) => {
                    let failed_idx = first + offset;
                    self.report.note_skipped(
                        self.cfg.max_skip_details,
                        &table,
                        None,
                        SkipKind::from_db_error(&err),
                        format!("row {} of flushed array: {err}", failed_idx),
                    );
                    // skip_one_row; continue from the next index.
                    first = failed_idx + 1;
                }
            }
            if let CommitPolicy::EveryBatches(n) = self.cfg.commit_policy {
                if self.batches_since_commit >= n {
                    self.commit_without_journal()?;
                }
            }
        }
        Ok(())
    }

    /// The non-bulk baseline: one database call per row.
    fn singleton_rows(&mut self, idx: usize, rows: &[Row]) -> DbResult<()> {
        let stmt = self.stmts[idx];
        let table = self.arrays.table_at(idx).to_owned();
        for row in rows {
            self.report.single_calls += 1;
            match self.session.execute(&stmt, row.clone()) {
                Ok(()) => self.report.note_loaded(&table, 1),
                Err(e) => {
                    // Protocol-level failures abort; row-level errors skip.
                    if matches!(e, skydb::error::DbError::Protocol(_)) {
                        return Err(e);
                    }
                    self.report.note_skipped(
                        self.cfg.max_skip_details,
                        &table,
                        None,
                        SkipKind::from_db_error(&e),
                        e.to_string(),
                    );
                }
            }
        }
        Ok(())
    }

    /// Commit and, at cycle boundaries, checkpoint the journal: every line
    /// read so far is either loaded or skipped, so `current_line` is a safe
    /// resume point.
    fn commit(&mut self) -> DbResult<()> {
        self.session.commit()?;
        self.report.commits += 1;
        self.batches_since_commit = 0;
        self.committed_lines = self.current_line;
        if let Some(j) = self.journal {
            j.record(&self.report.file, self.committed_lines);
        }
        Ok(())
    }

    /// Mid-cycle commit (`EveryBatches`): rows are durable, but buffered
    /// arrays mean `current_line` is NOT a safe resume point — the journal
    /// is deliberately not advanced.
    fn commit_without_journal(&mut self) -> DbResult<()> {
        self.session.commit()?;
        self.report.commits += 1;
        self.batches_since_commit = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycat::gen::{generate_file, GenConfig};
    use skydb::config::DbConfig;
    use skydb::server::Server;
    use std::sync::Arc;

    fn fresh_server() -> Arc<Server> {
        let server = Server::start(DbConfig::test());
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        server
    }

    #[test]
    fn clean_file_loads_exactly() {
        let server = fresh_server();
        let session = server.connect();
        let file = generate_file(&GenConfig::small(42, 100), 0);
        let report = load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();
        assert_eq!(report.rows_skipped, 0);
        assert_eq!(report.rows_loaded, file.expected.total_loadable());
        for (table, expect) in &file.expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(
                server.engine().row_count(tid),
                *expect,
                "row count mismatch for {table}"
            );
        }
        assert!(report.commits >= 1);
        assert!(report.batch_calls > 0);
        assert_eq!(report.single_calls, 0);
    }

    #[test]
    fn dirty_file_skips_exactly_the_corrupted_cascade() {
        let server = fresh_server();
        let session = server.connect();
        let file = generate_file(&GenConfig::night(7, 100).with_error_rate(0.08), 0);
        assert!(file.expected.corrupted_objects > 0);
        let report = load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();
        // Loaded rows must match the generator's exact expectation.
        for (table, expect) in &file.expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(
                server.engine().row_count(tid),
                *expect,
                "row count mismatch for {table}"
            );
        }
        assert_eq!(report.rows_loaded, file.expected.total_loadable());
        assert_eq!(
            report.rows_skipped,
            file.expected.total_emitted() - file.expected.total_loadable()
        );
        // Malformed lines were skipped at parse time.
        assert_eq!(
            report.skipped_by_kind.get("parse").copied().unwrap_or(0),
            file.expected.malformed_lines
        );
        // And the error mix includes database-detected kinds.
        assert!(report.skipped_by_kind.contains_key("foreign_key"));
    }

    #[test]
    fn singleton_mode_matches_bulk_results_with_more_calls() {
        let file = generate_file(&GenConfig::small(5, 100).with_error_rate(0.05), 0);

        let bulk_server = fresh_server();
        let bulk = load_catalog_file(
            &bulk_server.connect(),
            &LoaderConfig::test(),
            &file,
        )
        .unwrap();

        let single_server = fresh_server();
        let single = load_catalog_file(
            &single_server.connect(),
            &LoaderConfig::non_bulk(),
            &file,
        )
        .unwrap();

        assert_eq!(bulk.rows_loaded, single.rows_loaded);
        assert_eq!(bulk.rows_skipped, single.rows_skipped);
        assert_eq!(single.batch_calls, 0);
        assert!(
            single.single_calls > bulk.batch_calls * 10,
            "singleton {} calls vs bulk {} batches",
            single.single_calls,
            bulk.batch_calls
        );
    }

    #[test]
    fn best_case_call_count_is_rows_over_batch_size() {
        // §4.2: "In the best case … the algorithm will generate
        // N/batch-size database calls."
        let server = fresh_server();
        let session = server.connect();
        let cfg = LoaderConfig::test().with_batch_size(40).with_array_size(400);
        let file = generate_file(&GenConfig::small(9, 100), 0);
        let report = load_catalog_file(&session, &cfg, &file).unwrap();
        let n = report.rows_loaded;
        let ideal = n.div_ceil(40);
        // Partial batches at array boundaries add calls; stay within 2× of
        // ideal and well below N.
        assert!(report.batch_calls >= ideal);
        assert!(
            report.batch_calls < ideal * 2 + 64,
            "calls {} vs ideal {ideal}",
            report.batch_calls
        );
        assert!(report.batch_calls < n / 10);
    }

    #[test]
    fn smaller_arrays_mean_more_cycles_and_calls() {
        let file = generate_file(&GenConfig::night(3, 100), 0);
        let run = |array: usize| {
            let server = fresh_server();
            let session = server.connect();
            let cfg = LoaderConfig::test().with_array_size(array).with_batch_size(40);
            load_catalog_file(&session, &cfg, &file).unwrap()
        };
        let small = run(100);
        let large = run(2000);
        assert_eq!(small.rows_loaded, large.rows_loaded);
        assert!(small.cycles > large.cycles);
        assert!(
            small.batch_calls > large.batch_calls,
            "small arrays {} calls should exceed large arrays {}",
            small.batch_calls,
            large.batch_calls
        );
    }

    #[test]
    fn commit_policies_commit_at_different_rates() {
        let file = generate_file(&GenConfig::small(11, 100), 0);
        let run = |policy: CommitPolicy| {
            let server = fresh_server();
            let session = server.connect();
            let cfg = LoaderConfig::test()
                .with_array_size(200)
                .with_commit_policy(policy);
            (
                load_catalog_file(&session, &cfg, &file).unwrap(),
                server.engine().stats().snapshot().commits,
            )
        };
        let (per_file, c1) = run(CommitPolicy::PerFile);
        let (per_flush, c2) = run(CommitPolicy::PerFlush);
        let (per_batch, c3) = run(CommitPolicy::EveryBatches(1));
        assert_eq!(per_file.commits, 1);
        assert!(per_flush.commits > per_file.commits);
        assert!(per_batch.commits > per_flush.commits);
        assert!(c1 < c2 && c2 < c3);
        // All load the same rows regardless of commit cadence.
        assert_eq!(per_file.rows_loaded, per_flush.rows_loaded);
        assert_eq!(per_file.rows_loaded, per_batch.rows_loaded);
    }

    #[test]
    fn paper_example_one_error_recovery_shape() {
        // Example 1 in §4.2: batch of 40, an error at array row 45 (0-based
        // 44) ⇒ batches are rows 0..40, 40..44 fail at offset 4, then
        // resume at row 45: 45..85, 85..125, …
        let server = fresh_server();
        let session = server.connect();
        // Build a frames parent + objects with a dup at position 44.
        let fstmt = session.prepare_insert("ccd_frames").unwrap();
        let istmt = session.prepare_insert("ccd_images").unwrap();
        let cstmt = session.prepare_insert("ccd_columns").unwrap();
        use skydb::value::Value;
        session
            .execute(
                &cstmt,
                vec![
                    Value::Int(900_000),
                    Value::Int(100),
                    Value::Int(1),
                    Value::Int(0),
                    Value::Float(0.0),
                    Value::Float(1.0),
                    Value::Float(0.0),
                    Value::Float(1.0),
                ],
            )
            .unwrap();
        session
            .execute(
                &istmt,
                vec![
                    Value::Int(900_001),
                    Value::Int(900_000),
                    Value::Int(0),
                    Value::Float(53000.0),
                    Value::Float(140.0),
                    Value::Float(2.5),
                    Value::Float(11.0),
                ],
            )
            .unwrap();
        session
            .execute(
                &fstmt,
                vec![
                    Value::Int(900_002),
                    Value::Int(900_001),
                    Value::Int(0),
                    Value::Float(0.0),
                    Value::Float(1.0),
                    Value::Float(0.0),
                    Value::Float(1.0),
                    Value::Null,
                    Value::Null,
                ],
            )
            .unwrap();
        session.commit().unwrap();

        let object = |id: i64| -> Row {
            vec![
                Value::Int(id),
                Value::Int(900_002),
                Value::Float(0.5),
                Value::Float(0.5),
                Value::Int((8i64) << 40),
                Value::Float(0.0),
                Value::Float(0.0),
                Value::Float(18.0),
                Value::Null,
                Value::Float(100.0),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Int(0),
                Value::Float(1.0),
                Value::Float(1.0),
            ]
        };
        let mut rows: Vec<Row> = (0..1000).map(|i| object(1_000_000 + i)).collect();
        rows[44] = object(1_000_000); // duplicate PK at row 45 (1-based)

        let baseline = server.engine().stats().snapshot().batch_calls;
        let cfg = LoaderConfig::test().with_batch_size(40);
        let mut loader = Loader::new(&session, &cfg, "example1").unwrap();
        loader.batch_rows(8, &rows).unwrap(); // index 8 = objects
        let report = loader.report;
        assert_eq!(report.rows_loaded, 999);
        assert_eq!(report.rows_skipped, 1);
        // Call count: 1000 rows in batches of 40 with one mid-array error:
        // 0..40, 40..44(fail), 45..85, …, i.e. ceil(999/40)+1 = 26 calls.
        let calls = server.engine().stats().snapshot().batch_calls - baseline;
        assert_eq!(calls, 26);
        session.commit().unwrap();
    }

    #[test]
    fn invalid_config_rejected_before_work() {
        let server = fresh_server();
        let session = server.connect();
        let cfg = LoaderConfig::test().with_batch_size(0);
        let file = generate_file(&GenConfig::small(1, 100), 0);
        assert!(load_catalog_file(&session, &cfg, &file).is_err());
    }
}
