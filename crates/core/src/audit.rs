//! Post-load integrity audit.
//!
//! §4.3: "stringent data checking is performed by the database to guard
//! against hidden corruption". The engine enforces constraints at insert
//! time; this module re-verifies the *loaded repository* independently —
//! the same discipline as SDSS's validation phase (§6) — so operators can
//! prove a multi-night load left no corruption behind:
//!
//! * **referential integrity**: every FK value has its parent row;
//! * **primary-key index consistency**: every heap row is reachable through
//!   its PK, and the index holds no dangling entries (counts match);
//! * **CHECK constraints**: every stored row still satisfies its table's
//!   checks;
//! * **computed columns**: `objects.htmid` and galactic coordinates agree
//!   with an independent recomputation from ra/dec.

use serde::Serialize;

use skydb::engine::Engine;
use skydb::error::DbResult;
use skydb::value::{Key, Value};

/// One problem found by the audit.
#[derive(Debug, Clone, Serialize)]
pub struct AuditFinding {
    /// Table the problem is in.
    pub table: String,
    /// What is wrong.
    pub detail: String,
}

/// Outcome of a repository audit.
#[derive(Debug, Clone, Default, Serialize)]
pub struct AuditReport {
    /// Rows examined across all tables.
    pub rows_checked: u64,
    /// Foreign-key values verified.
    pub fk_checks: u64,
    /// CHECK-constraint evaluations.
    pub check_evaluations: u64,
    /// Computed columns re-derived.
    pub recomputations: u64,
    /// Problems found (empty = clean).
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// `true` if the repository passed every check.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    fn finding(&mut self, table: &str, detail: String) {
        if self.findings.len() < 1000 {
            self.findings.push(AuditFinding {
                table: table.to_owned(),
                detail,
            });
        }
    }
}

/// Bitwise row equality through the canonical encoding (stable under NaN,
/// unlike `PartialEq` on floats).
fn rows_bitwise_equal(a: &[Value], b: &[Value]) -> bool {
    let mut ea = bytes::BytesMut::with_capacity(64);
    let mut eb = bytes::BytesMut::with_capacity(64);
    skydb::value::encode_row(a, &mut ea);
    skydb::value::encode_row(b, &mut eb);
    ea == eb
}

/// Audit every table of the repository.
pub fn audit_repository(engine: &Engine) -> DbResult<AuditReport> {
    let mut report = AuditReport::default();
    for table in engine.tables_topological() {
        let schema = engine.schema(table);
        let rows = engine.scan_where(table, None)?;
        // PK-index consistency: the index must resolve every row, and its
        // cardinality must match the heap's.
        let heap_count = engine.row_count(table);
        if heap_count != rows.len() as u64 {
            report.finding(
                &schema.name,
                format!(
                    "heap row_count {} disagrees with scan count {}",
                    heap_count,
                    rows.len()
                ),
            );
        }
        for row in &rows {
            report.rows_checked += 1;
            let pk = Key::project(row, &schema.primary_key);
            match engine.pk_get(table, &pk)? {
                // Bitwise comparison via the canonical encoding: PartialEq
                // would flag NaN floats as mismatches (NaN != NaN).
                Some(found) if rows_bitwise_equal(&found, row) => {}
                Some(_) => {
                    report.finding(&schema.name, format!("PK {pk} resolves to a different row"))
                }
                None => report.finding(
                    &schema.name,
                    format!("heap row with PK {pk} unreachable through the PK index"),
                ),
            }
            // Referential integrity.
            for fk in &schema.foreign_keys {
                let key = Key::project(row, &fk.columns);
                if key.has_null() {
                    continue;
                }
                report.fk_checks += 1;
                let parent = engine.table_id(&fk.parent_table)?;
                if engine.pk_get(parent, &key)?.is_none() {
                    report.finding(
                        &schema.name,
                        format!(
                            "orphan row: {} {key} missing in {}",
                            fk.name, fk.parent_table
                        ),
                    );
                }
            }
            // CHECK constraints.
            for chk in &schema.checks {
                report.check_evaluations += 1;
                let passes = chk
                    .expr
                    .eval_truth(row)
                    .map(|t| t.passes_check())
                    .unwrap_or(false);
                if !passes {
                    report.finding(
                        &schema.name,
                        format!("stored row violates CHECK {}", chk.name),
                    );
                }
            }
        }
        // Computed columns on objects.
        if schema.name == "objects" {
            for row in &rows {
                let (Value::Float(ra), Value::Float(dec), Value::Int(htmid)) =
                    (row[2].clone(), row[3].clone(), row[4].clone())
                else {
                    report.finding("objects", "unexpected column types".into());
                    continue;
                };
                report.recomputations += 1;
                let expect = skyhtm::htmid(ra, dec, skyhtm::CATALOG_DEPTH);
                if htmid as u64 != expect {
                    report.finding(
                        "objects",
                        format!("htmid {htmid} != recomputed {expect} at ({ra}, {dec})"),
                    );
                }
                let (l, b) = skyhtm::equatorial_to_galactic(ra, dec);
                let (Value::Float(gl), Value::Float(gb)) = (row[5].clone(), row[6].clone()) else {
                    report.finding("objects", "galactic columns missing".into());
                    continue;
                };
                if (gl - l).abs() > 0.001 || (gb - b).abs() > 0.001 {
                    report.finding(
                        "objects",
                        format!("galactic ({gl}, {gb}) != recomputed ({l:.3}, {b:.3})"),
                    );
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::load_catalog_file;
    use crate::config::LoaderConfig;
    use skycat::gen::{generate_file, GenConfig};
    use skydb::{DbConfig, Server};
    use std::sync::Arc;

    fn loaded_server(error_rate: f64) -> Arc<Server> {
        let server = Server::start(DbConfig::test());
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        let file = generate_file(&GenConfig::small(901, 100).with_error_rate(error_rate), 0);
        let session = server.connect();
        load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();
        server
    }

    #[test]
    fn clean_load_audits_clean() {
        let server = loaded_server(0.0);
        let report = audit_repository(server.engine()).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
        assert!(report.rows_checked > 0);
        assert!(report.fk_checks > 0);
        assert!(report.check_evaluations > 0);
        assert!(report.recomputations > 0);
    }

    #[test]
    fn dirty_load_still_audits_clean_because_loader_skipped_the_bad_rows() {
        // The whole point of the Fig. 3 recovery: corrupt input never
        // reaches the repository.
        let server = loaded_server(0.15);
        let report = audit_repository(server.engine()).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn audit_survives_deletes_and_reloads() {
        let server = loaded_server(0.0);
        crate::reprocess::delete_observation(server.engine(), 100).unwrap();
        let v2 = generate_file(&GenConfig::small(903, 100), 0);
        let session = server.connect();
        load_catalog_file(&session, &LoaderConfig::test(), &v2).unwrap();
        let report = audit_repository(server.engine()).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
    }
}
