//! Checkpointing and resume: "automatic recovery from errors is a basic
//! requirement" (§3).
//!
//! Row-level recovery (skip the bad row, keep loading) lives in the
//! bulk-loading algorithm itself. This module adds *process-level*
//! recovery: a [`LoadJournal`] records, per file, how many input lines are
//! fully committed; a loader restarted after a crash skips straight past
//! them (the uncommitted tail was rolled back by the database) and
//! continues, so a killed 20-hour load does not start over.

use std::collections::BTreeMap;
use std::path::Path;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Per-file commit progress, safe to share across loader threads.
///
/// Since the fleet supervisor arrived this is a per-file *manifest*: next
/// to the committed-lines watermark it records the highest lease epoch
/// ever issued for each file, so a restarted coordinator seeds its lease
/// epochs from the journal and can never re-issue an epoch an earlier
/// incarnation already fenced out.
#[derive(Debug, Default)]
pub struct LoadJournal {
    inner: Mutex<BTreeMap<String, u64>>,
    epochs: Mutex<BTreeMap<String, u64>>,
}

/// Serialized journal contents. `epochs` is defaulted so journals written
/// before the fleet supervisor existed still load.
#[derive(Debug, Serialize, Deserialize)]
struct JournalFile {
    committed_lines: BTreeMap<String, u64>,
    #[serde(default)]
    epochs: BTreeMap<String, u64>,
}

impl LoadJournal {
    /// An empty journal.
    pub fn new() -> Self {
        LoadJournal::default()
    }

    /// Record that the first `lines` lines of `file` are fully committed.
    /// Progress is monotonic: stale (smaller) updates are ignored.
    pub fn record(&self, file: &str, lines: u64) {
        let mut inner = self.inner.lock();
        let e = inner.entry(file.to_owned()).or_insert(0);
        *e = (*e).max(lines);
    }

    /// Lines of `file` known to be committed (0 if never seen).
    pub fn committed_lines(&self, file: &str) -> u64 {
        self.inner.lock().get(file).copied().unwrap_or(0)
    }

    /// Drop `file`'s committed-lines watermark so a repair pass can re-load
    /// it from line 0. This is the **only** non-monotonic journal operation,
    /// reserved for self-repair after the scrubber quarantined rows that the
    /// watermark claims are committed: the claim is now false, and keeping
    /// it would make the repair loader skip exactly the rows it must
    /// restore. Lease epochs are *not* reset — fencing history must survive
    /// repair, or a zombie from before the rot could write again.
    pub fn reset_file(&self, file: &str) {
        self.inner.lock().remove(file);
    }

    /// Record that a lease for `file` was issued at `epoch`. Monotonic
    /// (max-merge), like the committed-lines watermark.
    pub fn record_epoch(&self, file: &str, epoch: u64) {
        let mut epochs = self.epochs.lock();
        let e = epochs.entry(file.to_owned()).or_insert(0);
        *e = (*e).max(epoch);
    }

    /// The highest lease epoch ever recorded for `file` (0 if never
    /// leased). A coordinator restarting over this journal starts issuing
    /// at `epoch_for(file) + 1`.
    pub fn epoch_for(&self, file: &str) -> u64 {
        self.epochs.lock().get(file).copied().unwrap_or(0)
    }

    /// Files with recorded progress.
    pub fn files(&self) -> Vec<String> {
        self.inner.lock().keys().cloned().collect()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&JournalFile {
            committed_lines: self.inner.lock().clone(),
            epochs: self.epochs.lock().clone(),
        })
        .expect("journal serializes")
    }

    /// Load from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let parsed: JournalFile = serde_json::from_str(json)?;
        Ok(LoadJournal {
            inner: Mutex::new(parsed.committed_lines),
            epochs: Mutex::new(parsed.epochs),
        })
    }

    /// Persist to a file, atomically: the JSON is written to a temporary
    /// sibling and renamed into place, so a crash mid-save leaves either
    /// the old journal or the new one on disk — never a torn half of
    /// both.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("journal.tmp");
        std::fs::write(&tmp, self.to_json())?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Load from a file; a missing file yields an empty journal.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        match std::fs::read_to_string(path) {
            Ok(s) => LoadJournal::from_json(&s)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(LoadJournal::new()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::{load_catalog_file, load_catalog_text_with_journal};
    use crate::config::{CommitPolicy, LoaderConfig};
    use skycat::gen::{generate_file, GenConfig};
    use skydb::config::DbConfig;
    use skydb::server::Server;
    use std::sync::Arc;

    fn fresh_server() -> Arc<Server> {
        let server = Server::start(DbConfig::test());
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        server
    }

    #[test]
    fn journal_is_monotonic() {
        let j = LoadJournal::new();
        assert_eq!(j.committed_lines("a.cat"), 0);
        j.record("a.cat", 100);
        j.record("a.cat", 50); // stale
        assert_eq!(j.committed_lines("a.cat"), 100);
        j.record("a.cat", 150);
        assert_eq!(j.committed_lines("a.cat"), 150);
    }

    #[test]
    fn replay_after_partial_reload_cannot_regress_watermark() {
        // A reclaimed file is re-loaded from line 0 by its new lease
        // holder. The replay's early checkpoints (40, 80, …) are *smaller*
        // than the watermark the dead loader already committed (100); the
        // journal must keep the max, or a crash between checkpoints would
        // resume too early and double-apply rows.
        let j = LoadJournal::new();
        j.record("n1.cat", 100);
        for replay_checkpoint in [40, 80, 100, 140] {
            j.record("n1.cat", replay_checkpoint);
            assert!(
                j.committed_lines("n1.cat") >= 100,
                "checkpoint {replay_checkpoint} regressed the watermark"
            );
        }
        assert_eq!(j.committed_lines("n1.cat"), 140);
        // The invariant survives serialization too.
        let back = LoadJournal::from_json(&j.to_json()).unwrap();
        back.record("n1.cat", 5);
        assert_eq!(back.committed_lines("n1.cat"), 140);
    }

    #[test]
    fn epochs_are_monotonic_and_survive_roundtrip() {
        let j = LoadJournal::new();
        assert_eq!(j.epoch_for("a.cat"), 0);
        j.record_epoch("a.cat", 3);
        j.record_epoch("a.cat", 2); // stale coordinator write
        assert_eq!(j.epoch_for("a.cat"), 3);
        let back = LoadJournal::from_json(&j.to_json()).unwrap();
        assert_eq!(back.epoch_for("a.cat"), 3);
        // Pre-fleet journals (no epochs key) still load.
        let legacy = r#"{ "committed_lines": { "b.cat": 9 } }"#;
        let old = LoadJournal::from_json(legacy).unwrap();
        assert_eq!(old.committed_lines("b.cat"), 9);
        assert_eq!(old.epoch_for("b.cat"), 0);
    }

    #[test]
    fn reset_file_drops_watermark_but_keeps_epochs() {
        let j = LoadJournal::new();
        j.record("n1.cat", 100);
        j.record_epoch("n1.cat", 4);
        j.reset_file("n1.cat");
        assert_eq!(j.committed_lines("n1.cat"), 0, "repair reloads from 0");
        assert_eq!(j.epoch_for("n1.cat"), 4, "fencing history survives");
        // After the reset, progress is monotonic again from scratch.
        j.record("n1.cat", 30);
        j.record("n1.cat", 10);
        assert_eq!(j.committed_lines("n1.cat"), 30);
    }

    #[test]
    fn json_roundtrip() {
        let j = LoadJournal::new();
        j.record("a.cat", 10);
        j.record("b.cat", 20);
        let back = LoadJournal::from_json(&j.to_json()).unwrap();
        assert_eq!(back.committed_lines("a.cat"), 10);
        assert_eq!(back.committed_lines("b.cat"), 20);
        assert_eq!(back.files().len(), 2);
    }

    #[test]
    fn resume_after_simulated_crash_loses_nothing_and_duplicates_nothing() {
        let file = generate_file(&GenConfig::small(21, 100), 0);
        let total_lines = file.line_count() as u64;

        let server = fresh_server();
        let journal = LoadJournal::new();
        let cfg = LoaderConfig::test()
            .with_array_size(120)
            .with_commit_policy(CommitPolicy::PerFlush);

        // First attempt: load a truncated prefix (the "crash" happens mid
        // file: the tail never arrives), committing per flush.
        let crash_at = file
            .text
            .lines()
            .take(file.line_count() * 2 / 3)
            .map(|l| l.len() + 1)
            .sum::<usize>();
        let prefix = &file.text[..crash_at];
        let session = server.connect();
        let r1 =
            load_catalog_text_with_journal(&session, &cfg, &file.name, prefix, &journal).unwrap();
        // Roll back whatever was not committed, as a crash would.
        session.rollback().unwrap();
        let committed = journal.committed_lines(&file.name);
        assert!(committed > 0, "some flush cycles should have committed");
        assert!(committed < total_lines);
        assert!(r1.rows_loaded > 0);

        // Second attempt: full file, resuming from the journal.
        let session2 = server.connect();
        let r2 = load_catalog_text_with_journal(&session2, &cfg, &file.name, &file.text, &journal)
            .unwrap();
        assert_eq!(r2.lines_resumed, committed);

        // Final state: every table has exactly the expected rows.
        for (table, expect) in &file.expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(
                server.engine().row_count(tid),
                *expect,
                "{table} after resume"
            );
        }
        assert_eq!(journal.committed_lines(&file.name), total_lines);
    }

    #[test]
    fn rerunning_a_completed_file_is_a_noop() {
        let file = generate_file(&GenConfig::small(23, 100), 0);
        let server = fresh_server();
        let journal = LoadJournal::new();
        let cfg = LoaderConfig::test();
        let s1 = server.connect();
        load_catalog_text_with_journal(&s1, &cfg, &file.name, &file.text, &journal).unwrap();
        let loaded_before = server.engine().stats().snapshot().rows_inserted;
        let s2 = server.connect();
        let r2 =
            load_catalog_text_with_journal(&s2, &cfg, &file.name, &file.text, &journal).unwrap();
        assert_eq!(r2.rows_loaded, 0);
        assert_eq!(r2.rows_skipped, 0);
        assert_eq!(
            server.engine().stats().snapshot().rows_inserted,
            loaded_before,
            "no duplicate work"
        );
    }

    #[test]
    fn without_journal_rerun_duplicates_are_skipped_not_duplicated() {
        // Even with no journal, re-loading the same file cannot corrupt the
        // repository: every row hits a PK violation and is skipped (the
        // paper's worst case: "primary key violations on every row caused
        // by repeatedly loading duplicate rows").
        let file = generate_file(&GenConfig::small(25, 100), 0);
        let server = fresh_server();
        let cfg = LoaderConfig::test();
        load_catalog_file(&server.connect(), &cfg, &file).unwrap();
        let r2 = load_catalog_file(&server.connect(), &cfg, &file).unwrap();
        assert_eq!(r2.rows_loaded, 0);
        assert_eq!(r2.rows_skipped, file.expected.total_loadable());
        for (table, expect) in &file.expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(server.engine().row_count(tid), *expect);
        }
    }

    #[test]
    fn save_is_atomic_and_partial_json_is_rejected_not_panicked() {
        let dir = std::env::temp_dir().join(format!("skyloader-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.json");

        // A save leaves exactly the journal behind — no temp residue.
        let j = LoadJournal::new();
        j.record("x.cat", 7);
        j.save(&path).unwrap();
        assert!(!path.with_extension("journal.tmp").exists());

        // A crash mid-write leaves a truncated JSON on disk; loading it
        // must surface InvalidData, not panic, and must not clobber the
        // caller's state.
        let torn = &j.to_json()[..j.to_json().len() / 2];
        std::fs::write(&path, torn).unwrap();
        let err = LoadJournal::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Overwriting the torn file with a good save recovers cleanly.
        j.save(&path).unwrap();
        assert_eq!(
            LoadJournal::load(&path).unwrap().committed_lines("x.cat"),
            7
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_and_load_from_disk() {
        let dir = std::env::temp_dir().join(format!("skyloader-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.json");
        let j = LoadJournal::new();
        j.record("x.cat", 42);
        j.save(&path).unwrap();
        let back = LoadJournal::load(&path).unwrap();
        assert_eq!(back.committed_lines("x.cat"), 42);
        // Missing file → empty journal.
        let missing = LoadJournal::load(&dir.join("nope.json")).unwrap();
        assert_eq!(missing.committed_lines("x.cat"), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
