//! Observation reprocessing: delete a night's derived rows and reload.
//!
//! The survey reality behind §2: the extraction pipeline evolves ("The
//! format of catalog file varies depending on the extraction program
//! used"), and when a pipeline bug is found, a night's *derived* catalog
//! rows must be replaced — raw images are re-extracted and reloaded. The
//! repository's FK graph makes that deletion order-sensitive: children
//! must go before parents (the mirror image of Fig. 2's load order).
//!
//! [`delete_observation`] walks the FK chains downward from an
//! observation's `ccd_columns`, collecting the exact key set at each level,
//! then deletes in **child-before-parent** order so every RESTRICT check
//! passes. [`reprocess_observation`] composes that with a normal bulk load
//! of the replacement files.

use std::collections::BTreeSet;
use std::sync::Arc;

use serde::Serialize;

use skycat::CatalogFile;
use skydb::engine::Engine;
use skydb::error::DbResult;
use skydb::expr::{CmpOp, Expr};
use skydb::server::Server;
use skydb::value::Key;
use skydb::TableId;

use crate::config::LoaderConfig;
use crate::report::NightReport;

/// Rows deleted per table by a reprocessing pass.
#[derive(Debug, Clone, Default, Serialize)]
pub struct PurgeReport {
    /// Deleted row counts in deletion (child-before-parent) order.
    pub deleted_by_table: Vec<(String, u64)>,
}

impl PurgeReport {
    /// Total rows deleted.
    pub fn total(&self) -> u64 {
        self.deleted_by_table.iter().map(|(_, n)| n).sum()
    }
}

/// Collect the primary keys of `table` rows whose FK column set (projected
/// by `fk_cols`) hits `parent_keys`.
fn child_keys_of(
    engine: &Engine,
    table: TableId,
    fk_cols: &[usize],
    pk_cols: &[usize],
    parent_keys: &BTreeSet<Key>,
) -> DbResult<BTreeSet<Key>> {
    let rows = engine.scan_where(table, None)?;
    Ok(rows
        .into_iter()
        .filter(|row| parent_keys.contains(&Key::project(row, fk_cols)))
        .map(|row| Key::project(&row, pk_cols))
        .collect())
}

/// Build, for every catalog table, the set of primary keys that belong to
/// `obs_id`'s derivation chain.
fn collect_observation_keys(
    engine: &Engine,
    obs_id: i64,
) -> DbResult<Vec<(&'static str, BTreeSet<Key>)>> {
    // Seed: ccd_columns rows referencing the observation.
    let mut keys: Vec<(&'static str, BTreeSet<Key>)> = Vec::new();
    // Table metadata we need: schema (fk cols / pk cols) by name.
    let schema_of = |name: &str| -> DbResult<(TableId, Arc<skydb::TableSchema>)> {
        let tid = engine.table_id(name)?;
        Ok((tid, engine.schema(tid)))
    };

    let (ccd_tid, ccd_schema) = schema_of("ccd_columns")?;
    let obs_col = ccd_schema
        .column_index("obs_id")
        .expect("ccd_columns.obs_id");
    let mut seed_keys = BTreeSet::new();
    for row in engine.scan_where(ccd_tid, Some(&Expr::cmp(obs_col, CmpOp::Eq, obs_id)))? {
        seed_keys.insert(Key::project(&row, &ccd_schema.primary_key));
    }
    keys.push(("ccd_columns", seed_keys));

    // Walk each catalog table below ccd_columns in FK order; a table's keys
    // are the child rows of any already-collected parent.
    for name in skycat::CATALOG_TABLES {
        if name == "ccd_columns" {
            continue;
        }
        let (tid, schema) = schema_of(name)?;
        let mut collected = BTreeSet::new();
        for fk in &schema.foreign_keys {
            if let Some((_, parent_keys)) =
                keys.iter().find(|(n, _)| *n == fk.parent_table.as_str())
            {
                collected.append(&mut child_keys_of(
                    engine,
                    tid,
                    &fk.columns,
                    &schema.primary_key,
                    parent_keys,
                )?);
            }
        }
        keys.push((name, collected));
    }
    Ok(keys)
}

/// Delete every derived row of `obs_id` (ccd_columns downward), in
/// child-before-parent order, in one transaction.
pub fn delete_observation(engine: &Engine, obs_id: i64) -> DbResult<PurgeReport> {
    let keys = collect_observation_keys(engine, obs_id)?;
    let txn = engine.begin();
    let mut report = PurgeReport::default();
    // Children first: reverse of CATALOG_TABLES order.
    for (name, key_set) in keys.iter().rev() {
        if key_set.is_empty() {
            report.deleted_by_table.push(((*name).to_owned(), 0));
            continue;
        }
        let tid = engine.table_id(name)?;
        // Set-based PK deletion: O(rows · log victims), not a linear
        // IN-list scan per row.
        let n = match engine.delete_by_pks(txn, tid, key_set) {
            Ok(n) => n,
            Err(e) => {
                engine.rollback(txn)?;
                return Err(e);
            }
        };
        report.deleted_by_table.push(((*name).to_owned(), n));
    }
    engine.commit(txn)?;
    Ok(report)
}

/// Full reprocessing: purge `obs_id`'s derived rows, then load the
/// re-extracted files with `nodes` parallel loaders.
pub fn reprocess_observation(
    server: &Arc<Server>,
    obs_id: i64,
    new_files: &[CatalogFile],
    cfg: &LoaderConfig,
    nodes: usize,
) -> DbResult<(PurgeReport, NightReport)> {
    let purge = delete_observation(server.engine(), obs_id)?;
    // Per-file failures stay inspectable in the report's failed_files;
    // only an orchestration failure (a loader worker dying) becomes Err.
    let night = crate::parallel::load_night_with_journal(
        server,
        new_files,
        cfg,
        nodes,
        skysim::cluster::AssignmentPolicy::Dynamic,
        None,
    )
    .map_err(|e| skydb::error::DbError::Protocol(e.to_string()))?;
    Ok((purge, night))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::load_catalog_file;
    use skycat::gen::{generate_file, GenConfig};
    use skydb::DbConfig;

    fn loaded_server(seed: u64, error_rate: f64) -> (Arc<Server>, skycat::CatalogFile) {
        let server = Server::start(DbConfig::test());
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        let file = generate_file(&GenConfig::small(seed, 100).with_error_rate(error_rate), 0);
        let session = server.connect();
        load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();
        (server, file)
    }

    #[test]
    fn purge_removes_exactly_the_observation_chain() {
        let (server, file) = loaded_server(701, 0.0);
        let engine = server.engine();
        let report = delete_observation(engine, 100).unwrap();
        assert_eq!(report.total(), file.expected.total_loadable());
        for name in skycat::CATALOG_TABLES {
            let tid = engine.table_id(name).unwrap();
            assert_eq!(engine.row_count(tid), 0, "{name} should be empty");
        }
        // Dimension tables untouched.
        let chips = engine.table_id("ccd_chips").unwrap();
        assert_eq!(engine.row_count(chips), 112);
        let obs = engine.table_id("observations").unwrap();
        assert_eq!(engine.row_count(obs), 1, "observation header remains");
    }

    #[test]
    fn purge_leaves_other_observations_alone() {
        let (server, file) = loaded_server(703, 0.0);
        let engine = server.engine();
        // A second observation's data loaded alongside.
        skycat::seed_observation(engine, 2, 200).unwrap();
        let other = generate_file(&GenConfig::small(704, 200), 0);
        let session = server.connect();
        load_catalog_file(&session, &LoaderConfig::test(), &other).unwrap();

        let report = delete_observation(engine, 100).unwrap();
        assert_eq!(report.total(), file.expected.total_loadable());
        // Observation 200's rows are intact.
        for (table, expect) in &other.expected.loadable {
            let tid = engine.table_id(table).unwrap();
            assert_eq!(engine.row_count(tid), *expect, "{table}");
        }
    }

    #[test]
    fn reprocess_swaps_v1_for_v2_exactly() {
        // v1 was extracted with a buggy pipeline (10% corrupt rows); v2 is
        // the fixed re-extraction of the same observation.
        let (server, _v1) = loaded_server(705, 0.10);
        let v2 = generate_file(&GenConfig::small(705, 100), 0); // clean
        let (purge, night) = reprocess_observation(
            &server,
            100,
            std::slice::from_ref(&v2),
            &LoaderConfig::test(),
            2,
        )
        .unwrap();
        assert!(purge.total() > 0);
        assert_eq!(night.rows_loaded(), v2.expected.total_loadable());
        for (table, expect) in &v2.expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(server.engine().row_count(tid), *expect, "{table}");
        }
    }

    #[test]
    fn purge_of_unknown_observation_is_a_noop() {
        let (server, file) = loaded_server(707, 0.0);
        let report = delete_observation(server.engine(), 999).unwrap();
        assert_eq!(report.total(), 0);
        let objects = server.engine().table_id("objects").unwrap();
        assert_eq!(
            server.engine().row_count(objects),
            file.expected.loadable["objects"]
        );
    }
}
