//! Observation reprocessing: delete a night's derived rows and reload.
//!
//! The survey reality behind §2: the extraction pipeline evolves ("The
//! format of catalog file varies depending on the extraction program
//! used"), and when a pipeline bug is found, a night's *derived* catalog
//! rows must be replaced — raw images are re-extracted and reloaded. The
//! repository's FK graph makes that deletion order-sensitive: children
//! must go before parents (the mirror image of Fig. 2's load order).
//!
//! [`delete_observation`] walks the FK chains downward from an
//! observation's `ccd_columns`, collecting the exact key set at each level,
//! then deletes in **child-before-parent** order so every RESTRICT check
//! passes. [`reprocess_observation`] composes that with a normal bulk load
//! of the replacement files — **fenced**: the purge transaction commits
//! only while the caller still holds the reprocess fence for the
//! observation, so a zombie reprocessor whose lease was taken over cannot
//! purge rows the new holder has just reloaded (the same epoch-fencing
//! discipline the loader fleet applies per file).

use std::collections::BTreeSet;
use std::sync::Arc;

use serde::Serialize;

use skycat::CatalogFile;
use skydb::engine::Engine;
use skydb::error::{DbError, DbResult};
use skydb::expr::{CmpOp, Expr};
use skydb::server::Server;
use skydb::value::Key;
use skydb::wire::Fence;
use skydb::TableId;

use crate::config::LoaderConfig;
use crate::fleet::fence_key;
use crate::report::NightReport;

/// Rows deleted per table by a reprocessing pass.
#[derive(Debug, Clone, Default, Serialize)]
pub struct PurgeReport {
    /// Deleted row counts in deletion (child-before-parent) order.
    pub deleted_by_table: Vec<(String, u64)>,
}

impl PurgeReport {
    /// Total rows deleted.
    pub fn total(&self) -> u64 {
        self.deleted_by_table.iter().map(|(_, n)| n).sum()
    }
}

/// Collect the primary keys of `table` rows whose FK column set (projected
/// by `fk_cols`) hits `parent_keys`.
fn child_keys_of(
    engine: &Engine,
    table: TableId,
    fk_cols: &[usize],
    pk_cols: &[usize],
    parent_keys: &BTreeSet<Key>,
) -> DbResult<BTreeSet<Key>> {
    let rows = engine.scan_where(table, None)?;
    Ok(rows
        .into_iter()
        .filter(|row| parent_keys.contains(&Key::project(row, fk_cols)))
        .map(|row| Key::project(&row, pk_cols))
        .collect())
}

/// Build, for every catalog table, the set of primary keys that belong to
/// `obs_id`'s derivation chain.
fn collect_observation_keys(
    engine: &Engine,
    obs_id: i64,
) -> DbResult<Vec<(&'static str, BTreeSet<Key>)>> {
    // Seed: ccd_columns rows referencing the observation.
    let mut keys: Vec<(&'static str, BTreeSet<Key>)> = Vec::new();
    // Table metadata we need: schema (fk cols / pk cols) by name.
    let schema_of = |name: &str| -> DbResult<(TableId, Arc<skydb::TableSchema>)> {
        let tid = engine.table_id(name)?;
        Ok((tid, engine.schema(tid)))
    };

    let (ccd_tid, ccd_schema) = schema_of("ccd_columns")?;
    let obs_col = ccd_schema
        .column_index("obs_id")
        .expect("ccd_columns.obs_id");
    let mut seed_keys = BTreeSet::new();
    for row in engine.scan_where(ccd_tid, Some(&Expr::cmp(obs_col, CmpOp::Eq, obs_id)))? {
        seed_keys.insert(Key::project(&row, &ccd_schema.primary_key));
    }
    keys.push(("ccd_columns", seed_keys));

    // Walk each catalog table below ccd_columns in FK order; a table's keys
    // are the child rows of any already-collected parent.
    for name in skycat::CATALOG_TABLES {
        if name == "ccd_columns" {
            continue;
        }
        let (tid, schema) = schema_of(name)?;
        let mut collected = BTreeSet::new();
        for fk in &schema.foreign_keys {
            if let Some((_, parent_keys)) =
                keys.iter().find(|(n, _)| *n == fk.parent_table.as_str())
            {
                collected.append(&mut child_keys_of(
                    engine,
                    tid,
                    &fk.columns,
                    &schema.primary_key,
                    parent_keys,
                )?);
            }
        }
        keys.push((name, collected));
    }
    Ok(keys)
}

/// Record a completed purge in the engine's observability registry so
/// campaign/reprocess progress shows up in `--metrics` JSONL and
/// `skyload inspect` (`reprocess.purges`, `reprocess.deleted_rows`).
fn note_purge(engine: &Engine, report: &PurgeReport) {
    let obs = engine.obs();
    obs.counter("reprocess.purges").inc();
    obs.counter("reprocess.deleted_rows").add(report.total());
}

/// Delete every derived row of `obs_id` (ccd_columns downward), in
/// child-before-parent order, in one transaction.
///
/// **Unfenced** maintenance entry point: safe only while no competing
/// reprocessor can hold a lease on the same observation. Coordinated
/// reprocessing goes through [`reprocess_observation`] /
/// [`delete_observation_fenced`], which refuse to commit after a lease
/// takeover.
pub fn delete_observation(engine: &Engine, obs_id: i64) -> DbResult<PurgeReport> {
    let report = purge_observation_txn(engine, obs_id, None)?;
    note_purge(engine, &report);
    Ok(report)
}

/// Fenced variant of [`delete_observation`]: the purge transaction commits
/// only if `fence` is still current (its epoch is at least the server's
/// fence floor for its key) **at commit time**. A zombie reprocessor —
/// one whose lease was reclaimed and handed to a new holder at a higher
/// epoch — reaches the floor check after staging its deletes, rolls back,
/// and returns [`DbError::FencedOut`]; no row it staged is ever visible.
pub fn delete_observation_fenced(
    server: &Arc<Server>,
    obs_id: i64,
    fence: &Fence,
) -> DbResult<PurgeReport> {
    let report = purge_observation_txn(server.engine(), obs_id, Some((server, fence)))?;
    note_purge(server.engine(), &report);
    Ok(report)
}

/// Shared purge transaction: collect the observation's key chain, delete
/// child-before-parent, and commit — with an optional fence floor check
/// immediately before the commit (deletes become visible only at commit,
/// so a stale holder rolls back having published nothing).
fn purge_observation_txn(
    engine: &Engine,
    obs_id: i64,
    fenced: Option<(&Arc<Server>, &Fence)>,
) -> DbResult<PurgeReport> {
    let keys = collect_observation_keys(engine, obs_id)?;
    let txn = engine.begin();
    let mut report = PurgeReport::default();
    // Children first: reverse of CATALOG_TABLES order.
    for (name, key_set) in keys.iter().rev() {
        if key_set.is_empty() {
            report.deleted_by_table.push(((*name).to_owned(), 0));
            continue;
        }
        let tid = engine.table_id(name)?;
        // Set-based PK deletion: O(rows · log victims), not a linear
        // IN-list scan per row.
        let n = match engine.delete_by_pks(txn, tid, key_set) {
            Ok(n) => n,
            Err(e) => {
                engine.rollback(txn)?;
                return Err(e);
            }
        };
        report.deleted_by_table.push(((*name).to_owned(), n));
    }
    if let Some((server, fence)) = fenced {
        let floor = server.fence_floor(fence.key);
        if fence.epoch < floor {
            engine.rollback(txn)?;
            server.obs().counter("fleet.fence_rejections").inc();
            return Err(DbError::FencedOut(format!(
                "reprocess purge of obs {obs_id} holds epoch {} below floor {floor}; \
                 lease was taken over",
                fence.epoch
            )));
        }
    }
    engine.commit(txn)?;
    Ok(report)
}

/// The fence key guarding reprocessing of one observation.
pub fn reprocess_fence_key(obs_id: i64) -> u64 {
    fence_key(&format!("reprocess:{obs_id}"))
}

/// Acquire the next reprocess epoch for `obs_id`: bumps the server's fence
/// floor past every previous holder and returns the fence this holder must
/// present. Any earlier holder that wakes up later is fenced out.
pub fn acquire_reprocess_fence(server: &Server, obs_id: i64) -> Fence {
    let key = reprocess_fence_key(obs_id);
    let epoch = server.fence_floor(key) + 1;
    server.advance_fence(key, epoch);
    Fence { key, epoch }
}

/// Full reprocessing: purge `obs_id`'s derived rows, then load the
/// re-extracted files with `nodes` parallel loaders.
///
/// Acquires the observation's reprocess fence first, so this call fences
/// out any earlier reprocessor of the same observation, and its own purge
/// would be rejected should a later takeover happen before the purge
/// commits. The reload runs under the loader fleet's per-file leases,
/// which carry their own fencing.
pub fn reprocess_observation(
    server: &Arc<Server>,
    obs_id: i64,
    new_files: &[CatalogFile],
    cfg: &LoaderConfig,
    nodes: usize,
) -> DbResult<(PurgeReport, NightReport)> {
    let fence = acquire_reprocess_fence(server, obs_id);
    let purge = delete_observation_fenced(server, obs_id, &fence)?;
    // Per-file failures stay inspectable in the report's failed_files;
    // only an orchestration failure (a loader worker dying) becomes Err.
    let night = crate::parallel::load_night_with_journal(
        server,
        new_files,
        cfg,
        nodes,
        skysim::cluster::AssignmentPolicy::Dynamic,
        None,
    )
    .map_err(|e| skydb::error::DbError::Protocol(e.to_string()))?;
    Ok((purge, night))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::load_catalog_file;
    use skycat::gen::{generate_file, GenConfig};
    use skydb::DbConfig;

    fn loaded_server(seed: u64, error_rate: f64) -> (Arc<Server>, skycat::CatalogFile) {
        let server = Server::start(DbConfig::test());
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        let file = generate_file(&GenConfig::small(seed, 100).with_error_rate(error_rate), 0);
        let session = server.connect();
        load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();
        (server, file)
    }

    #[test]
    fn purge_removes_exactly_the_observation_chain() {
        let (server, file) = loaded_server(701, 0.0);
        let engine = server.engine();
        let report = delete_observation(engine, 100).unwrap();
        assert_eq!(report.total(), file.expected.total_loadable());
        for name in skycat::CATALOG_TABLES {
            let tid = engine.table_id(name).unwrap();
            assert_eq!(engine.row_count(tid), 0, "{name} should be empty");
        }
        // Dimension tables untouched.
        let chips = engine.table_id("ccd_chips").unwrap();
        assert_eq!(engine.row_count(chips), 112);
        let obs = engine.table_id("observations").unwrap();
        assert_eq!(engine.row_count(obs), 1, "observation header remains");
    }

    #[test]
    fn purge_leaves_other_observations_alone() {
        let (server, file) = loaded_server(703, 0.0);
        let engine = server.engine();
        // A second observation's data loaded alongside.
        skycat::seed_observation(engine, 2, 200).unwrap();
        let other = generate_file(&GenConfig::small(704, 200), 0);
        let session = server.connect();
        load_catalog_file(&session, &LoaderConfig::test(), &other).unwrap();

        let report = delete_observation(engine, 100).unwrap();
        assert_eq!(report.total(), file.expected.total_loadable());
        // Observation 200's rows are intact.
        for (table, expect) in &other.expected.loadable {
            let tid = engine.table_id(table).unwrap();
            assert_eq!(engine.row_count(tid), *expect, "{table}");
        }
    }

    #[test]
    fn reprocess_swaps_v1_for_v2_exactly() {
        // v1 was extracted with a buggy pipeline (10% corrupt rows); v2 is
        // the fixed re-extraction of the same observation.
        let (server, _v1) = loaded_server(705, 0.10);
        let v2 = generate_file(&GenConfig::small(705, 100), 0); // clean
        let (purge, night) = reprocess_observation(
            &server,
            100,
            std::slice::from_ref(&v2),
            &LoaderConfig::test(),
            2,
        )
        .unwrap();
        assert!(purge.total() > 0);
        assert_eq!(night.rows_loaded(), v2.expected.total_loadable());
        for (table, expect) in &v2.expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(server.engine().row_count(tid), *expect, "{table}");
        }
    }

    #[test]
    fn zombie_reprocessor_cannot_purge_after_takeover() {
        let (server, file) = loaded_server(709, 0.0);
        // A reprocessor acquires the fence, then stalls (zombie).
        let zombie = acquire_reprocess_fence(&server, 100);
        // Its lease is taken over: the new holder bumps the epoch.
        let fresh = acquire_reprocess_fence(&server, 100);
        assert!(fresh.epoch > zombie.epoch);
        // The zombie wakes up and tries to purge: rejected at commit, and
        // nothing it staged is visible.
        let err = delete_observation_fenced(&server, 100, &zombie).unwrap_err();
        assert!(matches!(err, DbError::FencedOut(_)), "got {err}");
        let objects = server.engine().table_id("objects").unwrap();
        assert_eq!(
            server.engine().row_count(objects),
            file.expected.loadable["objects"],
            "zombie purge must leave rows intact"
        );
        // The current holder's purge goes through.
        let report = delete_observation_fenced(&server, 100, &fresh).unwrap();
        assert_eq!(report.total(), file.expected.total_loadable());
    }

    #[test]
    fn purge_metrics_wired_into_registry() {
        let (server, file) = loaded_server(711, 0.0);
        delete_observation(server.engine(), 100).unwrap();
        let snap = server.engine().obs().snapshot();
        assert_eq!(snap.counter("reprocess.purges"), 1);
        assert_eq!(
            snap.counter("reprocess.deleted_rows"),
            file.expected.total_loadable()
        );
    }

    #[test]
    fn purge_of_unknown_observation_is_a_noop() {
        let (server, file) = loaded_server(707, 0.0);
        let report = delete_observation(server.engine(), 999).unwrap();
        assert_eq!(report.total(), 0);
        let objects = server.engine().table_id("objects").unwrap();
        assert_eq!(
            server.engine().row_count(objects),
            file.expected.loadable["objects"]
        );
    }
}
