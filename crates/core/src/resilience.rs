//! The unified retry / backoff / degradation layer for the loader fleet.
//!
//! §3 of the paper makes "a mechanism of automatic recovery from errors" a
//! basic requirement of the loading framework. This module centralizes the
//! policy that was previously inlined in `parallel`:
//!
//! * **Classification** ([`classify`]): which database errors are worth
//!   retrying (connection resets, busy rejections, timeouts, disk-full,
//!   corrupt payloads), which mean the server itself is gone, and which are
//!   permanent.
//! * **Backoff** ([`Backoff`]): exponential delay between retries with
//!   deterministic, seeded jitter — reproducible run to run, but still
//!   decorrelating the fleet's retry storms.
//! * **Circuit breaking** ([`CircuitBreaker`]): after enough consecutive
//!   transport failures on one connection, quarantine it — the loader
//!   reconnects and its file is requeued through dynamic assignment.
//! * **Graceful degradation** ([`Degrader`]): after consecutive failed
//!   attempts the fleet halves its array/batch sizes, ultimately falling
//!   back to per-row inserts, and restores full batch mode once attempts
//!   succeed again. Smaller wire calls both shrink the retransmit cost of
//!   a failure and step around per-batch fault modes.
//!
//! All knobs live in [`RetryPolicy`], carried inside
//! [`LoaderConfig`](crate::config::LoaderConfig) so existing entry points
//! keep their signatures.

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use skydb::error::DbError;
use skysim::rng::SplitMix64;

use crate::config::{ExecMode, LoaderConfig};

/// How a file-level load error should be handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Worth retrying on the same server: the call (or its transaction)
    /// can be re-driven without losing or duplicating rows.
    Transient,
    /// The server itself is down; retrying on any connection is futile
    /// until the repository is recovered into a fresh server.
    ServerLost,
    /// Retrying cannot help (schema/config errors, closed sessions…).
    Permanent,
    /// The caller's fencing epoch is stale: its lease (file grant or
    /// shard generation) was reclaimed and a successor may already own
    /// the work. Retrying under the stale epoch is futile; retrying
    /// under a *fresh* epoch is the owner's decision — the loader fleet
    /// treats the file as taken away, the shard router requeues the
    /// flush against the zone's new generation. One class, one meaning,
    /// at every call site.
    Fenced,
}

/// Classify a database error for retry purposes. Row-level errors
/// (constraint violations, type errors) never reach this layer — the Fig. 3
/// recovery inside the bulk loader skips those rows — so anything
/// unrecognized here is treated as permanent.
pub fn classify(e: &DbError) -> ErrorClass {
    match e {
        DbError::Protocol(_)
        | DbError::ServerBusy(_)
        | DbError::Timeout(_)
        | DbError::DiskFull(_)
        // A write conflict means the key is held by another *still-open*
        // transaction: once it resolves, a retry either succeeds (it
        // rolled back) or surfaces a real duplicate (it committed).
        // Treating it as permanent would skip — and thereby lose — rows
        // whose conflicting copy never commits.
        | DbError::WriteConflict(_)
        | DbError::Corruption(_) => ErrorClass::Transient,
        DbError::ServerDown(_) => ErrorClass::ServerLost,
        DbError::Batch { cause, .. } => classify(cause),
        // A fenced-out call means the caller's lease was reclaimed — file
        // grant or shard generation — and the work may already have a new
        // owner. Deliberately not Transient (the stale epoch can never
        // succeed) and not Permanent (the *work* is fine; only this
        // incarnation's claim on it is dead).
        DbError::FencedOut(_) => ErrorClass::Fenced,
        // At-rest rot (a stored CRC failure) never heals on retry: the row
        // must be quarantined by the scrubber and re-derived from its
        // source file by the repair pass, not hammered by the loader.
        DbError::DataCorruption(_) => ErrorClass::Permanent,
        _ => ErrorClass::Permanent,
    }
}

/// Stable label for a retried error, for the report's survived-faults map.
/// Matches the server's [`FaultKind`](skydb::fault::FaultKind) labels where
/// a fault kind maps one-to-one onto a client-visible error.
pub fn fault_label(e: &DbError) -> &'static str {
    match e {
        DbError::Protocol(_) => "reset",
        DbError::ServerBusy(_) => "busy",
        DbError::Timeout(_) => "timeout",
        DbError::DiskFull(_) => "disk_full",
        DbError::Corruption(_) => "corruption",
        DbError::DataCorruption(_) => "data_corruption",
        DbError::WriteConflict(_) => "write_conflict",
        DbError::ServerDown(_) => "server_down",
        DbError::FencedOut(_) => "fenced_out",
        DbError::Batch { cause, .. } => fault_label(cause),
        _ => "other",
    }
}

/// Retry, backoff, circuit-breaker and degradation knobs.
///
/// Serialized with the loader configuration; every field has a default so
/// configuration files written before this layer existed stay valid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct RetryPolicy {
    /// Consecutive file-load attempts *without progress* before the file is
    /// reported failed. Progress — the journal advancing, or the degrader
    /// changing level — refreshes the budget.
    pub max_attempts: usize,
    /// First retry delay.
    #[serde(with = "duration_micros")]
    pub backoff_base: Duration,
    /// Multiplier per retry.
    pub backoff_factor: f64,
    /// Ceiling on the (pre-jitter) delay.
    #[serde(with = "duration_micros")]
    pub backoff_cap: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a seeded draw
    /// from `[1 − jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Per-call driver budget handed to every session
    /// ([`Session::set_call_timeout`](skydb::server::Session::set_call_timeout)):
    /// a latency spike beyond it surfaces as a retryable timeout.
    #[serde(with = "opt_duration_micros")]
    pub call_timeout: Option<Duration>,
    /// Consecutive transport failures on one connection before its breaker
    /// trips: the loader reconnects and the file is requeued (0 disables).
    pub breaker_threshold: u64,
    /// Consecutive failed attempts (fleet-wide) before degrading one level.
    pub degrade_after: u64,
    /// Consecutive successful attempts before restoring full batch mode.
    pub restore_after: u64,
    /// Seed for backoff jitter (forked per node, so the fleet's delays are
    /// decorrelated but reproducible).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_millis(2),
            backoff_factor: 2.0,
            backoff_cap: Duration::from_millis(250),
            jitter: 0.25,
            call_timeout: None,
            breaker_threshold: 5,
            degrade_after: 2,
            restore_after: 4,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// Builder-style: stalled-attempt budget.
    pub fn with_max_attempts(mut self, n: usize) -> Self {
        self.max_attempts = n;
        self
    }

    /// Builder-style: breaker threshold (0 disables).
    pub fn with_breaker_threshold(mut self, n: u64) -> Self {
        self.breaker_threshold = n;
        self
    }

    /// Builder-style: degradation trigger / restore streaks.
    pub fn with_degradation(mut self, degrade_after: u64, restore_after: u64) -> Self {
        self.degrade_after = degrade_after;
        self.restore_after = restore_after;
        self
    }

    /// Builder-style: per-call timeout budget.
    pub fn with_call_timeout(mut self, budget: Duration) -> Self {
        self.call_timeout = Some(budget);
        self
    }

    /// Builder-style: jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("retry.max_attempts must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(format!(
                "retry.jitter must be in [0, 1], got {}",
                self.jitter
            ));
        }
        if self.backoff_factor < 1.0 {
            return Err("retry.backoff_factor must be >= 1".into());
        }
        if self.degrade_after == 0 || self.restore_after == 0 {
            return Err("retry.degrade_after and restore_after must be positive".into());
        }
        Ok(())
    }
}

mod duration_micros {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        (d.as_micros() as u64).serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        Ok(Duration::from_micros(u64::deserialize(d)?))
    }
}

mod opt_duration_micros {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Option<Duration>, s: S) -> Result<S::Ok, S::Error> {
        d.map(|d| d.as_micros() as u64).serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Option<Duration>, D::Error> {
        Ok(Option::<u64>::deserialize(d)?.map(Duration::from_micros))
    }
}

/// Exponential backoff with deterministic, seeded jitter.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    factor: f64,
    cap: Duration,
    jitter: f64,
    rng: SplitMix64,
    attempt: u32,
}

impl Backoff {
    /// A backoff stream for one loader node. `stream` (typically the node
    /// index) decorrelates nodes under one seed.
    pub fn new(policy: &RetryPolicy, stream: u64) -> Backoff {
        Backoff {
            base: policy.backoff_base,
            factor: policy.backoff_factor,
            cap: policy.backoff_cap,
            jitter: policy.jitter,
            rng: SplitMix64::new(policy.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            attempt: 0,
        }
    }

    /// The next delay: `base · factor^n`, capped, then jittered.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.base.as_secs_f64() * self.factor.powi(self.attempt as i32);
        self.attempt = self.attempt.saturating_add(1);
        let capped = exp.min(self.cap.as_secs_f64());
        let scale = 1.0 - self.jitter + self.rng.next_f64() * 2.0 * self.jitter;
        Duration::from_secs_f64(capped * scale)
    }

    /// Reset after a success: the next failure starts from `base` again.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Per-connection circuit breaker: counts consecutive transport failures
/// and trips at the threshold, signaling the caller to quarantine the
/// connection (reconnect) and requeue the in-flight file.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u64,
    consecutive: u64,
    trips: u64,
    /// Shared telemetry counter (`breaker_trips`) incremented on every
    /// trip, so the registry sees fleet-wide trips without a final
    /// per-breaker summation pass.
    trips_counter: Option<skyobs::CounterHandle>,
}

impl CircuitBreaker {
    /// A breaker tripping after `threshold` consecutive failures
    /// (0 disables tripping; failures are still counted).
    pub fn new(threshold: u64) -> CircuitBreaker {
        CircuitBreaker {
            threshold,
            consecutive: 0,
            trips: 0,
            trips_counter: None,
        }
    }

    /// Attach a shared telemetry counter that every trip also increments
    /// (the fleet hands every breaker the same `breaker_trips` handle).
    pub fn with_trips_counter(mut self, counter: skyobs::CounterHandle) -> CircuitBreaker {
        self.trips_counter = Some(counter);
        self
    }

    /// Record a transport failure; `true` means the breaker just tripped
    /// and the connection should be replaced.
    pub fn record_failure(&mut self) -> bool {
        self.consecutive += 1;
        if self.threshold > 0 && self.consecutive >= self.threshold {
            self.consecutive = 0;
            self.trips += 1;
            if let Some(c) = &self.trips_counter {
                c.inc();
            }
            return true;
        }
        false
    }

    /// Record a successful attempt.
    pub fn record_success(&mut self) {
        self.consecutive = 0;
    }

    /// Times this breaker has tripped.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

/// One recorded degradation-ladder move, for the night report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DegradeTransition {
    /// Level before the move.
    pub from: u32,
    /// Level after the move.
    pub to: u32,
    /// `"degrade"` (failures accumulated) or `"restore"` (healthy again).
    pub trigger: &'static str,
}

/// Highest degradation level: per-row inserts.
pub const MAX_DEGRADE_LEVEL: u32 = 3;

/// The fleet-shared degradation ladder.
///
/// Level 0 is healthy (the configured array/batch sizes). Each degrade step
/// halves both sizes; at [`MAX_DEGRADE_LEVEL`] the loader falls back to
/// per-row inserts ([`ExecMode::Singleton`]). After `restore_after`
/// consecutive successful attempts the ladder restores straight to level 0
/// — the connection is demonstrably healthy, so there is no reason to creep
/// back up through intermediate sizes.
#[derive(Debug)]
pub struct Degrader {
    degrade_after: u64,
    restore_after: u64,
    inner: Mutex<DegraderInner>,
}

#[derive(Debug)]
struct DegraderInner {
    level: u32,
    fail_streak: u64,
    ok_streak: u64,
    transitions: Vec<DegradeTransition>,
    degraded_since: Option<Instant>,
    degraded_total: Duration,
}

impl Degrader {
    /// A fresh ladder at level 0.
    pub fn new(policy: &RetryPolicy) -> Degrader {
        Degrader {
            degrade_after: policy.degrade_after,
            restore_after: policy.restore_after,
            inner: Mutex::new(DegraderInner {
                level: 0,
                fail_streak: 0,
                ok_streak: 0,
                transitions: Vec::new(),
                degraded_since: None,
                degraded_total: Duration::ZERO,
            }),
        }
    }

    /// The current level.
    pub fn level(&self) -> u32 {
        self.inner.lock().level
    }

    /// The effective loader configuration at the current level.
    pub fn shape(&self, cfg: &LoaderConfig) -> LoaderConfig {
        let level = self.level();
        if level == 0 {
            return cfg.clone();
        }
        let shift = level.min(MAX_DEGRADE_LEVEL);
        let mut out = cfg.clone();
        out.array_size = (cfg.array_size >> shift).max(1);
        out.batch_size = (cfg.batch_size >> shift).max(1).min(out.array_size);
        for v in out.per_table_array_sizes.values_mut() {
            *v = (*v >> shift).max(1);
        }
        if level >= MAX_DEGRADE_LEVEL {
            out.mode = ExecMode::Singleton;
        }
        out
    }

    /// Record a failed attempt; may move the ladder down one level.
    pub fn note_failure(&self) {
        let mut g = self.inner.lock();
        g.ok_streak = 0;
        g.fail_streak += 1;
        if g.fail_streak >= self.degrade_after && g.level < MAX_DEGRADE_LEVEL {
            let from = g.level;
            g.level += 1;
            g.fail_streak = 0;
            let to = g.level;
            g.transitions.push(DegradeTransition {
                from,
                to,
                trigger: "degrade",
            });
            if from == 0 {
                g.degraded_since = Some(Instant::now());
            }
        }
    }

    /// Record a successful attempt; enough in a row restores level 0.
    pub fn note_success(&self) {
        let mut g = self.inner.lock();
        g.fail_streak = 0;
        if g.level == 0 {
            return;
        }
        g.ok_streak += 1;
        if g.ok_streak >= self.restore_after {
            let from = g.level;
            g.level = 0;
            g.ok_streak = 0;
            g.transitions.push(DegradeTransition {
                from,
                to: 0,
                trigger: "restore",
            });
            if let Some(since) = g.degraded_since.take() {
                g.degraded_total += since.elapsed();
            }
        }
    }

    /// Every ladder move so far.
    pub fn transitions(&self) -> Vec<DegradeTransition> {
        self.inner.lock().transitions.clone()
    }

    /// Total wall-clock time spent away from level 0 (an open degraded
    /// interval is counted up to now).
    pub fn degraded_time(&self) -> Duration {
        let g = self.inner.lock();
        g.degraded_total
            + g.degraded_since
                .map(|s| s.elapsed())
                .unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_fault_taxonomy() {
        use ErrorClass::*;
        let cases = [
            (DbError::Protocol("reset".into()), Transient),
            (DbError::ServerBusy("busy".into()), Transient),
            (DbError::Timeout("slow".into()), Transient),
            (DbError::DiskFull("log".into()), Transient),
            (DbError::Corruption("cksum".into()), Transient),
            (DbError::WriteConflict("staged by txn 7".into()), Transient),
            (DbError::ServerDown("crash".into()), ServerLost),
            (DbError::FencedOut("stale epoch".into()), Fenced),
            (DbError::NoTransaction, Permanent),
            (DbError::SessionClosed, Permanent),
            (DbError::InvalidSchema("x".into()), Permanent),
        ];
        for (e, want) in cases {
            assert_eq!(classify(&e), want, "{e}");
        }
        let wrapped = DbError::Batch {
            offset: 1,
            cause: Box::new(DbError::Protocol("reset".into())),
        };
        assert_eq!(classify(&wrapped), Transient);
        assert_eq!(fault_label(&wrapped), "reset");
        assert_eq!(
            fault_label(&DbError::FencedOut("stale epoch".into())),
            "fenced_out"
        );
    }

    #[test]
    fn backoff_grows_caps_and_is_deterministic() {
        let policy = RetryPolicy::default();
        let mut a = Backoff::new(&policy, 0);
        let mut b = Backoff::new(&policy, 0);
        let da: Vec<Duration> = (0..10).map(|_| a.next_delay()).collect();
        let db: Vec<Duration> = (0..10).map(|_| b.next_delay()).collect();
        assert_eq!(da, db, "same seed, same stream → same delays");
        // Grows (up to jitter) then saturates at the cap.
        assert!(da[3] > da[0]);
        let cap = policy.backoff_cap.as_secs_f64() * (1.0 + policy.jitter);
        for d in &da {
            assert!(d.as_secs_f64() <= cap + 1e-9);
        }
        // Different streams decorrelate.
        let mut c = Backoff::new(&policy, 1);
        let dc: Vec<Duration> = (0..10).map(|_| c.next_delay()).collect();
        assert_ne!(da, dc);
        // Reset restarts the exponent.
        a.reset();
        assert!(a.next_delay() < Duration::from_millis(3));
    }

    #[test]
    fn breaker_trips_on_consecutive_failures_only() {
        let mut b = CircuitBreaker::new(3);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        b.record_success(); // streak broken
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third consecutive failure trips");
        assert_eq!(b.trips(), 1);
        // Disabled breaker never trips.
        let mut off = CircuitBreaker::new(0);
        for _ in 0..100 {
            assert!(!off.record_failure());
        }
    }

    #[test]
    fn degrader_ladder_round_trip() {
        let policy = RetryPolicy::default().with_degradation(2, 3);
        let d = Degrader::new(&policy);
        let cfg = LoaderConfig::test()
            .with_array_size(1000)
            .with_batch_size(40);
        assert_eq!(d.shape(&cfg).array_size, 1000);

        // 2 failures per level; 3 levels to the bottom.
        for _ in 0..6 {
            d.note_failure();
        }
        assert_eq!(d.level(), MAX_DEGRADE_LEVEL);
        let floor = d.shape(&cfg);
        assert_eq!(floor.mode, ExecMode::Singleton);
        assert_eq!(floor.array_size, 125);
        assert_eq!(floor.batch_size, 5);
        floor.validate().unwrap();

        // Intermediate level halves sizes without changing mode.
        let d2 = Degrader::new(&policy);
        d2.note_failure();
        d2.note_failure();
        let half = d2.shape(&cfg);
        assert_eq!(half.array_size, 500);
        assert_eq!(half.batch_size, 20);
        assert_eq!(half.mode, ExecMode::Bulk);

        // Successes restore level 0 after the streak.
        d.note_success();
        d.note_success();
        assert_eq!(d.level(), MAX_DEGRADE_LEVEL, "streak not reached yet");
        d.note_success();
        assert_eq!(d.level(), 0);
        let moves = d.transitions();
        assert_eq!(moves.len(), 4, "3 degrades + 1 restore");
        assert_eq!(moves.last().unwrap().trigger, "restore");
        assert!(d.degraded_time() > Duration::ZERO);
    }

    #[test]
    fn degraded_config_always_validates() {
        let policy = RetryPolicy::default().with_degradation(1, 1);
        let d = Degrader::new(&policy);
        let cfg = LoaderConfig::test().with_array_size(3).with_batch_size(2);
        for _ in 0..5 {
            d.note_failure();
            d.shape(&cfg).validate().unwrap();
        }
    }

    #[test]
    fn policy_validation() {
        RetryPolicy::default().validate().unwrap();
        assert!(RetryPolicy::default()
            .with_max_attempts(0)
            .validate()
            .is_err());
        let p = RetryPolicy {
            jitter: 1.5,
            ..RetryPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = RetryPolicy {
            backoff_factor: 0.5,
            ..RetryPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = RetryPolicy {
            degrade_after: 0,
            ..RetryPolicy::default()
        };
        assert!(p.validate().is_err());
    }
}
