//! # skyloader — parallel bulk loading with array buffering
//!
//! A faithful reproduction of the SkyLoader framework from *"Optimized Data
//! Loading for a Multi-Terabyte Sky Survey Repository"* (Cai, Aydt &
//! Brunner, SC 2005): the framework that loads interleaved, multi-table
//! sky-survey catalog data into a relational repository fast enough to keep
//! up with the telescope.
//!
//! The four pillars of the framework (§4) map to modules:
//!
//! 1. **An efficient bulk-loading algorithm** (paper Fig. 3) — [`bulk`]:
//!    batch inserts with exact skip-the-error-row recovery.
//! 2. **An effective buffering data structure** — [`arrayset`]: the
//!    `array-set` of per-table arrays flushed in parent-before-child order,
//!    including the paper's future-work extensions (per-table capacities
//!    from a config file, memory high-water mark).
//! 3. **Optimized parallelism** — [`parallel`]: one loader per cluster
//!    node with on-the-fly file assignment.
//! 4. **Database and system tuning** — [`tune`]: the §4.5 guidelines as
//!    executable presets plus batch/array autotuning sweeps.
//!
//! Plus [`recovery`] (checkpoint journal for crash-resume), [`resilience`]
//! (retry/backoff/circuit-breaker/degradation policy for flaky links) and
//! [`report`] (per-file/night reports and the modeled-cost breakdown).
//!
//! ## Quick start
//!
//! ```
//! use skydb::{DbConfig, Server};
//! use skycat::gen::{generate_file, GenConfig};
//! use skyloader::{load_catalog_file, LoaderConfig};
//!
//! // A database server with the 23-table repository schema.
//! let server = Server::start(DbConfig::test());
//! skycat::create_all(server.engine()).unwrap();
//! skycat::seed_static(server.engine()).unwrap();
//! skycat::seed_observation(server.engine(), 1, 100).unwrap();
//!
//! // A synthetic catalog file and a bulk load.
//! let file = generate_file(&GenConfig::small(42, 100), 0);
//! let session = server.connect();
//! let report = load_catalog_file(&session, &LoaderConfig::paper(), &file).unwrap();
//! assert_eq!(report.rows_loaded, file.expected.total_loadable());
//! ```

#![warn(missing_docs)]

pub mod arrayset;
pub mod audit;
pub mod bulk;
pub mod campaign;
pub mod chaos;
pub mod cli;
pub mod config;
pub mod fleet;
pub mod live;
pub mod parallel;
pub mod recovery;
pub mod repair;
pub mod report;
pub mod reprocess;
pub mod resilience;
pub mod serving;
pub mod shardload;
pub mod tune;
pub mod twophase;

pub use arrayset::{ArraySet, SealedArraySet};
pub use audit::{audit_repository, AuditReport};
pub use bulk::{load_catalog_file, load_catalog_text, load_catalog_text_with_journal};
pub use campaign::{
    resume_campaign, roll_back_campaign, run_campaign, CampaignConfig, CampaignManifest,
    CampaignPhase, CampaignReport,
};
pub use chaos::{
    run_campaign_chaos, run_campaign_chaos_with_obs, run_chaos, run_chaos_with_obs,
    run_scrub_chaos, run_scrub_chaos_with_obs, run_shard_chaos, run_shard_chaos_with_obs,
    CampaignChaosConfig, CampaignChaosReport, ChaosConfig, ChaosReport, ScrubChaosConfig,
    ScrubChaosReport, ShardChaosConfig, ShardChaosReport,
};
pub use config::{CommitPolicy, ExecMode, LoaderConfig, PipelineMode};
pub use fleet::{Assignment, FleetPolicy, FleetSupervisor, Lease};
pub use live::{run_live, LiveConfig, LiveReport};
pub use parallel::{load_night, load_night_with_journal, NightError};
pub use recovery::LoadJournal;
pub use repair::{run_repair, source_file_for, RepairReport};
pub use report::{FailedFile, FileReport, ModeledCost, NightReport, SkipKind, SkipRecord};
pub use reprocess::{
    acquire_reprocess_fence, delete_observation, delete_observation_fenced, reprocess_observation,
    PurgeReport,
};
pub use serving::{run_serve_load, QueueStats, ServeLoadConfig, ServeLoadOutcome, ServeLoadReport};
pub use shardload::{
    clean_reference, fresh_catalog_server, shard_epoch_journal_key, RoutedFile, ShardLoadConfig,
    ShardLoadReport, ShardLoader, ShardReference, ShardRouter, ShardSupervisor,
    ShardSupervisorConfig, ZONED_TABLES,
};

pub use resilience::{
    classify, fault_label, Backoff, CircuitBreaker, DegradeTransition, Degrader, ErrorClass,
    RetryPolicy, MAX_DEGRADE_LEVEL,
};
pub use tune::{autotune_array_size, autotune_batch_size, SweepResult, TuningGuideline};
pub use twophase::{load_two_phase, start_task_server, TwoPhaseReport};

// Re-export the commonly paired substrates so downstream users need only
// one dependency.
pub use skycat;
pub use skydb;
pub use skyhtm;
pub use skyobs;
pub use skysim;
