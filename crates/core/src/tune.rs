//! Tuning helpers: §4.5's guidelines as executable presets, plus an
//! autotuner that sweeps the paper's two tunables on a sample file.
//!
//! §5.2: "experimenting with a variety of batch sizes and choosing one that
//! is close to optimal for a typical data file can improve performance
//! markedly over a random choice." [`autotune_batch_size`] is that
//! experiment, automated: load a sample file at each candidate setting on a
//! fresh server and pick the lowest modeled cost.

use std::sync::Arc;
use std::time::Duration;

use serde::Serialize;

use skycat::CatalogFile;
use skydb::server::Server;

use crate::bulk::load_catalog_file;
use crate::config::LoaderConfig;
use crate::report::ModeledCost;

/// One sweep measurement.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SweepPoint {
    /// The candidate value (batch size or array size).
    pub value: usize,
    /// Modeled serial cost of loading the sample at this setting (micros).
    pub modeled_us: u64,
}

/// Result of an autotune sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepResult {
    /// The winning candidate.
    pub best: usize,
    /// Every measured point, in candidate order.
    pub points: Vec<SweepPoint>,
}

fn run_candidate(
    factory: &dyn Fn() -> Arc<Server>,
    file: &CatalogFile,
    cfg: &LoaderConfig,
) -> Duration {
    let server = factory();
    let session = server.connect();
    let report = load_catalog_file(&session, cfg, file).expect("sample load");
    ModeledCost::measure(&server, report.client_paging).total()
}

/// Sweep `candidates` batch sizes over a sample file, returning the value
/// with the lowest modeled cost. `factory` must produce a fresh,
/// schema-initialized server per run so measurements are independent.
pub fn autotune_batch_size(
    factory: impl Fn() -> Arc<Server>,
    file: &CatalogFile,
    base: &LoaderConfig,
    candidates: &[usize],
) -> SweepResult {
    sweep(
        &factory,
        file,
        candidates,
        |cfg, v| cfg.clone().with_batch_size(v),
        base,
    )
}

/// Sweep `candidates` array sizes over a sample file.
pub fn autotune_array_size(
    factory: impl Fn() -> Arc<Server>,
    file: &CatalogFile,
    base: &LoaderConfig,
    candidates: &[usize],
) -> SweepResult {
    sweep(
        &factory,
        file,
        candidates,
        |cfg, v| cfg.clone().with_array_size(v),
        base,
    )
}

fn sweep(
    factory: &dyn Fn() -> Arc<Server>,
    file: &CatalogFile,
    candidates: &[usize],
    apply: impl Fn(&LoaderConfig, usize) -> LoaderConfig,
    base: &LoaderConfig,
) -> SweepResult {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let mut points = Vec::with_capacity(candidates.len());
    for &v in candidates {
        let cfg = apply(base, v);
        let cost = run_candidate(factory, file, &cfg);
        points.push(SweepPoint {
            value: v,
            modeled_us: cost.as_micros() as u64,
        });
    }
    let best = points
        .iter()
        .min_by_key(|p| p.modeled_us)
        .expect("non-empty")
        .value;
    SweepResult { best, points }
}

/// The §4.5 tuning checklist as data, for reports and the quickstart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TuningGuideline {
    /// §4.5.1: drop secondary indexes during load, rebuild after.
    DelayIndexBuilding,
    /// §4.5.2: commit infrequently.
    ReduceCommitFrequency,
    /// §4.5.3: separate data, index and log devices.
    SeparateDevices,
    /// §4.5.4: presort input by primary key.
    PresortData,
    /// §4.5.5: shrink the block cache during load.
    ShrinkDataCache,
}

/// All §4.5 guidelines in paper order.
pub const TUNING_GUIDELINES: [TuningGuideline; 5] = [
    TuningGuideline::DelayIndexBuilding,
    TuningGuideline::ReduceCommitFrequency,
    TuningGuideline::SeparateDevices,
    TuningGuideline::PresortData,
    TuningGuideline::ShrinkDataCache,
];

impl TuningGuideline {
    /// Paper section implementing this guideline.
    pub fn section(self) -> &'static str {
        match self {
            TuningGuideline::DelayIndexBuilding => "4.5.1",
            TuningGuideline::ReduceCommitFrequency => "4.5.2",
            TuningGuideline::SeparateDevices => "4.5.3",
            TuningGuideline::PresortData => "4.5.4",
            TuningGuideline::ShrinkDataCache => "4.5.5",
        }
    }

    /// One-line description.
    pub fn describe(self) -> &'static str {
        match self {
            TuningGuideline::DelayIndexBuilding => {
                "drop secondary indexes during the catch-up load; rebuild afterwards"
            }
            TuningGuideline::ReduceCommitFrequency => {
                "commit very infrequently (per file, not per batch)"
            }
            TuningGuideline::SeparateDevices => {
                "place data, indexes and logs on separate disk devices"
            }
            TuningGuideline::PresortData => "presort catalog files by primary key",
            TuningGuideline::ShrinkDataCache => {
                "allocate a smaller database block cache while loading"
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycat::gen::{generate_file, GenConfig};
    use skydb::config::DbConfig;
    use skysim::time::TimeScale;

    fn factory() -> Arc<Server> {
        let server = Server::start(DbConfig::paper(TimeScale::ZERO));
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        server
    }

    #[test]
    fn batch_sweep_prefers_batching_over_tiny_batches() {
        let file = generate_file(&GenConfig::small(41, 100), 0);
        let result = autotune_batch_size(factory, &file, &LoaderConfig::test(), &[1, 2, 40]);
        assert_eq!(result.points.len(), 3);
        assert_ne!(result.best, 1, "batch size 1 should never win");
        let p1 = result.points.iter().find(|p| p.value == 1).unwrap();
        let p40 = result.points.iter().find(|p| p.value == 40).unwrap();
        assert!(
            p1.modeled_us > p40.modeled_us * 3,
            "batch 1 ({}) should cost far more than batch 40 ({})",
            p1.modeled_us,
            p40.modeled_us
        );
    }

    #[test]
    fn array_sweep_runs_and_reports_all_points() {
        let file = generate_file(&GenConfig::small(43, 100), 0);
        let result = autotune_array_size(factory, &file, &LoaderConfig::test(), &[200, 1000]);
        assert_eq!(result.points.len(), 2);
        assert!(result.points.iter().all(|p| p.modeled_us > 0));
    }

    #[test]
    fn guidelines_cover_section_4_5() {
        assert_eq!(TUNING_GUIDELINES.len(), 5);
        let sections: Vec<&str> = TUNING_GUIDELINES.iter().map(|g| g.section()).collect();
        assert_eq!(sections, vec!["4.5.1", "4.5.2", "4.5.3", "4.5.4", "4.5.5"]);
        for g in TUNING_GUIDELINES {
            assert!(!g.describe().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_sweep_rejected() {
        let file = generate_file(&GenConfig::small(1, 100), 0);
        autotune_batch_size(factory, &file, &LoaderConfig::test(), &[]);
    }
}
