//! `skyload` — the SkyLoader command-line driver. See `skyloader::cli`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match skyloader::cli::parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    match skyloader::cli::execute(cmd, &mut stdout) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
