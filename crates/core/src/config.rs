//! Loader configuration: the paper's user-tunable constants and tuning
//! knobs.
//!
//! The two headline tunables are `array-size` and `batch-size` (§4.2):
//! "The algorithm, bulk-loading, contains two user-tunable constants,
//! array-size and batch-size, controlling the size of an array and the size
//! of a batch, respectively." §4.3's future work adds per-table array sizes
//! from a configuration file and a memory high-water mark — both
//! implemented here.

use std::collections::HashMap;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::fleet::FleetPolicy;
use crate::resilience::RetryPolicy;

/// How inserts are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Batched inserts through `execute_batch` (the paper's algorithm).
    Bulk,
    /// One `execute` call per row (the Fig. 4 non-bulk baseline).
    Singleton,
}

/// Whether a loader overlaps parsing with flushing (double buffering).
///
/// The paper's loader is strictly serial within one process: it fills the
/// array-set, then the same thread drains it through the wire protocol.
/// `Double` gives each loader a second array-set and a dedicated flusher
/// worker: while the flusher drains a sealed array-set (preserving the
/// parent-before-child flush order and the Fig. 3 error-repack semantics),
/// the parse thread fills the other. Handoff is a bounded channel, so a
/// parse thread that runs far ahead blocks rather than buffering unbounded
/// rows — at most two array-sets are resident, both accounted against the
/// client [`MemoryModel`](skysim::mem::MemoryModel) budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PipelineMode {
    /// Serial parse → flush on one thread (the paper's loader).
    #[default]
    Off,
    /// Double-buffered: parse and flush overlap via a flusher worker.
    Double,
}

/// When the loader commits (§4.5.2: "we chose to execute commits very
/// infrequently").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommitPolicy {
    /// Commit once per input file (the paper's production choice).
    PerFile,
    /// Commit after every flush cycle.
    PerFlush,
    /// Commit after every `n` batch calls (ablation A3 uses `EveryBatches(1)`).
    EveryBatches(u64),
}

/// Full loader configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoaderConfig {
    /// Rows per memory-resident array before a bulk-loading cycle triggers
    /// (the paper's optimum for their data was ~1000, Fig. 6).
    pub array_size: usize,
    /// Rows per batched database call (the paper's optimum was 40–50,
    /// Fig. 5).
    pub batch_size: usize,
    /// Bulk or singleton execution.
    pub mode: ExecMode,
    /// Serial or double-buffered (pipelined) loading. Defaults to `Off`:
    /// existing configuration files keep the paper's serial behaviour.
    #[serde(default)]
    pub pipeline: PipelineMode,
    /// Commit frequency.
    pub commit_policy: CommitPolicy,
    /// §4.3 future work, implemented: per-table overrides of `array_size`
    /// (key = table name).
    #[serde(default)]
    pub per_table_array_sizes: HashMap<String, usize>,
    /// §4.3 future work, implemented: trigger a bulk-loading cycle whenever
    /// the aggregate buffered footprint reaches this many bytes.
    #[serde(default)]
    pub memory_high_water_bytes: Option<u64>,
    /// Client heap budget in bytes for the paging model (the paper's
    /// loaders ran on 1 GB Condor nodes inside a JVM heap).
    pub client_heap_budget: u64,
    /// Multiplier applied to raw row footprints to model managed-runtime
    /// overhead (boxed values, object headers) — what made the paper's
    /// array-set outgrow client memory at array sizes past ~1000.
    pub client_overhead_factor: f64,
    /// Modeled page-fault penalty on the client.
    #[serde(with = "duration_micros")]
    pub client_fault_penalty: Duration,
    /// Modeled client CPU per input line (parse + validate + transform +
    /// bind). This is the parse *stage* of the pipeline; the paper's Condor
    /// clients did real per-row work here (§3), which is why several of them
    /// were needed to saturate the server (§4.4). Omitting the field in a
    /// JSON config models parsing as free (stage timings degenerate to the
    /// flush stage alone).
    #[serde(default, with = "duration_micros")]
    pub client_parse_cost: Duration,
    /// Cap on per-row skip records kept with full detail (all skips are
    /// always *counted*).
    pub max_skip_details: usize,
    /// Retry / backoff / circuit-breaker / degradation policy for the
    /// parallel loader fleet. Defaults keep configuration files written
    /// before the resilience layer existed valid.
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Lease-TTL / heartbeat / reclaim policy for loader-fleet
    /// supervision. Defaults keep configuration files written before the
    /// fleet layer existed valid.
    #[serde(default)]
    pub fleet: FleetPolicy,
    /// Suffix appended to every catalog table name when preparing inserts:
    /// a reprocessing campaign sets e.g. `"__shadow1"` to route the whole
    /// fenced load pipeline into its shadow tables while parsing,
    /// array-set bookkeeping, and reports keep the logical (live) names.
    /// Empty (the default, and what pre-campaign configuration files
    /// deserialize to) loads the live tables.
    #[serde(default)]
    pub table_suffix: String,
}

mod duration_micros {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        (d.as_micros() as u64).serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        Ok(Duration::from_micros(u64::deserialize(d)?))
    }
}

impl LoaderConfig {
    /// The paper's production configuration: bulk, batch 40, array 1000,
    /// infrequent commits.
    pub fn paper() -> Self {
        LoaderConfig {
            array_size: 1000,
            batch_size: 40,
            mode: ExecMode::Bulk,
            pipeline: PipelineMode::Off,
            commit_policy: CommitPolicy::PerFile,
            per_table_array_sizes: HashMap::new(),
            memory_high_water_bytes: None,
            // Calibrated so the array-set outgrows the client's resident
            // budget just past array-size 1000, reproducing the Fig. 6
            // knee (the paper's loaders ran inside a JVM heap on 1 GB
            // Condor nodes shared with other processes).
            client_heap_budget: 1_950_000,
            client_overhead_factor: 6.0,
            client_fault_penalty: Duration::from_micros(80),
            // Zero keeps every seed experiment bit-identical (the paper
            // never modeled client parse CPU). The pipeline ablation and
            // tests opt in via `with_parse_cost`, which is the only way
            // `PipelineMode::Double` has anything to overlap.
            client_parse_cost: Duration::ZERO,
            max_skip_details: 1000,
            retry: RetryPolicy::default(),
            fleet: FleetPolicy::default(),
            table_suffix: String::new(),
        }
    }

    /// A test configuration: bulk, unconstrained client memory.
    pub fn test() -> Self {
        LoaderConfig {
            client_heap_budget: u64::MAX / 4,
            client_fault_penalty: Duration::ZERO,
            ..LoaderConfig::paper()
        }
    }

    /// The Fig. 4 non-bulk baseline.
    pub fn non_bulk() -> Self {
        LoaderConfig {
            mode: ExecMode::Singleton,
            ..LoaderConfig::test()
        }
    }

    /// Builder-style: set `array_size`.
    pub fn with_array_size(mut self, n: usize) -> Self {
        self.array_size = n;
        self
    }

    /// Builder-style: set `batch_size`.
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.batch_size = n;
        self
    }

    /// Builder-style: set the commit policy.
    pub fn with_commit_policy(mut self, p: CommitPolicy) -> Self {
        self.commit_policy = p;
        self
    }

    /// Builder-style: set the pipeline mode.
    pub fn with_pipeline(mut self, p: PipelineMode) -> Self {
        self.pipeline = p;
        self
    }

    /// Builder-style: set the modeled per-line client parse cost.
    pub fn with_parse_cost(mut self, cost: Duration) -> Self {
        self.client_parse_cost = cost;
        self
    }

    /// Builder-style: set the client heap budget.
    pub fn with_client_heap_budget(mut self, bytes: u64) -> Self {
        self.client_heap_budget = bytes;
        self
    }

    /// Builder-style: set the retry/resilience policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder-style: set the fleet-supervision (lease/fencing) policy.
    pub fn with_fleet(mut self, fleet: FleetPolicy) -> Self {
        self.fleet = fleet;
        self
    }

    /// Builder-style: route prepared inserts to `<table><suffix>` (shadow
    /// tables of a reprocessing campaign).
    pub fn with_table_suffix(mut self, suffix: &str) -> Self {
        self.table_suffix = suffix.to_owned();
        self
    }

    /// Builder-style: override one table's array size.
    pub fn with_table_array_size(mut self, table: &str, n: usize) -> Self {
        self.per_table_array_sizes.insert(table.to_owned(), n);
        self
    }

    /// The array size in effect for `table`.
    pub fn array_size_for(&self, table: &str) -> usize {
        self.per_table_array_sizes
            .get(table)
            .copied()
            .unwrap_or(self.array_size)
    }

    /// Load from a JSON configuration file (§4.3: "make use of a
    /// configuration file to support arrays with variable number of rows").
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.array_size == 0 {
            return Err("array_size must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.batch_size > self.array_size {
            return Err(format!(
                "batch_size {} exceeds array_size {} (the paper requires batch-size << array-size)",
                self.batch_size, self.array_size
            ));
        }
        if self.client_overhead_factor < 1.0 {
            return Err("client_overhead_factor must be >= 1".into());
        }
        self.retry.validate()?;
        self.fleet.validate()
    }
}

impl Default for LoaderConfig {
    fn default() -> Self {
        LoaderConfig::test()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_paper() {
        let c = LoaderConfig::paper();
        assert_eq!(c.array_size, 1000);
        assert_eq!(c.batch_size, 40);
        assert_eq!(c.mode, ExecMode::Bulk);
        assert_eq!(c.commit_policy, CommitPolicy::PerFile);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(LoaderConfig::test().with_array_size(0).validate().is_err());
        assert!(LoaderConfig::test().with_batch_size(0).validate().is_err());
        assert!(LoaderConfig::test()
            .with_array_size(10)
            .with_batch_size(40)
            .validate()
            .is_err());
    }

    #[test]
    fn per_table_overrides() {
        let c = LoaderConfig::test()
            .with_array_size(500)
            .with_table_array_size("objects", 2000);
        assert_eq!(c.array_size_for("objects"), 2000);
        assert_eq!(c.array_size_for("fingers"), 500);
    }

    #[test]
    fn json_roundtrip() {
        let c = LoaderConfig::paper()
            .with_table_array_size("objects", 1500)
            .with_commit_policy(CommitPolicy::EveryBatches(10));
        let json = c.to_json();
        let back = LoaderConfig::from_json(&json).unwrap();
        assert_eq!(back.array_size, c.array_size);
        assert_eq!(back.array_size_for("objects"), 1500);
        assert_eq!(back.commit_policy, CommitPolicy::EveryBatches(10));
        assert_eq!(back.client_fault_penalty, c.client_fault_penalty);
    }

    #[test]
    fn config_file_example_parses() {
        // The shape a user would write on disk.
        let json = r#"{
            "array_size": 800,
            "batch_size": 50,
            "mode": "Bulk",
            "commit_policy": "PerFile",
            "per_table_array_sizes": {"objects": 1200, "fingers": 4000},
            "memory_high_water_bytes": 8388608,
            "client_heap_budget": 67108864,
            "client_overhead_factor": 6.0,
            "client_fault_penalty": 80,
            "max_skip_details": 100
        }"#;
        let c = LoaderConfig::from_json(json).unwrap();
        assert_eq!(c.array_size_for("fingers"), 4000);
        assert_eq!(c.memory_high_water_bytes, Some(8 << 20));
        // Configs written before the pipelined loader existed stay valid:
        // pipeline defaults Off, parse cost defaults to free.
        assert_eq!(c.pipeline, PipelineMode::Off);
        assert_eq!(c.client_parse_cost, Duration::ZERO);
        c.validate().unwrap();
    }

    #[test]
    fn retry_policy_defaults_and_roundtrips() {
        // Configs written before the resilience layer stay valid…
        assert_eq!(LoaderConfig::paper().retry, RetryPolicy::default());
        // …and tuned policies survive the JSON round trip.
        let tweaked = LoaderConfig::paper().with_retry(
            RetryPolicy::default()
                .with_breaker_threshold(9)
                .with_call_timeout(Duration::from_millis(7))
                .with_degradation(3, 6),
        );
        let back = LoaderConfig::from_json(&tweaked.to_json()).unwrap();
        assert_eq!(back.retry.breaker_threshold, 9);
        assert_eq!(back.retry.call_timeout, Some(Duration::from_millis(7)));
        assert_eq!(back.retry.degrade_after, 3);
        assert_eq!(back.retry, tweaked.retry);
    }

    #[test]
    fn pipeline_knob_roundtrips() {
        let c = LoaderConfig::paper().with_pipeline(PipelineMode::Double);
        let back = LoaderConfig::from_json(&c.to_json()).unwrap();
        assert_eq!(back.pipeline, PipelineMode::Double);
        assert_eq!(back.client_parse_cost, c.client_parse_cost);
        let explicit = r#"{
            "array_size": 1000, "batch_size": 40, "mode": "Bulk",
            "pipeline": "Double", "commit_policy": "PerFile",
            "client_heap_budget": 67108864, "client_overhead_factor": 6.0,
            "client_fault_penalty": 80, "client_parse_cost": 60,
            "max_skip_details": 100
        }"#;
        let c = LoaderConfig::from_json(explicit).unwrap();
        assert_eq!(c.pipeline, PipelineMode::Double);
        assert_eq!(c.client_parse_cost, Duration::from_micros(60));
    }
}
