//! Parallel loading across Condor-style nodes (§4.4).
//!
//! "we use as many Condor processes as possible to saturate the CPUs on the
//! database server … we assign unloaded data sets to the Condor nodes 'on
//! the fly' rather than dividing the data sets evenly among the Condor
//! nodes."
//!
//! [`load_night`] runs one loader per node, each with its own database
//! session, pulling files from a shared queue (dynamic assignment) or from
//! a round-robin pre-partition (the rejected baseline, kept for ablation
//! A2).
//!
//! Dynamic assignment is **lease-based** (see [`crate::fleet`]): every file
//! grant carries a fencing epoch and a TTL, healthy loaders heartbeat
//! between attempts, and the supervisor reclaims expired leases — so a
//! loader killed mid-file has its file reassigned, and a stalled loader
//! that wakes up as a zombie finds its flushes rejected at the session
//! layer ([`DbError::FencedOut`]) before a single stale row lands. The
//! checkpoint journal's watermark keeps reassigned files exactly-once, and
//! its epoch manifest lets a restarted coordinator issue strictly newer
//! leases.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use skycat::CatalogFile;
use skydb::fault::FaultKind;
use skydb::server::{Server, Session};
use skydb::wire::Fence;
use skysim::cluster::AssignmentPolicy;
use skysim::time::Waiter;

use crate::config::LoaderConfig;
use crate::fleet::{Assignment, FleetSupervisor, Lease};
use crate::recovery::LoadJournal;
use crate::report::{FailedFile, FileReport, NightReport};
use crate::resilience::{classify, fault_label, Backoff, CircuitBreaker, Degrader, ErrorClass};

/// Bounded number of extra rounds for files whose connection's circuit
/// breaker tripped mid-load under *static* assignment. (Dynamic assignment
/// bounds reassignments per file via the fleet policy's reclaim and
/// requeue budgets instead.)
const MAX_REQUEUE_ROUNDS: usize = 64;

/// A night-level orchestration failure: a loader worker died (panicked),
/// or — from [`load_night`] — the night ended with unretirable files.
/// Per-file failures a caller may want to inspect are in
/// [`NightReport::failed_files`]; `NightError` is for the cases where no
/// useful report exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NightError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for NightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "night load failed: {}", self.message)
    }
}

impl std::error::Error for NightError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "loader worker panicked".to_owned()
    }
}

/// Load an observation's files with `nodes` parallel loader processes.
///
/// Returns an error if any file could not be retired within the configured
/// retry/requeue budget, or if a loader worker died (row-level errors are
/// skipped and reported, as in the paper). Callers that prefer a report
/// with the per-file failure list use [`load_night_with_journal`] and
/// inspect [`NightReport::failed_files`].
pub fn load_night(
    server: &Arc<Server>,
    files: &[CatalogFile],
    cfg: &LoaderConfig,
    nodes: usize,
    policy: AssignmentPolicy,
) -> Result<NightReport, NightError> {
    let night = load_night_with_journal(server, files, cfg, nodes, policy, None)?;
    if let Some(f) = night.failed_files.first() {
        return Err(NightError {
            message: format!("loading {} failed: {}", f.file, f.error),
        });
    }
    Ok(night)
}

/// Per-node retry state: the connection's circuit breaker and its seeded
/// backoff stream.
struct NodeState {
    breaker: CircuitBreaker,
    backoff: Backoff,
}

/// How one assignment of one file to one node ended.
enum FileOutcome {
    /// Loaded, failed permanently, or given up: do not reassign.
    Retired,
    /// Breaker trip: the file should be requeued on a healthy session.
    Requeue,
    /// The lease was reclaimed (or the flush fenced out) mid-file: the
    /// new holder owns the outcome; nothing to do here.
    TakenAway,
}

/// The first `keep` lines of `text` (the whole text if it has fewer) —
/// what a loader killed or frozen mid-file managed to consume.
fn line_prefix(text: &str, keep: usize) -> &str {
    if keep == 0 {
        return "";
    }
    match text.split_inclusive('\n').nth(keep - 1) {
        Some(last) => {
            let end = last.as_ptr() as usize - text.as_ptr() as usize + last.len();
            &text[..end]
        }
        None => text,
    }
}

/// [`load_night`] with an optional shared checkpoint journal.
///
/// Connection-level failures (driver timeouts, resets, busy rejections,
/// disk-full commits, corrupt-payload rejections) are retried per
/// `cfg.retry`: roll back the broken transaction, back off with seeded
/// jitter, then reload. With a journal the retry resumes from the last
/// commit and the attempt budget refreshes whenever an attempt *made
/// progress* (the journal advanced) or the fleet changed degradation level
/// — a long file on a flaky link may take many resumes but always
/// converges. Without a journal, any rows committed before the failure
/// re-surface as PK-duplicate skips, so the repository still converges to
/// exactly one copy of every row.
///
/// Under dynamic assignment every grant is a lease (`cfg.fleet`): loaders
/// heartbeat between attempts, expired leases are reclaimed and their
/// files reassigned under a bumped fencing epoch, and a zombie holder's
/// stale flushes are rejected by the database before anything applies. A
/// connection whose breaker trips is quarantined: the loader reconnects
/// and the in-flight file is requeued (charging the per-file requeue
/// budget, which is separate from — and larger than — the reclaim
/// budget). Files that cannot be retired (including everything pending
/// when the server crashes) are reported in [`NightReport::failed_files`].
///
/// `Err` is reserved for orchestration failures — a loader worker dying —
/// not for per-file load failures.
pub fn load_night_with_journal(
    server: &Arc<Server>,
    files: &[CatalogFile],
    cfg: &LoaderConfig,
    nodes: usize,
    policy: AssignmentPolicy,
    journal: Option<&LoadJournal>,
) -> Result<NightReport, NightError> {
    assert!(nodes > 0, "need at least one loader node");
    let retry = &cfg.retry;
    let fleet = &cfg.fleet;
    // One session per node, like one loader process per Condor node. The
    // Mutex allows a tripped connection to be swapped for a fresh one.
    // The coordinator's telemetry registry: the server's registry, which by
    // default is also the engine's. Every counter the night report needs is
    // incremented here as the event happens; the report is a view over the
    // closing snapshot delta (the counter-merge-drift fix: final assembly,
    // per-file accounting, and chaos aggregation all read one ledger).
    let obs = server.obs().clone();
    let baseline = obs.snapshot();
    let retries = obs.counter("retries");
    let loader_kills = obs.counter("loader_kills");
    let loader_stalls = obs.counter("loader_stalls");
    let fencing_rejections = obs.counter("fleet.fence_rejections");
    let backoff_waits = obs.counter("backoff.waits");
    let backoff_wait_us = obs.counter("backoff.wait_us");
    let breaker_trips = obs.counter("breaker_trips");
    let sessions: Vec<Mutex<Session>> = (0..nodes)
        .map(|_| {
            let s = server.connect();
            s.set_call_timeout(retry.call_timeout);
            Mutex::new(s)
        })
        .collect();
    let node_states: Vec<Mutex<NodeState>> = (0..nodes)
        .map(|i| {
            Mutex::new(NodeState {
                breaker: CircuitBreaker::new(retry.breaker_threshold)
                    .with_trips_counter(breaker_trips.clone()),
                backoff: Backoff::new(retry, i as u64),
            })
        })
        .collect();
    let degrader = Degrader::new(retry);
    let waiter = Waiter::new(server.engine().scale());
    let reports: Mutex<Vec<FileReport>> = Mutex::new(Vec::with_capacity(files.len()));
    let failed: Mutex<Vec<FailedFile>> = Mutex::new(Vec::new());

    let give_up = |file: &CatalogFile, why: String| {
        failed.lock().push(FailedFile {
            file: file.name.clone(),
            error: why,
        });
    };

    // The per-attempt retry loop shared by both assignment policies.
    // `heartbeat` renews the node's lease (always `true` under static
    // assignment, which has no leases).
    let drive_file = |node_idx: usize,
                      file: &CatalogFile,
                      lease: Option<&Lease>,
                      heartbeat: &(dyn Fn(&Lease) -> bool + Sync)|
     -> FileOutcome {
        let mut stalled = 0usize;
        let mut attempts = 0u64;
        let mut last_level = degrader.level();
        if let Some(l) = lease {
            sessions[node_idx].lock().set_fence(Some(Fence {
                key: l.key,
                epoch: l.epoch,
            }));
        }
        let clear_fence = || {
            if lease.is_some() {
                sessions[node_idx].lock().set_fence(None);
            }
        };
        loop {
            // Renew the lease before burning time on an attempt. A failed
            // renewal means we were presumed dead and the file reassigned:
            // discard the half-done transaction and walk away — the new
            // holder resumes from the journal.
            if let Some(l) = lease {
                if !heartbeat(l) {
                    let s = sessions[node_idx].lock();
                    let _ = s.rollback();
                    s.set_fence(None);
                    return FileOutcome::TakenAway;
                }
            }
            // Load under the degradation ladder's current shape.
            let effective = degrader.shape(cfg);
            let progress_before = journal.map(|j| j.committed_lines(&file.name));
            let result = {
                let session = sessions[node_idx].lock();
                match journal {
                    Some(j) => crate::bulk::load_catalog_text_with_journal(
                        &session, &effective, &file.name, &file.text, j,
                    ),
                    None => {
                        crate::bulk::load_catalog_text(&session, &effective, &file.name, &file.text)
                    }
                }
            };
            let err = match result {
                Ok(mut report) => {
                    report.retries = attempts;
                    degrader.note_success();
                    let mut st = node_states[node_idx].lock();
                    st.breaker.record_success();
                    st.backoff.reset();
                    drop(st);
                    reports.lock().push(report);
                    clear_fence();
                    return FileOutcome::Retired;
                }
                Err(e) => e,
            };
            attempts += 1;
            retries.inc();
            match classify(&err) {
                ErrorClass::Fenced => {
                    // Our lease was reclaimed while a call was in flight:
                    // the database rejected the stale flush before
                    // anything applied. The file belongs to its new
                    // holder — roll back the leftover transaction and
                    // abandon silently.
                    fencing_rejections.inc();
                    let s = sessions[node_idx].lock();
                    let _ = s.rollback();
                    s.set_fence(None);
                    return FileOutcome::TakenAway;
                }
                ErrorClass::Permanent => {
                    let _ = sessions[node_idx].lock().rollback();
                    give_up(file, err.to_string());
                    clear_fence();
                    return FileOutcome::Retired;
                }
                ErrorClass::ServerLost => {
                    // The server is down; retrying any connection is futile.
                    // Report and let the caller (e.g. the chaos harness)
                    // recover the repository and resume from the journal.
                    give_up(file, err.to_string());
                    clear_fence();
                    return FileOutcome::Retired;
                }
                ErrorClass::Transient => {}
            }
            obs.counter(&format!("faults.survived.{}", fault_label(&err)))
                .inc();
            degrader.note_failure();
            // The rollback itself crosses the wire and can hit the same
            // flaky link; insist a little.
            {
                let session = sessions[node_idx].lock();
                for _ in 0..3 {
                    if session.rollback().is_ok() {
                        break;
                    }
                }
            }
            let tripped = node_states[node_idx].lock().breaker.record_failure();
            if tripped {
                // Quarantine the sick connection: reconnect, requeue the
                // file for a later assignment on a healthy session.
                let fresh = server.connect();
                fresh.set_call_timeout(retry.call_timeout);
                *sessions[node_idx].lock() = fresh;
                return FileOutcome::Requeue;
            }
            // The attempt budget counts only *stalled* attempts: journal
            // progress or a degradation-ladder move refreshes it.
            let progressed = match (progress_before, journal) {
                (Some(before), Some(j)) => j.committed_lines(&file.name) > before,
                _ => false,
            };
            let level = degrader.level();
            if progressed || level != last_level {
                stalled = 0;
            } else {
                stalled += 1;
            }
            last_level = level;
            if stalled >= retry.max_attempts {
                give_up(
                    file,
                    format!("no progress after {} attempts: {err}", retry.max_attempts),
                );
                clear_fence();
                return FileOutcome::Retired;
            }
            let delay = node_states[node_idx].lock().backoff.next_delay();
            backoff_waits.inc();
            backoff_wait_us.add(delay.as_micros() as u64);
            waiter.wait(delay);
        }
    };

    let start = Instant::now();
    let busy = match policy {
        AssignmentPolicy::Dynamic => {
            // Lease-fenced dynamic assignment through the fleet supervisor.
            let initial: Vec<(String, u64)> = files
                .iter()
                .map(|f| {
                    let key = crate::fleet::fence_key(&f.name);
                    let manifest = journal.map(|j| j.epoch_for(&f.name)).unwrap_or(0);
                    // Max-merge with the server's floor so a restarted
                    // coordinator (or a reused server) always issues
                    // strictly newer epochs than anything fenced before.
                    (f.name.clone(), manifest.max(server.fence_floor(key)))
                })
                .collect();
            let supervisor = {
                let server = Arc::clone(server);
                FleetSupervisor::new_with_obs(
                    &initial,
                    fleet.clone(),
                    move |key, epoch| server.advance_fence(key, epoch),
                    &obs,
                )
            };
            let supervisor = &supervisor;
            let poll = (fleet.lease_ttl / 8).max(Duration::from_millis(1));
            let renew = |l: &Lease| supervisor.heartbeat(l);

            // Injected loader faults (chaos): a kill loads a truncated
            // prefix and loses its process — the database aborts the dead
            // connection's open transaction, the node restarts with a
            // fresh session, and the lease is never released: TTL expiry
            // is the recovery path. A stall loads a prefix, freezes past
            // its TTL, then wakes as a zombie and flushes the rest under
            // its stale epoch — which fencing rejects before anything
            // applies.
            let truncated_prefix_load = |node_idx: usize, lease: &Lease, file: &CatalogFile| {
                let keep = file.text.lines().count() / 2;
                let prefix = line_prefix(&file.text, keep);
                let s = sessions[node_idx].lock();
                s.set_fence(Some(Fence {
                    key: lease.key,
                    epoch: lease.epoch,
                }));
                let _ = match journal {
                    Some(j) => {
                        crate::bulk::load_catalog_text_with_journal(&s, cfg, &file.name, prefix, j)
                    }
                    None => crate::bulk::load_catalog_text(&s, cfg, &file.name, prefix),
                };
            };
            let kill_loader = |node_idx: usize, lease: &Lease, file: &CatalogFile| {
                server.note_injected_fault(FaultKind::LoaderKill);
                loader_kills.inc();
                truncated_prefix_load(node_idx, lease, file);
                {
                    // The dead connection's open transaction is aborted by
                    // the database (modeled as a rollback; deliberately
                    // unfenced so cleanup always works).
                    let s = sessions[node_idx].lock();
                    for _ in 0..3 {
                        if s.rollback().is_ok() {
                            break;
                        }
                    }
                }
                // The Condor node restarts with a fresh loader process;
                // the lease is left to expire.
                let fresh = server.connect();
                fresh.set_call_timeout(retry.call_timeout);
                *sessions[node_idx].lock() = fresh;
            };
            let stall_loader = |node_idx: usize, lease: &Lease, file: &CatalogFile| {
                server.note_injected_fault(FaultKind::LoaderStall);
                loader_stalls.inc();
                truncated_prefix_load(node_idx, lease, file);
                // Freeze: no heartbeats until the supervisor presumes us
                // dead and reassigns the file. (The poll drives expiry,
                // so this converges even on a single-node fleet.)
                while !supervisor.lease_lost(lease) {
                    std::thread::sleep(poll);
                }
                // Zombie wakes and flushes the remainder under the stale
                // epoch: the fence rejects it before a single row lands.
                // Other injected faults can beat the fence check to the
                // wire, so insist a few times — once the lease is
                // reclaimed the fence verdict is permanent.
                let s = sessions[node_idx].lock();
                for _ in 0..16 {
                    let res = match journal {
                        Some(j) => crate::bulk::load_catalog_text_with_journal(
                            &s, cfg, &file.name, &file.text, j,
                        ),
                        None => crate::bulk::load_catalog_text(&s, cfg, &file.name, &file.text),
                    };
                    match res {
                        Err(e) if classify(&e) == ErrorClass::Fenced => {
                            fencing_rejections.inc();
                            break;
                        }
                        // Transient noise before the fence check; retry.
                        Err(_) => continue,
                        // Nothing left to send (the journal already covers
                        // the whole file): no stale call, nothing landed.
                        Ok(_) => break,
                    }
                }
                for _ in 0..3 {
                    if s.rollback().is_ok() {
                        break;
                    }
                }
                s.set_fence(None);
            };

            let fleet_worker = |node_idx: usize| -> Duration {
                let mut busy = Duration::ZERO;
                loop {
                    match supervisor.next_assignment(node_idx) {
                        Assignment::Done => return busy,
                        Assignment::Wait => std::thread::sleep(poll),
                        Assignment::Grant(lease) => {
                            let t0 = Instant::now();
                            let file = &files[lease.file_idx];
                            if let Some(j) = journal {
                                j.record_epoch(&file.name, lease.epoch);
                            }
                            match server.fault_plan().and_then(|p| p.decide_loader_fault()) {
                                Some(FaultKind::LoaderKill) => kill_loader(node_idx, &lease, file),
                                Some(FaultKind::LoaderStall) => {
                                    stall_loader(node_idx, &lease, file)
                                }
                                _ => match drive_file(node_idx, file, Some(&lease), &renew) {
                                    FileOutcome::Retired => supervisor.complete(&lease),
                                    FileOutcome::Requeue => supervisor.requeue(&lease),
                                    FileOutcome::TakenAway => {} // already reclaimed
                                },
                            }
                            busy += t0.elapsed();
                        }
                    }
                }
            };

            let busy = run_workers(nodes, &fleet_worker)?;
            // Files whose reclaim or requeue budget ran out are
            // failures, not limbo.
            for a in supervisor.take_abandoned() {
                give_up(&files[a.file_idx], a.reason);
            }
            busy
        }
        AssignmentPolicy::Static => {
            // Round-robin pre-partition (the baseline §4.4 argues
            // against), plus bounded requeue rounds for breaker trips.
            let partitions: Vec<Mutex<VecDeque<&CatalogFile>>> =
                (0..nodes).map(|_| Mutex::new(VecDeque::new())).collect();
            for (i, f) in files.iter().enumerate() {
                partitions[i % nodes].lock().push_back(f);
            }
            let requeued: Mutex<Vec<&CatalogFile>> = Mutex::new(Vec::new());
            let no_lease: &(dyn Fn(&Lease) -> bool + Sync) = &|_| true;
            let static_worker = |node_idx: usize| -> Duration {
                let t0 = Instant::now();
                while let Some(file) = { partitions[node_idx].lock().pop_front() } {
                    if let FileOutcome::Requeue = drive_file(node_idx, file, None, no_lease) {
                        requeued.lock().push(file);
                    }
                }
                t0.elapsed()
            };
            let mut busy = run_workers(nodes, &static_worker)?;

            // Requeue rounds: files orphaned by breaker trips go back
            // through a shared queue (fresh connections, refreshed
            // budgets) until it drains, the server crashes, or the round
            // budget runs out.
            for _ in 0..MAX_REQUEUE_ROUNDS {
                let queue: Vec<&CatalogFile> = std::mem::take(&mut *requeued.lock());
                if queue.is_empty() {
                    break;
                }
                if server.is_crashed() {
                    for f in queue {
                        give_up(
                            f,
                            "server crashed before the requeued file could load".into(),
                        );
                    }
                    break;
                }
                let shared: Mutex<VecDeque<&CatalogFile>> = Mutex::new(queue.into());
                let round_worker = |node_idx: usize| -> Duration {
                    let t0 = Instant::now();
                    while let Some(file) = { shared.lock().pop_front() } {
                        if let FileOutcome::Requeue = drive_file(node_idx, file, None, no_lease) {
                            requeued.lock().push(file);
                        }
                    }
                    t0.elapsed()
                };
                let round_busy = run_workers(nodes, &round_worker)?;
                for (b, extra) in busy.iter_mut().zip(round_busy) {
                    *b += extra;
                }
            }
            for f in std::mem::take(&mut *requeued.lock()) {
                give_up(
                    f,
                    format!("requeue budget ({MAX_REQUEUE_ROUNDS} rounds) exhausted"),
                );
            }
            busy
        }
    };
    let makespan = start.elapsed();

    // Persist the newest committed-line watermarks' sibling manifest: the
    // journal already recorded each grant's epoch as it was issued, so a
    // restarted coordinator fences past everything this run handed out.

    // Close out any session-held transactions (loads commit per policy, but
    // be safe if a file had zero commits). Best effort: on a crashed or
    // still-faulty server the commit may fail; the rows at stake were never
    // journaled, so a resumed load re-sends them. Fences are cleared first
    // so a leftover lease token cannot veto the sweep.
    for s in &sessions {
        let s = s.lock();
        s.set_fence(None);
        if s.commit().is_err() {
            let _ = s.rollback();
        }
    }

    // Fold the degrader's wall-clock accounting into the registry before
    // the closing snapshot, so the report and any later `--metrics` dump
    // read the same ledger.
    obs.counter("degrade.time_us")
        .add(degrader.degraded_time().as_micros() as u64);
    obs.counter("degrade.transitions")
        .add(degrader.transitions().len() as u64);

    // The night report's counter fields are a view over the telemetry
    // delta; only run-shape fields are filled in by hand.
    let delta = obs.snapshot().since(&baseline);
    let mut night = NightReport::from_telemetry(&delta);
    night.files = reports.into_inner();
    night.makespan = makespan;
    night.nodes = nodes;
    night.node_imbalance = imbalance(&busy);
    night.degrade_transitions = degrader.transitions();
    night.failed_files = failed.into_inner();
    Ok(night)
}

/// Ratio of the busiest node's busy time to the idlest node's (1.0 is
/// perfectly balanced), mirroring
/// [`ClusterReport::imbalance`](skysim::cluster::ClusterReport::imbalance).
fn imbalance(busy: &[Duration]) -> f64 {
    let max = busy.iter().map(Duration::as_secs_f64).fold(0.0, f64::max);
    let min = busy
        .iter()
        .map(Duration::as_secs_f64)
        .fold(f64::INFINITY, f64::min);
    if min <= 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

/// Run one worker closure per node on scoped threads, propagating panics
/// as [`NightError`] instead of unwinding through the caller.
fn run_workers(
    nodes: usize,
    worker: &(impl Fn(usize) -> Duration + Sync),
) -> Result<Vec<Duration>, NightError> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..nodes).map(|i| s.spawn(move || worker(i))).collect();
        let mut busy = Vec::with_capacity(nodes);
        let mut first_panic: Option<String> = None;
        for h in handles {
            match h.join() {
                Ok(b) => busy.push(b),
                Err(p) => {
                    let msg = panic_message(p);
                    first_panic.get_or_insert(msg);
                }
            }
        }
        match first_panic {
            Some(message) => Err(NightError {
                message: format!("loader worker panicked: {message}"),
            }),
            None => Ok(busy),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycat::gen::{aggregate_expected, generate_observation, GenConfig};
    use skydb::config::DbConfig;
    use skydb::fault::{FaultPlan, FaultPlanConfig};

    fn fresh_server() -> Arc<Server> {
        let server = Server::start(DbConfig::test());
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        server
    }

    /// A fleet policy with timings short enough for tests that actually
    /// exercise reclamation (wall-clock TTLs), but long enough that a
    /// healthy file attempt finishes inside one lease term.
    fn quick_fleet() -> crate::fleet::FleetPolicy {
        crate::fleet::FleetPolicy::default()
            .with_lease_ttl(Duration::from_millis(250))
            .with_heartbeat_interval(Duration::from_millis(50))
    }

    #[test]
    fn parallel_night_loads_every_file_exactly() {
        let cfg = GenConfig::night(31, 100).with_files(8);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        let server = fresh_server();
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            4,
            AssignmentPolicy::Dynamic,
        )
        .unwrap();
        assert_eq!(report.files.len(), 8);
        assert_eq!(report.rows_loaded(), expected.total_loadable());
        for (table, expect) in &expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(server.engine().row_count(tid), *expect, "{table}");
        }
        // A healthy night needs no supervision interventions.
        assert_eq!(report.lease_reclaims, 0);
        assert_eq!(report.fencing_rejections, 0);
    }

    #[test]
    fn pipelined_night_matches_serial_night() {
        // Every loader session runs its own parse/flush pipeline; the
        // night-level outcome must be indistinguishable from serial mode.
        let cfg = GenConfig::night(39, 100)
            .with_files(6)
            .with_error_rate(0.04);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        let run = |loader: &LoaderConfig| {
            let server = fresh_server();
            let night = load_night(&server, &files, loader, 3, AssignmentPolicy::Dynamic).unwrap();
            let counts: Vec<u64> = expected
                .loadable
                .keys()
                .map(|t| {
                    let tid = server.engine().table_id(t).unwrap();
                    server.engine().row_count(tid)
                })
                .collect();
            (night, counts)
        };
        let (serial, serial_counts) = run(&LoaderConfig::test());
        let (piped, piped_counts) =
            run(&LoaderConfig::test().with_pipeline(crate::config::PipelineMode::Double));
        assert_eq!(serial.rows_loaded(), piped.rows_loaded());
        assert_eq!(serial.rows_skipped(), piped.rows_skipped());
        assert_eq!(serial.loaded_by_table(), piped.loaded_by_table());
        assert_eq!(serial_counts, piped_counts);
        assert_eq!(piped.rows_loaded(), expected.total_loadable());
    }

    #[test]
    fn parallel_with_errors_matches_expected_counts() {
        let cfg = GenConfig::night(33, 100)
            .with_files(6)
            .with_error_rate(0.05);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        assert!(expected.corrupted_objects > 0);
        let server = fresh_server();
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            3,
            AssignmentPolicy::Dynamic,
        )
        .unwrap();
        assert_eq!(report.rows_loaded(), expected.total_loadable());
        assert_eq!(
            report.rows_skipped(),
            expected.total_emitted() - expected.total_loadable()
        );
    }

    #[test]
    fn static_assignment_loads_the_same_rows() {
        let cfg = GenConfig::night(35, 100).with_files(5);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        let server = fresh_server();
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            2,
            AssignmentPolicy::Static,
        )
        .unwrap();
        assert_eq!(report.rows_loaded(), expected.total_loadable());
        assert_eq!(report.nodes, 2);
    }

    #[test]
    fn single_node_degenerates_to_serial() {
        let cfg = GenConfig::night(37, 100).with_files(3);
        let files = generate_observation(&cfg);
        let server = fresh_server();
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            1,
            AssignmentPolicy::Dynamic,
        )
        .unwrap();
        assert_eq!(report.files.len(), 3);
        assert!(report.rows_loaded() > 0);
        assert!((report.node_imbalance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn failed_night_is_an_error_not_a_panic() {
        // Crash the server on the very first flush: every file fails, and
        // load_night must surface that as Err, never a panic.
        let cfg = GenConfig::night(45, 100).with_files(2);
        let files = generate_observation(&cfg);
        let server = fresh_server();
        server.set_fault_plan(Some(FaultPlan::new(
            FaultPlanConfig::new(9).with_crash_on_flush(1),
        )));
        let err = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            2,
            AssignmentPolicy::Dynamic,
        )
        .unwrap_err();
        assert!(err.message.contains("failed"), "got: {err}");
    }

    #[test]
    fn degradation_round_trip_under_batch_corruption() {
        use crate::resilience::{RetryPolicy, MAX_DEGRADE_LEVEL};

        // Every batch call is rejected as corrupt, so the fleet must walk
        // the full degradation ladder down to per-row inserts (which the
        // corruption fault cannot touch), then climb back to batch mode
        // after enough clean files.
        let cfg = GenConfig::night(41, 100).with_files(6);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        let server = fresh_server();
        server.set_fault_plan(Some(FaultPlan::new(
            FaultPlanConfig::new(7).with_corruption(1.0),
        )));
        let retry = RetryPolicy::default()
            .with_degradation(1, 2)
            .with_breaker_threshold(100);
        let loader = LoaderConfig::test().with_retry(retry);
        let journal = LoadJournal::new();
        let night = load_night_with_journal(
            &server,
            &files,
            &loader,
            2,
            AssignmentPolicy::Dynamic,
            Some(&journal),
        )
        .unwrap();
        assert!(night.is_complete(), "failed: {:?}", night.failed_files);
        assert_eq!(night.rows_loaded(), expected.total_loadable());
        for (table, expect) in &expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(server.engine().row_count(tid), *expect, "{table}");
        }
        // The ladder bottomed out at per-row inserts...
        assert!(
            night
                .degrade_transitions
                .iter()
                .any(|t| t.to == MAX_DEGRADE_LEVEL && t.trigger == "degrade"),
            "never reached per-row fallback: {:?}",
            night.degrade_transitions
        );
        // ...and batch mode was restored once loads went clean again.
        assert!(
            night
                .degrade_transitions
                .iter()
                .any(|t| t.to == 0 && t.trigger == "restore"),
            "never restored batch mode: {:?}",
            night.degrade_transitions
        );
        assert!(night.degraded_time > Duration::ZERO);
        assert!(night.retries > 0);
        assert!(*night.faults_survived.get("corruption").unwrap_or(&0) > 0);
    }

    #[test]
    fn breaker_trip_quarantines_connection_and_requeues_file() {
        use crate::resilience::RetryPolicy;

        // A hair-trigger breaker: the first reset on a connection
        // quarantines it; the file must come back through dynamic
        // assignment on a fresh session and still land exactly once.
        let cfg = GenConfig::night(43, 100).with_files(6);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        let server = fresh_server();
        // Rare faults: each one trips the hair-trigger breaker, but the
        // requeued reload usually gets a long clean window to resume in.
        server.inject_call_faults(251);
        let loader = LoaderConfig::test()
            .with_array_size(300)
            .with_commit_policy(crate::config::CommitPolicy::PerFlush)
            .with_retry(RetryPolicy::default().with_breaker_threshold(1));
        let journal = LoadJournal::new();
        let night = load_night_with_journal(
            &server,
            &files,
            &loader,
            2,
            AssignmentPolicy::Dynamic,
            Some(&journal),
        )
        .unwrap();
        assert!(night.is_complete(), "failed: {:?}", night.failed_files);
        assert!(night.breaker_trips > 0);
        assert!(night.retries > 0);
        // Reports from requeued files only count rows loaded after their
        // journal resume point, so the repository itself is the
        // exactly-once oracle.
        assert!(night.rows_loaded() <= expected.total_loadable());
        for (table, expect) in &expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(server.engine().row_count(tid), *expect, "{table}");
        }
    }

    #[test]
    fn loader_kill_recovers_via_lease_reclaim() {
        // Kill the very first granted loader mid-file: its lease must
        // expire, the file must be reassigned, and every loadable row must
        // land exactly once (journal watermark + fencing).
        let cfg = GenConfig::night(47, 100).with_files(4);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        let server = fresh_server();
        server.set_fault_plan(Some(FaultPlan::new(
            FaultPlanConfig::new(47).with_loader_kill_at(1),
        )));
        let loader = LoaderConfig::test()
            .with_commit_policy(crate::config::CommitPolicy::PerFlush)
            .with_fleet(quick_fleet());
        let journal = LoadJournal::new();
        let night = load_night_with_journal(
            &server,
            &files,
            &loader,
            2,
            AssignmentPolicy::Dynamic,
            Some(&journal),
        )
        .unwrap();
        assert!(night.is_complete(), "failed: {:?}", night.failed_files);
        assert_eq!(night.loader_kills, 1);
        assert!(
            night.lease_reclaims >= 1,
            "the killed loader's lease was never reclaimed"
        );
        for (table, expect) in &expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(server.engine().row_count(tid), *expect, "{table}");
        }
        // The reassigned grant runs at a higher epoch, and the manifest
        // remembers it for coordinator restarts.
        let bumped = files
            .iter()
            .filter(|f| journal.epoch_for(&f.name) >= 2)
            .count();
        assert!(bumped >= 1, "no file was ever re-leased");
    }

    #[test]
    fn loader_stall_zombie_is_fenced_out() {
        // Freeze the first granted loader past its TTL: the file is
        // reassigned, and when the zombie wakes and flushes, fencing must
        // reject it — rows still land exactly once.
        let cfg = GenConfig::night(49, 100).with_files(4);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        let server = fresh_server();
        server.set_fault_plan(Some(FaultPlan::new(
            FaultPlanConfig::new(49).with_loader_stall_at(1),
        )));
        let loader = LoaderConfig::test()
            .with_commit_policy(crate::config::CommitPolicy::PerFlush)
            .with_fleet(quick_fleet());
        let journal = LoadJournal::new();
        let night = load_night_with_journal(
            &server,
            &files,
            &loader,
            2,
            AssignmentPolicy::Dynamic,
            Some(&journal),
        )
        .unwrap();
        assert!(night.is_complete(), "failed: {:?}", night.failed_files);
        assert_eq!(night.loader_stalls, 1);
        assert!(night.lease_reclaims >= 1, "stalled lease never reclaimed");
        assert!(
            night.fencing_rejections >= 1,
            "the zombie's stale flush was never fenced"
        );
        for (table, expect) in &expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(server.engine().row_count(tid), *expect, "{table}");
        }
    }

    #[test]
    fn throughput_metric_positive() {
        let cfg = GenConfig::night(39, 100).with_files(4);
        let files = generate_observation(&cfg);
        let server = fresh_server();
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            2,
            AssignmentPolicy::Dynamic,
        )
        .unwrap();
        assert!(report.throughput_mb_per_s() > 0.0);
        assert!(report.bytes_read() > 0);
    }

    #[test]
    fn night_report_agrees_with_registry_delta_under_faults() {
        // Regression guard for the old three-way counter drift: the night
        // report and an independently taken registry delta must agree on a
        // 2-loader run under connection weather. (The third path, the
        // chaos re-aggregation, is covered by the chaos metrics test.)
        let cfg = GenConfig::night(53, 100).with_files(4);
        let files = generate_observation(&cfg);
        let server = fresh_server();
        server.set_fault_plan(Some(FaultPlan::new(
            FaultPlanConfig::new(53).with_resets(0.004).with_busy(0.004),
        )));
        let loader = LoaderConfig::test()
            .with_commit_policy(crate::config::CommitPolicy::PerFlush)
            .with_retry(
                crate::resilience::RetryPolicy::default()
                    .with_max_attempts(16)
                    .with_breaker_threshold(100),
            );
        let journal = LoadJournal::new();
        let before = server.obs_snapshot();
        let night = load_night_with_journal(
            &server,
            &files,
            &loader,
            2,
            AssignmentPolicy::Dynamic,
            Some(&journal),
        )
        .unwrap();
        let delta = server.obs_snapshot().since(&before);
        assert!(night.retries > 0, "fault plan injected nothing — vacuous");
        assert_eq!(night.retries, delta.counter("retries"));
        assert_eq!(night.breaker_trips, delta.counter("breaker_trips"));
        assert_eq!(night.loader_kills, delta.counter("loader_kills"));
        assert_eq!(night.loader_stalls, delta.counter("loader_stalls"));
        assert_eq!(night.lease_reclaims, delta.counter("fleet.reclaims"));
        assert_eq!(
            night.fencing_rejections,
            delta.counter("fleet.fence_rejections")
        );
        assert_eq!(night.faults_survived, delta.with_prefix("faults.survived."));
    }

    #[test]
    fn per_file_rows_agree_with_engine_counters_on_a_clean_run() {
        // The second leg of the drift guard: on a clean 2-loader run the
        // per-file reports, the night total, and the engine's own
        // rows_inserted counter all describe the same rows.
        let cfg = GenConfig::night(57, 100).with_files(4);
        let files = generate_observation(&cfg);
        let server = fresh_server();
        let before = server.obs_snapshot();
        let night = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            2,
            AssignmentPolicy::Dynamic,
        )
        .unwrap();
        let delta = server.obs_snapshot().since(&before);
        let per_file: u64 = night.files.iter().map(|f| f.rows_loaded).sum();
        assert!(per_file > 0);
        assert_eq!(per_file, night.rows_loaded());
        assert_eq!(per_file, delta.counter("engine.rows_inserted"));
    }
}
