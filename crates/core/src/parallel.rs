//! Parallel loading across Condor-style nodes (§4.4).
//!
//! "we use as many Condor processes as possible to saturate the CPUs on the
//! database server … we assign unloaded data sets to the Condor nodes 'on
//! the fly' rather than dividing the data sets evenly among the Condor
//! nodes."
//!
//! [`load_night`] runs one loader per node, each with its own database
//! session, pulling files from a shared queue (dynamic assignment) or from
//! a round-robin pre-partition (the rejected baseline, kept for ablation
//! A2).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use skycat::CatalogFile;
use skydb::server::{Server, Session};
use skysim::cluster::{run_dynamic, run_static, AssignmentPolicy, NodeSpec};
use skysim::time::Waiter;

use crate::config::LoaderConfig;
use crate::recovery::LoadJournal;
use crate::report::{FailedFile, FileReport, NightReport};
use crate::resilience::{classify, fault_label, Backoff, CircuitBreaker, Degrader, ErrorClass};

/// Bounded number of extra dynamic rounds for files whose connection's
/// circuit breaker tripped mid-load.
const MAX_REQUEUE_ROUNDS: usize = 64;

/// Load an observation's files with `nodes` parallel loader processes.
///
/// # Panics
/// Panics if a loader hits a protocol-level failure it cannot retire within
/// the configured retry/requeue budget (row-level errors are skipped and
/// reported, as in the paper). Callers that prefer a report over a panic
/// use [`load_night_with_journal`] and inspect
/// [`NightReport::failed_files`].
pub fn load_night(
    server: &Arc<Server>,
    files: &[CatalogFile],
    cfg: &LoaderConfig,
    nodes: usize,
    policy: AssignmentPolicy,
) -> NightReport {
    let night = load_night_with_journal(server, files, cfg, nodes, policy, None);
    if let Some(f) = night.failed_files.first() {
        panic!("loading {} failed: {}", f.file, f.error);
    }
    night
}

/// Per-node retry state: the connection's circuit breaker and its seeded
/// backoff stream.
struct NodeState {
    breaker: CircuitBreaker,
    backoff: Backoff,
}

/// [`load_night`] with an optional shared checkpoint journal.
///
/// Connection-level failures (driver timeouts, resets, busy rejections,
/// disk-full commits, corrupt-payload rejections) are retried per
/// `cfg.retry`: roll back the broken transaction, back off with seeded
/// jitter, then reload. With a journal the retry resumes from the last
/// commit and the attempt budget refreshes whenever an attempt *made
/// progress* (the journal advanced) or the fleet changed degradation level
/// — a long file on a flaky link may take many resumes but always
/// converges. Without a journal, any rows committed before the failure
/// re-surface as PK-duplicate skips, so the repository still converges to
/// exactly one copy of every row.
///
/// A connection whose breaker trips is quarantined: the loader reconnects
/// and the in-flight file is requeued through dynamic assignment. Files
/// that cannot be retired (including everything pending when the server
/// crashes) are reported in [`NightReport::failed_files`] rather than
/// panicking.
pub fn load_night_with_journal(
    server: &Arc<Server>,
    files: &[CatalogFile],
    cfg: &LoaderConfig,
    nodes: usize,
    policy: AssignmentPolicy,
    journal: Option<&LoadJournal>,
) -> NightReport {
    assert!(nodes > 0, "need at least one loader node");
    let pool = NodeSpec::pool(nodes);
    let retry = &cfg.retry;
    // One session per node, like one loader process per Condor node. The
    // Mutex allows a tripped connection to be swapped for a fresh one.
    let sessions: Vec<Mutex<Session>> = (0..nodes)
        .map(|_| {
            let s = server.connect();
            s.set_call_timeout(retry.call_timeout);
            Mutex::new(s)
        })
        .collect();
    let node_states: Vec<Mutex<NodeState>> = (0..nodes)
        .map(|i| {
            Mutex::new(NodeState {
                breaker: CircuitBreaker::new(retry.breaker_threshold),
                backoff: Backoff::new(retry, i as u64),
            })
        })
        .collect();
    let degrader = Degrader::new(retry);
    let waiter = Waiter::new(server.engine().scale());
    let reports: Mutex<Vec<FileReport>> = Mutex::new(Vec::with_capacity(files.len()));
    let requeued: Mutex<Vec<&CatalogFile>> = Mutex::new(Vec::new());
    let failed: Mutex<Vec<FailedFile>> = Mutex::new(Vec::new());
    let retries = AtomicU64::new(0);
    let survived: Mutex<BTreeMap<&'static str, u64>> = Mutex::new(BTreeMap::new());

    let give_up = |file: &CatalogFile, why: String| {
        failed.lock().push(FailedFile {
            file: file.name.clone(),
            error: why,
        });
    };

    let work = |node_idx: usize, file| {
        let file: &CatalogFile = file;
        let mut stalled = 0usize;
        let mut attempts = 0u64;
        let mut last_level = degrader.level();
        loop {
            // Load under the degradation ladder's current shape.
            let effective = degrader.shape(cfg);
            let progress_before = journal.map(|j| j.committed_lines(&file.name));
            let result = {
                let session = sessions[node_idx].lock();
                match journal {
                    Some(j) => crate::bulk::load_catalog_text_with_journal(
                        &session, &effective, &file.name, &file.text, j,
                    ),
                    None => {
                        crate::bulk::load_catalog_text(&session, &effective, &file.name, &file.text)
                    }
                }
            };
            let err = match result {
                Ok(mut report) => {
                    report.retries = attempts;
                    degrader.note_success();
                    let mut st = node_states[node_idx].lock();
                    st.breaker.record_success();
                    st.backoff.reset();
                    drop(st);
                    reports.lock().push(report);
                    return;
                }
                Err(e) => e,
            };
            attempts += 1;
            retries.fetch_add(1, Ordering::Relaxed);
            match classify(&err) {
                ErrorClass::Permanent => {
                    let _ = sessions[node_idx].lock().rollback();
                    give_up(file, err.to_string());
                    return;
                }
                ErrorClass::ServerLost => {
                    // The server is down; retrying any connection is futile.
                    // Report and let the caller (e.g. the chaos harness)
                    // recover the repository and resume from the journal.
                    give_up(file, err.to_string());
                    return;
                }
                ErrorClass::Transient => {}
            }
            *survived.lock().entry(fault_label(&err)).or_insert(0) += 1;
            degrader.note_failure();
            // The rollback itself crosses the wire and can hit the same
            // flaky link; insist a little.
            {
                let session = sessions[node_idx].lock();
                for _ in 0..3 {
                    if session.rollback().is_ok() {
                        break;
                    }
                }
            }
            let tripped = node_states[node_idx].lock().breaker.record_failure();
            if tripped {
                // Quarantine the sick connection: reconnect, requeue the
                // file through dynamic assignment for a later round.
                let fresh = server.connect();
                fresh.set_call_timeout(retry.call_timeout);
                *sessions[node_idx].lock() = fresh;
                requeued.lock().push(file);
                return;
            }
            // The attempt budget counts only *stalled* attempts: journal
            // progress or a degradation-ladder move refreshes it.
            let progressed = match (progress_before, journal) {
                (Some(before), Some(j)) => j.committed_lines(&file.name) > before,
                _ => false,
            };
            let level = degrader.level();
            if progressed || level != last_level {
                stalled = 0;
            } else {
                stalled += 1;
            }
            last_level = level;
            if stalled >= retry.max_attempts {
                give_up(
                    file,
                    format!("no progress after {} attempts: {err}", retry.max_attempts),
                );
                return;
            }
            waiter.wait(node_states[node_idx].lock().backoff.next_delay());
        }
    };

    let items: Vec<&CatalogFile> = files.iter().collect();
    let mut cluster = match policy {
        AssignmentPolicy::Dynamic => run_dynamic(&pool, items, work),
        AssignmentPolicy::Static => run_static(&pool, items, work),
    };

    // Requeue rounds: files orphaned by breaker trips go back through
    // dynamic assignment (fresh connections, refreshed budgets) until the
    // queue drains, the server crashes, or the round budget runs out.
    let mut extra = Duration::ZERO;
    for _ in 0..MAX_REQUEUE_ROUNDS {
        let queue: Vec<&CatalogFile> = std::mem::take(&mut *requeued.lock());
        if queue.is_empty() {
            break;
        }
        if server.is_crashed() {
            for f in queue {
                give_up(
                    f,
                    "server crashed before the requeued file could load".into(),
                );
            }
            break;
        }
        extra += run_dynamic(&pool, queue, work).makespan;
    }
    for f in std::mem::take(&mut *requeued.lock()) {
        give_up(
            f,
            format!("requeue budget ({MAX_REQUEUE_ROUNDS} rounds) exhausted"),
        );
    }
    cluster.makespan += extra;

    // Close out any session-held transactions (loads commit per policy, but
    // be safe if a file had zero commits). Best effort: on a crashed or
    // still-faulty server the commit may fail; the rows at stake were never
    // journaled, so a resumed load re-sends them.
    for s in &sessions {
        let s = s.lock();
        if s.commit().is_err() {
            let _ = s.rollback();
        }
    }

    let breaker_trips = node_states.iter().map(|st| st.lock().breaker.trips()).sum();
    NightReport {
        files: reports.into_inner(),
        makespan: cluster.makespan,
        nodes,
        node_imbalance: cluster.imbalance(),
        retries: retries.into_inner(),
        faults_survived: survived.into_inner(),
        breaker_trips,
        degraded_time: degrader.degraded_time(),
        degrade_transitions: degrader.transitions(),
        failed_files: failed.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycat::gen::{aggregate_expected, generate_observation, GenConfig};
    use skydb::config::DbConfig;

    fn fresh_server() -> Arc<Server> {
        let server = Server::start(DbConfig::test());
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        server
    }

    #[test]
    fn parallel_night_loads_every_file_exactly() {
        let cfg = GenConfig::night(31, 100).with_files(8);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        let server = fresh_server();
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            4,
            AssignmentPolicy::Dynamic,
        );
        assert_eq!(report.files.len(), 8);
        assert_eq!(report.rows_loaded(), expected.total_loadable());
        for (table, expect) in &expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(server.engine().row_count(tid), *expect, "{table}");
        }
    }

    #[test]
    fn pipelined_night_matches_serial_night() {
        // Every loader session runs its own parse/flush pipeline; the
        // night-level outcome must be indistinguishable from serial mode.
        let cfg = GenConfig::night(39, 100)
            .with_files(6)
            .with_error_rate(0.04);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        let run = |loader: &LoaderConfig| {
            let server = fresh_server();
            let night = load_night(&server, &files, loader, 3, AssignmentPolicy::Dynamic);
            let counts: Vec<u64> = expected
                .loadable
                .keys()
                .map(|t| {
                    let tid = server.engine().table_id(t).unwrap();
                    server.engine().row_count(tid)
                })
                .collect();
            (night, counts)
        };
        let (serial, serial_counts) = run(&LoaderConfig::test());
        let (piped, piped_counts) =
            run(&LoaderConfig::test().with_pipeline(crate::config::PipelineMode::Double));
        assert_eq!(serial.rows_loaded(), piped.rows_loaded());
        assert_eq!(serial.rows_skipped(), piped.rows_skipped());
        assert_eq!(serial.loaded_by_table(), piped.loaded_by_table());
        assert_eq!(serial_counts, piped_counts);
        assert_eq!(piped.rows_loaded(), expected.total_loadable());
    }

    #[test]
    fn parallel_with_errors_matches_expected_counts() {
        let cfg = GenConfig::night(33, 100)
            .with_files(6)
            .with_error_rate(0.05);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        assert!(expected.corrupted_objects > 0);
        let server = fresh_server();
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            3,
            AssignmentPolicy::Dynamic,
        );
        assert_eq!(report.rows_loaded(), expected.total_loadable());
        assert_eq!(
            report.rows_skipped(),
            expected.total_emitted() - expected.total_loadable()
        );
    }

    #[test]
    fn static_assignment_loads_the_same_rows() {
        let cfg = GenConfig::night(35, 100).with_files(5);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        let server = fresh_server();
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            2,
            AssignmentPolicy::Static,
        );
        assert_eq!(report.rows_loaded(), expected.total_loadable());
        assert_eq!(report.nodes, 2);
    }

    #[test]
    fn single_node_degenerates_to_serial() {
        let cfg = GenConfig::night(37, 100).with_files(3);
        let files = generate_observation(&cfg);
        let server = fresh_server();
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            1,
            AssignmentPolicy::Dynamic,
        );
        assert_eq!(report.files.len(), 3);
        assert!(report.rows_loaded() > 0);
        assert!((report.node_imbalance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degradation_round_trip_under_batch_corruption() {
        use crate::resilience::{RetryPolicy, MAX_DEGRADE_LEVEL};
        use skydb::fault::{FaultPlan, FaultPlanConfig};

        // Every batch call is rejected as corrupt, so the fleet must walk
        // the full degradation ladder down to per-row inserts (which the
        // corruption fault cannot touch), then climb back to batch mode
        // after enough clean files.
        let cfg = GenConfig::night(41, 100).with_files(6);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        let server = fresh_server();
        server.set_fault_plan(Some(FaultPlan::new(
            FaultPlanConfig::new(7).with_corruption(1.0),
        )));
        let retry = RetryPolicy::default()
            .with_degradation(1, 2)
            .with_breaker_threshold(100);
        let loader = LoaderConfig::test().with_retry(retry);
        let journal = LoadJournal::new();
        let night = load_night_with_journal(
            &server,
            &files,
            &loader,
            2,
            AssignmentPolicy::Dynamic,
            Some(&journal),
        );
        assert!(night.is_complete(), "failed: {:?}", night.failed_files);
        assert_eq!(night.rows_loaded(), expected.total_loadable());
        for (table, expect) in &expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(server.engine().row_count(tid), *expect, "{table}");
        }
        // The ladder bottomed out at per-row inserts...
        assert!(
            night
                .degrade_transitions
                .iter()
                .any(|t| t.to == MAX_DEGRADE_LEVEL && t.trigger == "degrade"),
            "never reached per-row fallback: {:?}",
            night.degrade_transitions
        );
        // ...and batch mode was restored once loads went clean again.
        assert!(
            night
                .degrade_transitions
                .iter()
                .any(|t| t.to == 0 && t.trigger == "restore"),
            "never restored batch mode: {:?}",
            night.degrade_transitions
        );
        assert!(night.degraded_time > Duration::ZERO);
        assert!(night.retries > 0);
        assert!(*night.faults_survived.get("corruption").unwrap_or(&0) > 0);
    }

    #[test]
    fn breaker_trip_quarantines_connection_and_requeues_file() {
        use crate::resilience::RetryPolicy;

        // A hair-trigger breaker: the first reset on a connection
        // quarantines it; the file must come back through dynamic
        // assignment on a fresh session and still land exactly once.
        let cfg = GenConfig::night(43, 100).with_files(6);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        let server = fresh_server();
        // Rare faults: each one trips the hair-trigger breaker, but the
        // requeued reload usually gets a long clean window to resume in.
        server.inject_call_faults(251);
        let loader = LoaderConfig::test()
            .with_array_size(300)
            .with_commit_policy(crate::config::CommitPolicy::PerFlush)
            .with_retry(RetryPolicy::default().with_breaker_threshold(1));
        let journal = LoadJournal::new();
        let night = load_night_with_journal(
            &server,
            &files,
            &loader,
            2,
            AssignmentPolicy::Dynamic,
            Some(&journal),
        );
        assert!(night.is_complete(), "failed: {:?}", night.failed_files);
        assert!(night.breaker_trips > 0);
        assert!(night.retries > 0);
        // Reports from requeued files only count rows loaded after their
        // journal resume point, so the repository itself is the
        // exactly-once oracle.
        assert!(night.rows_loaded() <= expected.total_loadable());
        for (table, expect) in &expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(server.engine().row_count(tid), *expect, "{table}");
        }
    }

    #[test]
    fn throughput_metric_positive() {
        let cfg = GenConfig::night(39, 100).with_files(4);
        let files = generate_observation(&cfg);
        let server = fresh_server();
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            2,
            AssignmentPolicy::Dynamic,
        );
        assert!(report.throughput_mb_per_s() > 0.0);
        assert!(report.bytes_read() > 0);
    }
}
