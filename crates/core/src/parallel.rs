//! Parallel loading across Condor-style nodes (§4.4).
//!
//! "we use as many Condor processes as possible to saturate the CPUs on the
//! database server … we assign unloaded data sets to the Condor nodes 'on
//! the fly' rather than dividing the data sets evenly among the Condor
//! nodes."
//!
//! [`load_night`] runs one loader per node, each with its own database
//! session, pulling files from a shared queue (dynamic assignment) or from
//! a round-robin pre-partition (the rejected baseline, kept for ablation
//! A2).

use std::sync::Arc;

use parking_lot::Mutex;

use skycat::CatalogFile;
use skydb::server::Server;
use skysim::cluster::{run_dynamic, run_static, AssignmentPolicy, NodeSpec};

use crate::bulk::load_catalog_file;
use crate::config::LoaderConfig;
use crate::recovery::LoadJournal;
use crate::report::{FileReport, NightReport};

/// Load an observation's files with `nodes` parallel loader processes.
///
/// # Panics
/// Panics if a loader hits a protocol-level failure (row-level errors are
/// skipped and reported, as in the paper).
pub fn load_night(
    server: &Arc<Server>,
    files: &[CatalogFile],
    cfg: &LoaderConfig,
    nodes: usize,
    policy: AssignmentPolicy,
) -> NightReport {
    load_night_with_journal(server, files, cfg, nodes, policy, None)
}

/// [`load_night`] with an optional shared checkpoint journal.
pub fn load_night_with_journal(
    server: &Arc<Server>,
    files: &[CatalogFile],
    cfg: &LoaderConfig,
    nodes: usize,
    policy: AssignmentPolicy,
    journal: Option<&LoadJournal>,
) -> NightReport {
    assert!(nodes > 0, "need at least one loader node");
    let pool = NodeSpec::pool(nodes);
    // One session per node, like one loader process per Condor node.
    let sessions: Vec<_> = (0..nodes).map(|_| server.connect()).collect();
    let reports: Mutex<Vec<FileReport>> = Mutex::new(Vec::with_capacity(files.len()));

    // Connection-level failures (driver timeouts, resets) are retried:
    // roll back the broken transaction, then reload. With a journal the
    // retry resumes from the last commit and the attempt budget refreshes
    // whenever an attempt *made progress* (the journal advanced) — a long
    // file on a flaky link may take many resumes but always converges.
    // Without a journal, any rows committed before the failure re-surface
    // as PK-duplicate skips, so the repository still converges to exactly
    // one copy of every row.
    const MAX_STALLED_ATTEMPTS: usize = 3;
    let work = |node_idx: usize, file: &CatalogFile| {
        let session = &sessions[node_idx];
        let mut last_err = None;
        let mut stalled = 0usize;
        while stalled < MAX_STALLED_ATTEMPTS {
            let progress_before = journal.map(|j| j.committed_lines(&file.name));
            let result = match journal {
                Some(j) => crate::bulk::load_catalog_text_with_journal(
                    session, cfg, &file.name, &file.text, j,
                ),
                None => load_catalog_file(session, cfg, file),
            };
            match result {
                Ok(report) => {
                    reports.lock().push(report);
                    return;
                }
                Err(e) => {
                    // The rollback itself crosses the wire and can hit the
                    // same flaky link; insist a little.
                    for _ in 0..MAX_STALLED_ATTEMPTS {
                        if session.rollback().is_ok() {
                            break;
                        }
                    }
                    let progressed = match (progress_before, journal) {
                        (Some(before), Some(j)) => j.committed_lines(&file.name) > before,
                        _ => false,
                    };
                    if progressed {
                        stalled = 0;
                    } else {
                        stalled += 1;
                    }
                    last_err = Some(e);
                }
            }
        }
        panic!(
            "loading {} failed after {MAX_STALLED_ATTEMPTS} attempts without progress: {}",
            file.name,
            last_err.expect("had an error")
        );
    };

    let items: Vec<&CatalogFile> = files.iter().collect();
    let cluster = match policy {
        AssignmentPolicy::Dynamic => run_dynamic(&pool, items, work),
        AssignmentPolicy::Static => run_static(&pool, items, work),
    };

    // Close out any session-held transactions (loads commit per policy, but
    // be safe if a file had zero commits).
    for s in &sessions {
        s.commit().expect("final commit");
    }

    NightReport {
        files: reports.into_inner(),
        makespan: cluster.makespan,
        nodes,
        node_imbalance: cluster.imbalance(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycat::gen::{aggregate_expected, generate_observation, GenConfig};
    use skydb::config::DbConfig;

    fn fresh_server() -> Arc<Server> {
        let server = Server::start(DbConfig::test());
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        server
    }

    #[test]
    fn parallel_night_loads_every_file_exactly() {
        let cfg = GenConfig::night(31, 100).with_files(8);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        let server = fresh_server();
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            4,
            AssignmentPolicy::Dynamic,
        );
        assert_eq!(report.files.len(), 8);
        assert_eq!(report.rows_loaded(), expected.total_loadable());
        for (table, expect) in &expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(server.engine().row_count(tid), *expect, "{table}");
        }
    }

    #[test]
    fn pipelined_night_matches_serial_night() {
        // Every loader session runs its own parse/flush pipeline; the
        // night-level outcome must be indistinguishable from serial mode.
        let cfg = GenConfig::night(39, 100)
            .with_files(6)
            .with_error_rate(0.04);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        let run = |loader: &LoaderConfig| {
            let server = fresh_server();
            let night = load_night(&server, &files, loader, 3, AssignmentPolicy::Dynamic);
            let counts: Vec<u64> = expected
                .loadable
                .keys()
                .map(|t| {
                    let tid = server.engine().table_id(t).unwrap();
                    server.engine().row_count(tid)
                })
                .collect();
            (night, counts)
        };
        let (serial, serial_counts) = run(&LoaderConfig::test());
        let (piped, piped_counts) =
            run(&LoaderConfig::test().with_pipeline(crate::config::PipelineMode::Double));
        assert_eq!(serial.rows_loaded(), piped.rows_loaded());
        assert_eq!(serial.rows_skipped(), piped.rows_skipped());
        assert_eq!(serial.loaded_by_table(), piped.loaded_by_table());
        assert_eq!(serial_counts, piped_counts);
        assert_eq!(piped.rows_loaded(), expected.total_loadable());
    }

    #[test]
    fn parallel_with_errors_matches_expected_counts() {
        let cfg = GenConfig::night(33, 100)
            .with_files(6)
            .with_error_rate(0.05);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        assert!(expected.corrupted_objects > 0);
        let server = fresh_server();
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            3,
            AssignmentPolicy::Dynamic,
        );
        assert_eq!(report.rows_loaded(), expected.total_loadable());
        assert_eq!(
            report.rows_skipped(),
            expected.total_emitted() - expected.total_loadable()
        );
    }

    #[test]
    fn static_assignment_loads_the_same_rows() {
        let cfg = GenConfig::night(35, 100).with_files(5);
        let files = generate_observation(&cfg);
        let expected = aggregate_expected(&files);
        let server = fresh_server();
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            2,
            AssignmentPolicy::Static,
        );
        assert_eq!(report.rows_loaded(), expected.total_loadable());
        assert_eq!(report.nodes, 2);
    }

    #[test]
    fn single_node_degenerates_to_serial() {
        let cfg = GenConfig::night(37, 100).with_files(3);
        let files = generate_observation(&cfg);
        let server = fresh_server();
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            1,
            AssignmentPolicy::Dynamic,
        );
        assert_eq!(report.files.len(), 3);
        assert!(report.rows_loaded() > 0);
        assert!((report.node_imbalance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_metric_positive() {
        let cfg = GenConfig::night(39, 100).with_files(4);
        let files = generate_observation(&cfg);
        let server = fresh_server();
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::test(),
            2,
            AssignmentPolicy::Dynamic,
        );
        assert!(report.throughput_mb_per_s() > 0.0);
        assert!(report.bytes_read() > 0);
    }
}
