//! Sharded night loading: route catalog files into declination-zone
//! shards, flush each zone under its fencing epoch, and supervise shard
//! health with the same lease discipline the loader fleet uses.
//!
//! The paper loads one big SQL Server; PAPERS.md's zone papers
//! (Nieto-Santisteban et al.) split the catalog across databases by
//! declination so both loading and spatial queries parallelize. This
//! module is the loading half of that split, on top of
//! [`skydb::shard::ShardGroup`]:
//!
//! * [`ShardRouter`] — a deterministic, content-derived assignment of
//!   every loadable row to a zone. The first eight catalog tables
//!   (detector/frame metadata) are *replicated* to every shard so each
//!   shard's foreign keys stay self-contained; `objects` routes by the
//!   declination of the **first occurrence** of each primary key (a
//!   duplicate-PK row must land where the original landed, so the PK
//!   constraint rejects it there — same verdict a single engine gives);
//!   `fingers` and `object_flags` follow their parent object's zone.
//! * [`ShardLoader`] — flushes one routed file zone-by-zone, each zone
//!   in one transaction fenced with [`ShardGroup::write_fence`]. A flush
//!   that loses a fencing race ([`ErrorClass::Fenced`]) or a shard
//!   ([`ErrorClass::ServerLost`]) requeues the whole file; replays are
//!   idempotent because committed zones reject the replayed rows as
//!   primary-key skips. The journal records a file only after *every*
//!   zone committed.
//! * [`ShardSupervisor`] — per-zone heartbeats with a lease TTL,
//!   generalizing the loader-fleet lease machinery to shards. A crashed
//!   or stalled shard is fenced ([`ShardGroup::fence_and_take`] — the
//!   point of no return for zombie flushes), rebuilt from its durable
//!   log via [`Engine::recover_from_log_checked`] — falling back to a
//!   journal-driven reload from source files when the log is damaged —
//!   and swapped back in with [`ShardGroup::install`]. Each new epoch is
//!   persisted to the [`LoadJournal`] so a restarted coordinator can
//!   [`ShardGroup::restore_epoch`] past every epoch ever issued.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use skycat::gen::CatalogFile;
use skycat::schema::CATALOG_TABLES;
use skydb::engine::Engine;
use skydb::error::DbResult;
use skydb::shard::{ShardGroup, ZoneMap};
use skydb::{DbConfig, FaultPlan, FaultPlanConfig, Row, Server, Session, Value};

use crate::recovery::LoadJournal;
use crate::resilience::{classify, ErrorClass};

/// Catalog tables partitioned by declination zone; every other catalog
/// table is replicated to all shards so per-shard foreign keys resolve
/// locally.
pub const ZONED_TABLES: [&str; 3] = ["objects", "fingers", "object_flags"];

/// How many leading [`CATALOG_TABLES`] entries are replicated to every
/// shard (the detector/frame metadata `objects` rows point at).
const REPLICATED: usize = CATALOG_TABLES.len() - ZONED_TABLES.len();

/// The journal key a zone's fencing epoch persists under.
pub fn shard_epoch_journal_key(zone: u32) -> String {
    format!("shard/{zone}")
}

/// The journal key recording that one zone's share of a file committed.
/// A requeued file skips zones already journaled here, so a transient
/// failure in one zone never replays the others — progress is durable at
/// zone granularity, the way the single-engine loader checkpoints at
/// flush granularity.
pub fn zone_commit_journal_key(file: &str, zone: u32) -> String {
    format!("{file}#z{zone}")
}

/// One catalog file routed into per-zone, per-table row buckets.
pub struct RoutedFile {
    /// Source file name (the journal key).
    pub name: String,
    /// Total source lines (the journal checkpoint once committed).
    pub lines: u64,
    /// `rows[zone][table_index]` in [`CATALOG_TABLES`] order.
    rows: Vec<Vec<Vec<Row>>>,
}

impl RoutedFile {
    /// Rows bound for `zone`, indexed by [`CATALOG_TABLES`] position.
    pub fn zone_rows(&self, zone: u32) -> &[Vec<Row>] {
        &self.rows[zone as usize]
    }

    /// Does `zone` receive any rows from this file?
    pub fn touches_zone(&self, zone: u32) -> bool {
        self.rows[zone as usize].iter().any(|t| !t.is_empty())
    }
}

/// Deterministic, content-derived row → zone assignment.
///
/// The router is stateful: it remembers which zone owns each `object_id`
/// so child rows and duplicate primary keys follow the original across
/// files. Routing the same files in the same order always reproduces the
/// same assignment — which is how a shard rebuilt from source files and a
/// restarted coordinator agree with the original run.
pub struct ShardRouter {
    map: ZoneMap,
    zones: u32,
    owner: HashMap<i64, u32>,
    table_index: HashMap<&'static str, usize>,
}

impl ShardRouter {
    /// A fresh router over `map`.
    pub fn new(map: ZoneMap) -> ShardRouter {
        ShardRouter {
            map,
            zones: map.zones(),
            owner: HashMap::new(),
            table_index: CATALOG_TABLES
                .iter()
                .enumerate()
                .map(|(i, t)| (*t, i))
                .collect(),
        }
    }

    /// The zone that owns `object_id`, if this router has routed it.
    pub fn owner_zone(&self, object_id: i64) -> Option<u32> {
        self.owner.get(&object_id).copied()
    }

    /// Route one file: malformed lines and corrupt records are skipped
    /// (exactly as the single-engine loader skips them), replicated
    /// tables broadcast to every zone, zoned tables route by first-seen
    /// declination. Primes `group`'s pk directory when given.
    pub fn route(&mut self, file: &CatalogFile, group: Option<&ShardGroup>) -> RoutedFile {
        let mut rows: Vec<Vec<Vec<Row>>> = (0..self.zones)
            .map(|_| vec![Vec::new(); CATALOG_TABLES.len()])
            .collect();
        let mut lines = 0u64;
        for line in file.text.lines() {
            lines += 1;
            let rec = match skycat::parse_line(line) {
                Ok(rec) => rec,
                Err(_) => continue,
            };
            let (table, row) = match skycat::transform(&rec) {
                Ok(t) => t,
                Err(_) => continue,
            };
            let idx = self.table_index[table];
            if idx < REPLICATED {
                for z in 0..self.zones {
                    rows[z as usize][idx].push(row.clone());
                }
                continue;
            }
            let zone = if table == "objects" {
                let id = match row.first() {
                    Some(Value::Int(id)) => *id,
                    _ => 0,
                };
                let dec = match row.get(3) {
                    Some(Value::Float(d)) => *d,
                    _ => f64::NAN,
                };
                let map = self.map;
                let zone = *self
                    .owner
                    .entry(id)
                    .or_insert_with(|| map.zone_for_dec(dec));
                if let Some(g) = group {
                    g.note_pk_zone(id, zone);
                }
                zone
            } else {
                // fingers / object_flags carry the parent object_id at
                // column 1; an orphan (parent never routed) goes to zone
                // 0, where its foreign key fails exactly as it would on
                // a single engine.
                let id = match row.get(1) {
                    Some(Value::Int(id)) => *id,
                    _ => 0,
                };
                self.owner.get(&id).copied().unwrap_or(0)
            };
            rows[zone as usize][idx].push(row);
        }
        RoutedFile {
            name: file.name.clone(),
            lines,
            rows,
        }
    }
}

/// Knobs for the sharded loader's flush-and-requeue loop.
#[derive(Debug, Clone)]
pub struct ShardLoadConfig {
    /// Per-call session budget on flushes.
    pub call_timeout: Duration,
    /// How many times one file may requeue (fencing races, shard
    /// failovers, connection weather) before the load fails loudly.
    pub max_file_attempts: u32,
    /// Real-time pause before retrying a requeued file — long enough for
    /// the supervisor to notice a dead shard and rebuild it.
    pub retry_pause: Duration,
    /// Insert batch size per `execute_batch` call.
    pub batch_size: usize,
}

impl Default for ShardLoadConfig {
    fn default() -> Self {
        ShardLoadConfig {
            call_timeout: Duration::from_millis(50),
            max_file_attempts: 200,
            retry_pause: Duration::from_millis(5),
            batch_size: 300,
        }
    }
}

/// What one sharded load did.
#[derive(Debug, Clone, Default)]
pub struct ShardLoadReport {
    /// Files whose every zone committed (journal-recorded).
    pub files_loaded: u64,
    /// Files skipped because the journal already had them.
    pub files_resumed: u64,
    /// Rows applied across all shards (replicated rows count once per
    /// shard; primary-key skips on replay do not count).
    pub rows_applied: u64,
    /// Whole-file requeues (any retryable cause).
    pub requeues: u64,
    /// Requeues caused specifically by a fencing rejection.
    pub fenced_flushes: u64,
}

/// Routes files and flushes them into a [`ShardGroup`] under per-shard
/// fencing epochs.
pub struct ShardLoader {
    group: Arc<ShardGroup>,
    cfg: ShardLoadConfig,
    m_flushes: skyobs::CounterHandle,
    m_rows: skyobs::CounterHandle,
    m_requeues: skyobs::CounterHandle,
    m_fenced: skyobs::CounterHandle,
}

impl ShardLoader {
    /// A loader over `group`, registering `shard.*` counters in `obs`.
    pub fn new(
        group: Arc<ShardGroup>,
        cfg: ShardLoadConfig,
        obs: &skyobs::Registry,
    ) -> ShardLoader {
        ShardLoader {
            group,
            cfg,
            m_flushes: obs.counter("shard.flushes"),
            m_rows: obs.counter("shard.rows_applied"),
            m_requeues: obs.counter("shard.requeues"),
            m_fenced: obs.counter("shard.fenced_flushes"),
        }
    }

    /// Load `files` through `router`, journaling each file once all of
    /// its zones committed. Files already journal-complete are skipped;
    /// requeued replays dedup as primary-key skips in zones that already
    /// committed, so the net effect is exactly-once.
    pub fn load_files(
        &self,
        router: &mut ShardRouter,
        files: &[CatalogFile],
        journal: Option<&LoadJournal>,
    ) -> Result<ShardLoadReport, String> {
        let mut report = ShardLoadReport::default();
        // A private journal when the caller brought none: zone-level
        // progress tracking needs one either way.
        let own = LoadJournal::new();
        let journal = journal.unwrap_or(&own);
        // Route in file order first: owner assignments must be complete
        // before any flush so a requeued file re-flushes identically.
        let routed: Vec<RoutedFile> = files
            .iter()
            .map(|f| router.route(f, Some(&self.group)))
            .collect();
        let mut queue: VecDeque<(usize, u32)> = (0..routed.len()).map(|i| (i, 0)).collect();
        while let Some((i, attempts)) = queue.pop_front() {
            let file = &routed[i];
            if journal.committed_lines(&file.name) >= file.lines && file.lines > 0 {
                report.files_resumed += 1;
                continue;
            }
            match self.flush_file(file, journal) {
                Ok(applied) => {
                    report.rows_applied += applied;
                    report.files_loaded += 1;
                    journal.record(&file.name, file.lines);
                }
                Err(e) => {
                    let class = classify(&e);
                    if class == ErrorClass::Permanent {
                        return Err(format!("file {} failed permanently: {e}", file.name));
                    }
                    if attempts + 1 >= self.cfg.max_file_attempts {
                        return Err(format!(
                            "file {} exhausted {} attempts: {e}",
                            file.name, self.cfg.max_file_attempts
                        ));
                    }
                    if class == ErrorClass::Fenced {
                        report.fenced_flushes += 1;
                        self.m_fenced.inc();
                    }
                    report.requeues += 1;
                    self.m_requeues.inc();
                    queue.push_back((i, attempts + 1));
                    std::thread::sleep(self.cfg.retry_pause);
                }
            }
        }
        Ok(report)
    }

    /// Flush every zone this file touches, one fenced transaction per
    /// zone, journaling each zone as it commits. A zone failing retryably
    /// fails the file up to the requeue loop, which retries only the
    /// zones still missing; a zone replayed anyway (journal lost)
    /// tolerates it as primary-key skips.
    fn flush_file(&self, file: &RoutedFile, journal: &LoadJournal) -> DbResult<u64> {
        let mut applied = 0u64;
        for zone in 0..self.group.zones() {
            if !file.touches_zone(zone) {
                continue;
            }
            let zone_key = zone_commit_journal_key(&file.name, zone);
            if journal.committed_lines(&zone_key) >= file.lines {
                continue;
            }
            applied += self.flush_zone(zone, file.zone_rows(zone))?;
            journal.record(&zone_key, file.lines);
        }
        Ok(applied)
    }

    fn flush_zone(&self, zone: u32, tables: &[Vec<Row>]) -> DbResult<u64> {
        let server = self.group.server(zone);
        let session = server.connect();
        session.set_call_timeout(Some(self.cfg.call_timeout));
        session.set_fence(Some(self.group.write_fence(zone)));
        let outcome = self.flush_zone_inner(&session, tables);
        if outcome.is_err() {
            // Best-effort: the replacement generation must not inherit a
            // half-open transaction. A dead or fenced server may refuse
            // the rollback too; that is fine — its state is gone anyway.
            let _ = session.rollback();
        }
        outcome
    }

    fn flush_zone_inner(&self, session: &Session, tables: &[Vec<Row>]) -> DbResult<u64> {
        let mut applied = 0u64;
        for (idx, rows) in tables.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let stmt = session.prepare_insert(CATALOG_TABLES[idx])?;
            let mut first = 0usize;
            while first < rows.len() {
                let end = (first + self.cfg.batch_size).min(rows.len());
                let outcome = session.execute_batch(&stmt, &rows[first..end])?;
                applied += outcome.applied as u64;
                match outcome.failed {
                    None => first = end,
                    Some((offset, err)) => {
                        // Same contract as the single-engine bulk path:
                        // only proven-bad rows (constraint/type) are
                        // skippable; anything else aborts to the requeue
                        // layer where the whole file replays.
                        if classify(&err) != ErrorClass::Permanent {
                            return Err(err);
                        }
                        first = first + offset + 1;
                    }
                }
            }
        }
        session.commit()?;
        self.m_flushes.inc();
        self.m_rows.add(applied);
        Ok(applied)
    }
}

/// Knobs for the shard supervisor.
#[derive(Debug, Clone)]
pub struct ShardSupervisorConfig {
    /// A shard whose heartbeat is older than this is declared dead.
    pub lease_ttl: Duration,
    /// Heartbeat pulse interval (TTL/4 is the fleet's convention).
    pub heartbeat_interval: Duration,
    /// Supervisor poll interval.
    pub tick: Duration,
    /// Database configuration for rebuilt shard engines.
    pub db_config: DbConfig,
    /// Fault plan to re-arm on a rebuilt shard (connection weather keeps
    /// blowing after a failover; a rebuilt shard is not a calm shard).
    pub fault_plan: Option<FaultPlanConfig>,
}

impl ShardSupervisorConfig {
    /// Defaults scaled for a chaos soak: short TTL, fast ticks.
    pub fn soak(db_config: DbConfig, lease_ttl: Duration) -> ShardSupervisorConfig {
        ShardSupervisorConfig {
            lease_ttl,
            heartbeat_interval: (lease_ttl / 4).max(Duration::from_millis(1)),
            tick: (lease_ttl / 8).max(Duration::from_millis(1)),
            db_config,
            fault_plan: None,
        }
    }

    /// Builder-style: re-arm rebuilt shards with this fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlanConfig) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

struct ZoneHealth {
    /// Milliseconds since supervisor start at the last heartbeat.
    heartbeat: AtomicU64,
    /// A stalled shard's heartbeat thread stops pulsing — the simulated
    /// frozen process the supervisor must detect by TTL expiry.
    stalled: AtomicBool,
}

/// Watches shard heartbeats and rebuilds dead generations, generalizing
/// the loader fleet's lease supervisor to shards.
pub struct ShardSupervisor {
    group: Arc<ShardGroup>,
    obs: Arc<skyobs::Registry>,
    cfg: ShardSupervisorConfig,
    zones: Vec<Arc<ZoneHealth>>,
    stop: Arc<AtomicBool>,
    started: Instant,
    journal: Arc<LoadJournal>,
    /// Source files for the disaster path: a shard whose durable log is
    /// unreadable is reloaded from these, taking only its zone's rows.
    source: Vec<CatalogFile>,
    handles: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>,
    m_reclaims: skyobs::CounterHandle,
    m_rebuilds: skyobs::CounterHandle,
}

impl ShardSupervisor {
    /// Start heartbeat threads (one per zone) and the supervisor loop.
    /// `journal` persists fencing epochs; `source` feeds the
    /// rebuild-from-source disaster path.
    pub fn start(
        group: Arc<ShardGroup>,
        obs: &Arc<skyobs::Registry>,
        cfg: ShardSupervisorConfig,
        source: Vec<CatalogFile>,
        journal: Arc<LoadJournal>,
    ) -> Arc<ShardSupervisor> {
        let zones: Vec<Arc<ZoneHealth>> = (0..group.zones())
            .map(|_| {
                Arc::new(ZoneHealth {
                    heartbeat: AtomicU64::new(0),
                    stalled: AtomicBool::new(false),
                })
            })
            .collect();
        let sup = Arc::new(ShardSupervisor {
            group,
            obs: obs.clone(),
            cfg,
            zones,
            stop: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
            journal,
            source,
            handles: parking_lot::Mutex::new(Vec::new()),
            m_reclaims: obs.counter("shard.reclaims"),
            m_rebuilds: obs.counter("shard.rebuilds"),
        });
        let mut handles = Vec::new();
        for zone in 0..sup.group.zones() {
            let s = sup.clone();
            handles.push(std::thread::spawn(move || s.heartbeat_loop(zone)));
        }
        {
            let s = sup.clone();
            handles.push(std::thread::spawn(move || s.supervise_loop()));
        }
        *sup.handles.lock() = handles;
        sup
    }

    /// Freeze (or thaw) `zone`'s heartbeat — the [`skydb::fault::FaultKind::ShardStall`]
    /// hook. A reclaim clears the stall, modeling the frozen process
    /// being replaced.
    pub fn stall(&self, zone: u32, stalled: bool) {
        self.zones[zone as usize]
            .stalled
            .store(stalled, Ordering::Release);
    }

    /// Shard generations reclaimed so far.
    pub fn reclaims(&self) -> u64 {
        self.m_reclaims.get()
    }

    /// Zones whose heartbeat is currently frozen by a stall (empty once
    /// every stalled generation has been reclaimed).
    pub fn stalled_zones(&self) -> Vec<u32> {
        self.zones
            .iter()
            .enumerate()
            .filter(|(_, z)| z.stalled.load(Ordering::Acquire))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Stop and join every supervisor thread.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }

    fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn heartbeat_loop(&self, zone: u32) {
        let health = &self.zones[zone as usize];
        while !self.stop.load(Ordering::Acquire) {
            // A crashed shard cannot pulse; a stalled one will not.
            if !health.stalled.load(Ordering::Acquire) && !self.group.server(zone).is_crashed() {
                health.heartbeat.store(self.elapsed_ms(), Ordering::Release);
            }
            std::thread::sleep(self.cfg.heartbeat_interval);
        }
    }

    fn supervise_loop(&self) {
        let ttl = self.cfg.lease_ttl.as_millis() as u64;
        while !self.stop.load(Ordering::Acquire) {
            std::thread::sleep(self.cfg.tick);
            for zone in 0..self.group.zones() {
                let server = self.group.server(zone);
                let last = self.zones[zone as usize].heartbeat.load(Ordering::Acquire);
                let stale = self.elapsed_ms().saturating_sub(last) > ttl;
                if server.is_crashed() || stale {
                    self.reclaim(zone);
                }
            }
        }
    }

    /// Fence the zone's current generation (rejecting zombie flushes from
    /// here on), rebuild a replacement from the durable log — or from
    /// source files when the log is damaged — and swap it in.
    fn reclaim(&self, zone: u32) {
        self.m_reclaims.inc();
        let (old, epoch) = self.group.fence_and_take(zone);
        let log = old.engine().durable_log();
        let replacement = match Engine::recover_from_log_checked(
            self.cfg.db_config.clone(),
            skycat::build_schemas(),
            &log,
        ) {
            Ok((engine, false)) => Server::with_engine_and_obs(engine, self.obs.clone()),
            // A flagged or unreadable log cannot be trusted to hold
            // every committed row: fall back to re-deriving this
            // zone wholly from source files.
            Ok((_, true)) | Err(_) => match self.rebuild_from_source(zone) {
                Ok(server) => server,
                Err(e) => {
                    // Leave the zone fenced-but-dead; reads report it
                    // partial and the next tick tries again.
                    self.obs.counter("shard.rebuild_failures").inc();
                    let _ = e;
                    return;
                }
            },
        };
        if let Some(plan) = &self.cfg.fault_plan {
            replacement.set_fault_plan(Some(FaultPlan::new(plan.clone())));
        }
        self.group.install(zone, replacement);
        self.m_rebuilds.inc();
        self.journal
            .record_epoch(&shard_epoch_journal_key(zone), epoch);
        self.zones[zone as usize]
            .heartbeat
            .store(self.elapsed_ms(), Ordering::Release);
        self.stall(zone, false);
    }

    /// Disaster path: a fresh catalog shard fed this zone's rows from
    /// every journal-complete source file. Files still in flight are the
    /// loader's to replay — its journal says they never finished.
    fn rebuild_from_source(&self, zone: u32) -> Result<Arc<Server>, String> {
        let server = fresh_catalog_server(self.cfg.db_config.clone(), &self.obs)?;
        let mut router = ShardRouter::new(*self.group.map());
        for file in &self.source {
            let routed = router.route(file, None);
            // Reload what the journal says this zone already committed —
            // whole files, or this zone's share of an in-flight file
            // (whose remaining zones the loader will still deliver).
            let whole = self.journal.committed_lines(&routed.name) >= routed.lines;
            let zone_done = self
                .journal
                .committed_lines(&zone_commit_journal_key(&routed.name, zone))
                >= routed.lines;
            if !(whole || zone_done) {
                continue;
            }
            let session = server.connect();
            for (idx, rows) in routed.zone_rows(zone).iter().enumerate() {
                if rows.is_empty() {
                    continue;
                }
                let stmt = session
                    .prepare_insert(CATALOG_TABLES[idx])
                    .map_err(|e| e.to_string())?;
                let mut first = 0usize;
                while first < rows.len() {
                    let outcome = session
                        .execute_batch(&stmt, &rows[first..])
                        .map_err(|e| e.to_string())?;
                    match outcome.failed {
                        None => break,
                        Some((offset, err)) => {
                            if classify(&err) != ErrorClass::Permanent {
                                return Err(err.to_string());
                            }
                            first = first + offset + 1;
                        }
                    }
                }
            }
            session.commit().map_err(|e| e.to_string())?;
        }
        Ok(server)
    }
}

/// One fresh, fault-free shard server carrying the full catalog schema
/// and the static + observation seeds every shard replicates.
pub fn fresh_catalog_server(
    db_config: DbConfig,
    obs: &Arc<skyobs::Registry>,
) -> Result<Arc<Server>, String> {
    let server = Server::start_with_obs(db_config, obs.clone());
    skycat::create_all(server.engine()).map_err(|e| e.to_string())?;
    skycat::seed_static(server.engine()).map_err(|e| e.to_string())?;
    skycat::seed_observation(server.engine(), 1, 100).map_err(|e| e.to_string())?;
    Ok(server)
}

/// Per-zone ground truth for a sharded load, derived from an independent
/// single-engine reference load.
pub struct ShardReference {
    /// `per_zone[zone][table]` — expected row count of every catalog
    /// table on that shard (replicated tables carry the full count).
    pub per_zone: Vec<BTreeMap<&'static str, u64>>,
    /// Whole-catalog totals per table (what a complete scatter-gather
    /// scan must return).
    pub totals: BTreeMap<&'static str, u64>,
}

/// Load `files` into one fresh, faultless, unsharded engine — the
/// production single-engine loader, not the shard router — and derive
/// what every shard must hold: the reference a sharded chaos soak
/// verifies against with exact counts.
pub fn clean_reference(map: &ZoneMap, files: &[CatalogFile]) -> Result<ShardReference, String> {
    let obs = Arc::new(skyobs::Registry::new());
    let server = fresh_catalog_server(DbConfig::test(), &obs)?;
    let loader_cfg = crate::config::LoaderConfig::test();
    for file in files {
        let session = server.connect();
        crate::bulk::load_catalog_text(&session, &loader_cfg, &file.name, &file.text)
            .map_err(|e| format!("reference load of {}: {e}", file.name))?;
    }
    let engine = server.engine();
    let mut totals = BTreeMap::new();
    for table in CATALOG_TABLES {
        let tid = engine.table_id(table).map_err(|e| e.to_string())?;
        totals.insert(table, engine.row_count(tid));
    }
    // Zone ownership of every surviving object, by its stored dec.
    let session = server.connect();
    let objects = session
        .query_scan_named("objects", None)
        .map_err(|e| e.to_string())?;
    let mut owner: HashMap<i64, u32> = HashMap::new();
    let mut per_zone: Vec<BTreeMap<&'static str, u64>> =
        (0..map.zones()).map(|_| BTreeMap::new()).collect();
    for row in &objects.rows {
        let (id, dec) = match (row.first(), row.get(3)) {
            (Some(Value::Int(id)), Some(Value::Float(dec))) => (*id, *dec),
            _ => continue,
        };
        let zone = map.zone_for_dec(dec);
        owner.insert(id, zone);
        *per_zone[zone as usize].entry("objects").or_insert(0) += 1;
    }
    for table in ["fingers", "object_flags"] {
        let reply = session
            .query_scan_named(table, None)
            .map_err(|e| e.to_string())?;
        for row in &reply.rows {
            let id = match row.get(1) {
                Some(Value::Int(id)) => *id,
                _ => continue,
            };
            let zone = owner.get(&id).copied().unwrap_or(0);
            *per_zone[zone as usize].entry(table).or_insert(0) += 1;
        }
    }
    for zone in per_zone.iter_mut() {
        for table in CATALOG_TABLES.iter().take(REPLICATED) {
            zone.insert(table, totals[table]);
        }
        for table in ZONED_TABLES {
            zone.entry(table).or_insert(0);
        }
    }
    Ok(ShardReference { per_zone, totals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycat::gen::{aggregate_expected, generate_observation, GenConfig};
    use skydb::shard::GatherPolicy;

    fn night(seed: u64, files: usize) -> Vec<CatalogFile> {
        let cfg = GenConfig::night(seed, 100)
            .with_files(files)
            .with_error_rate(0.05);
        generate_observation(&cfg)
    }

    fn build_group(shards: u32, obs: &Arc<skyobs::Registry>) -> Arc<ShardGroup> {
        let map = ZoneMap::band(shards, -1.2, 1.2);
        let servers = (0..shards)
            .map(|_| fresh_catalog_server(DbConfig::test(), obs).unwrap())
            .collect();
        Arc::new(ShardGroup::new(
            map,
            servers,
            &ZONED_TABLES,
            GatherPolicy::default().with_attempts(3),
            obs,
        ))
    }

    #[test]
    fn sharded_load_matches_single_engine_reference_per_zone() {
        let files = night(2005, 3);
        let obs = Arc::new(skyobs::Registry::new());
        let group = build_group(3, &obs);
        let loader = ShardLoader::new(group.clone(), ShardLoadConfig::default(), &obs);
        let mut router = ShardRouter::new(*group.map());
        let report = loader.load_files(&mut router, &files, None).unwrap();
        assert_eq!(report.files_loaded, 3);
        assert_eq!(report.requeues, 0);

        let reference = clean_reference(group.map(), &files).unwrap();
        for zone in 0..group.zones() {
            let engine_ref = group.server(zone);
            let engine = engine_ref.engine();
            for (table, expect) in &reference.per_zone[zone as usize] {
                let tid = engine.table_id(table).unwrap();
                assert_eq!(engine.row_count(tid), *expect, "zone {zone} table {table}");
            }
        }
        // Scatter-gather totals equal the single-engine totals, and the
        // generator's own ground truth agrees.
        let expected = aggregate_expected(&files);
        let res = group.scan("objects", None).unwrap();
        assert!(!res.partial);
        assert_eq!(res.rows.len() as u64, reference.totals["objects"]);
        assert_eq!(reference.totals["objects"], expected.loadable["objects"]);
    }

    #[test]
    fn replayed_files_dedup_as_pk_skips() {
        let files = night(7, 2);
        let obs = Arc::new(skyobs::Registry::new());
        let group = build_group(2, &obs);
        let loader = ShardLoader::new(group.clone(), ShardLoadConfig::default(), &obs);
        let journal = LoadJournal::new();
        let mut router = ShardRouter::new(*group.map());
        loader
            .load_files(&mut router, &files, Some(&journal))
            .unwrap();
        // A full replay with a fresh journal replays every file; every
        // loadable row must dedup, leaving counts unchanged.
        let before: Vec<u64> = (0..group.zones())
            .map(|z| {
                let s = group.server(z);
                let tid = s.engine().table_id("objects").unwrap();
                s.engine().row_count(tid)
            })
            .collect();
        let mut router2 = ShardRouter::new(*group.map());
        loader.load_files(&mut router2, &files, None).unwrap();
        let after: Vec<u64> = (0..group.zones())
            .map(|z| {
                let s = group.server(z);
                let tid = s.engine().table_id("objects").unwrap();
                s.engine().row_count(tid)
            })
            .collect();
        assert_eq!(before, after, "replays must be idempotent");
        // And a journal-aware pass skips everything outright.
        let mut router3 = ShardRouter::new(*group.map());
        let resumed = loader
            .load_files(&mut router3, &files, Some(&journal))
            .unwrap();
        assert_eq!(resumed.files_resumed, 2);
        assert_eq!(resumed.files_loaded, 0);
    }

    #[test]
    fn supervisor_rebuilds_a_crashed_shard_from_its_log() {
        let files = night(11, 2);
        let obs = Arc::new(skyobs::Registry::new());
        let group = build_group(2, &obs);
        let loader = ShardLoader::new(group.clone(), ShardLoadConfig::default(), &obs);
        let journal = Arc::new(LoadJournal::new());
        let mut router = ShardRouter::new(*group.map());
        loader
            .load_files(&mut router, &files, Some(&journal))
            .unwrap();
        let sup = ShardSupervisor::start(
            group.clone(),
            &obs,
            ShardSupervisorConfig::soak(DbConfig::test(), Duration::from_millis(40)),
            files.clone(),
            journal.clone(),
        );
        let victim = 1u32;
        let victim_server = group.server(victim);
        let tid = victim_server.engine().table_id("objects").unwrap();
        let rows_before = victim_server.engine().row_count(tid);
        victim_server.crash();
        let deadline = Instant::now() + Duration::from_secs(5);
        while group.server(victim).is_crashed() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        sup.shutdown();
        let rebuilt = group.server(victim);
        assert!(!rebuilt.is_crashed(), "supervisor never rebuilt the shard");
        let tid = rebuilt.engine().table_id("objects").unwrap();
        assert_eq!(
            rebuilt.engine().row_count(tid),
            rows_before,
            "log recovery must restore every committed row"
        );
        assert!(sup.reclaims() >= 1);
        assert!(
            group.epoch(victim) >= 1,
            "the dead generation was never fenced"
        );
        assert_eq!(
            journal.epoch_for(&shard_epoch_journal_key(victim)),
            group.epoch(victim),
            "epochs must persist for coordinator restarts"
        );
    }

    #[test]
    fn fenced_flush_requeues_and_lands_exactly_once() {
        let files = night(13, 1);
        let obs = Arc::new(skyobs::Registry::new());
        let group = build_group(2, &obs);
        // Raise zone 0's fence floor on the server *behind the group's
        // back*: the loader's write_fence (epoch 0) is now stale, so its
        // first flush classifies Fenced and requeues. Half-way through
        // the requeue pauses, the coordinator "learns" the newer epoch —
        // exactly what restore_epoch does after a restart — and the
        // retried flush lands under the refreshed fence.
        group
            .server(0)
            .advance_fence(skydb::shard::shard_fence_key(0), 1);
        let g2 = group.clone();
        let heal = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            g2.restore_epoch(0, 1);
        });
        let loader = ShardLoader::new(group.clone(), ShardLoadConfig::default(), &obs);
        let mut router = ShardRouter::new(*group.map());
        let report = loader.load_files(&mut router, &files, None).unwrap();
        heal.join().unwrap();
        assert_eq!(report.files_loaded, 1);
        assert!(
            report.fenced_flushes >= 1,
            "the stale fence was never rejected"
        );
        let reference = clean_reference(group.map(), &files).unwrap();
        let res = group.scan("objects", None).unwrap();
        assert!(!res.partial);
        assert_eq!(res.rows.len() as u64, reference.totals["objects"]);
    }
}
