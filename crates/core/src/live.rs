//! Live micro-batch ingest: files load as they arrive over the night.
//!
//! The paper's pipeline (§4) assumes the whole night's catalog files are
//! staged before the bulk load begins. A live survey can't wait: the
//! telescope observes all night and the extraction pipeline emits files
//! continuously, so the repository ingests each file as a **fenced
//! micro-batch** the moment it lands — the same exactly-once loader-fleet
//! machinery as the nightly bulk path ([`crate::parallel`]), driven one
//! file at a time.
//!
//! What matters operationally is **freshness**: how stale is the newest
//! committed row relative to its arrival? This module models the night as
//! a deterministic Poisson [`ArrivalSchedule`] (seeded, reproducible) and
//! runs a single-server queueing clock over it: each batch becomes
//! visible at `avail = max(avail, arrival) + modeled_load_cost`, and its
//! freshness lag `avail - arrival` is recorded into the
//! `live.freshness_us` histogram. Bursts — a pipeline node flushing its
//! backlog ([`FaultKind::ArrivalBurst`]) — compress the schedule and show
//! up directly as lag-percentile spikes, which the per-run SLO check
//! ([`LiveReport::slo_met`]) turns into violations.

use std::sync::Arc;
use std::time::Duration;

use serde::Serialize;

use skycat::CatalogFile;
use skydb::fault::FaultKind;
use skydb::server::Server;
use skysim::cluster::AssignmentPolicy;
use skysim::ArrivalSchedule;

use crate::config::LoaderConfig;
use crate::recovery::LoadJournal;
use crate::report::ModeledCost;
use crate::serving::QueueStats;

/// How to drive a live-ingest night.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Seed for the arrival schedule (and anything downstream).
    pub seed: u64,
    /// Loader nodes per micro-batch.
    pub nodes: usize,
    /// Mean modeled inter-arrival gap between files.
    pub mean_interarrival: Duration,
    /// Arrivals compressed per injected burst.
    pub burst_run: usize,
    /// Gap-compression factor of an injected burst.
    pub burst_factor: f64,
    /// Freshness budget: a batch whose arrival→visible lag exceeds this
    /// counts as an SLO violation.
    pub slo_budget: Duration,
    /// Loader settings for each micro-batch.
    pub loader: LoaderConfig,
}

impl LiveConfig {
    /// Test/CI defaults: fast modeled night, generous budget.
    ///
    /// The fleet lease TTL is tightened from the production default: a
    /// micro-batch is one file, so idle nodes poll at TTL/8 between
    /// grants and a 30 s TTL would stall every batch for seconds of
    /// wall-clock on a night that models in microseconds.
    pub fn test(seed: u64) -> Self {
        LiveConfig {
            seed,
            nodes: 2,
            mean_interarrival: Duration::from_millis(5),
            burst_run: 3,
            burst_factor: 8.0,
            slo_budget: Duration::from_millis(250),
            loader: LoaderConfig::test().with_fleet(
                crate::fleet::FleetPolicy::default()
                    .with_lease_ttl(Duration::from_millis(250))
                    .with_heartbeat_interval(Duration::from_millis(50)),
            ),
        }
    }
}

/// What a live-ingest night did, batch by batch.
#[derive(Debug, Clone, Serialize)]
pub struct LiveReport {
    /// Seed the arrival schedule derived from.
    pub seed: u64,
    /// Micro-batches ingested (one per arrived file).
    pub batches: usize,
    /// Rows committed across all batches.
    pub rows_loaded: u64,
    /// Rows skipped by per-row policy.
    pub rows_skipped: u64,
    /// Whole files that failed.
    pub failed_files: usize,
    /// Failed file-load attempts retried by the fleet.
    pub retries: u64,
    /// Injected arrival bursts.
    pub arrival_bursts: u64,
    /// Modeled span from night start to the last arrival (micros).
    pub night_span_us: u64,
    /// Arrival→committed-visible lag percentiles (`live.freshness_us`).
    pub freshness: QueueStats,
    /// The configured freshness budget (micros).
    pub slo_budget_us: u64,
    /// Batches whose freshness lag exceeded the budget.
    pub slo_violations: u64,
}

impl LiveReport {
    /// `true` if every batch met the freshness budget.
    pub fn slo_met(&self) -> bool {
        self.slo_violations == 0
    }
}

/// Ingest `files` as they arrive over a modeled night. Each file is one
/// fenced micro-batch through [`crate::parallel::load_night_with_journal`]
/// — per-file leases, epoch fencing and (with `journal`) exactly-once
/// across coordinator crashes, identical to the bulk path. Returns `Err`
/// only on orchestration failure; per-file problems stay in the report.
pub fn run_live(
    server: &Arc<Server>,
    files: &[CatalogFile],
    cfg: &LiveConfig,
    journal: Option<&LoadJournal>,
) -> Result<LiveReport, crate::parallel::NightError> {
    let mut schedule = ArrivalSchedule::poisson(cfg.seed, files.len(), cfg.mean_interarrival);
    let obs = server.obs().clone();
    let freshness_hist = obs.histogram("live.freshness_us");
    let batches_ctr = obs.counter("live.batches");
    let violations_ctr = obs.counter("live.slo_violations");

    let mut report = LiveReport {
        seed: cfg.seed,
        batches: 0,
        rows_loaded: 0,
        rows_skipped: 0,
        failed_files: 0,
        retries: 0,
        arrival_bursts: 0,
        night_span_us: 0,
        freshness: QueueStats::default(),
        slo_budget_us: cfg.slo_budget.as_micros() as u64,
        slo_violations: 0,
    };

    // Single-server queue over the modeled night: `avail` is when the
    // ingest pipe finishes the previous batch.
    let mut avail = Duration::ZERO;
    for (i, file) in files.iter().enumerate() {
        // The fault layer may declare a burst starting at this arrival:
        // this one and the next few land nearly together.
        if let Some(plan) = server.fault_plan() {
            if plan.decide_arrival_fault().is_some() {
                schedule.compress_burst(i, cfg.burst_run, cfg.burst_factor);
                server.note_injected_fault(FaultKind::ArrivalBurst);
                report.arrival_bursts += 1;
            }
        }
        let arrival = schedule.offset(i);

        let before = ModeledCost::measure(server, Duration::ZERO);
        let night = crate::parallel::load_night_with_journal(
            server,
            std::slice::from_ref(file),
            &cfg.loader,
            cfg.nodes,
            AssignmentPolicy::Dynamic,
            journal,
        )?;
        let batch_cost = ModeledCost::measure(server, Duration::ZERO)
            .since(before)
            .total();

        // The batch can't start before it arrives, nor before the pipe
        // drains the previous batch; it becomes visible one modeled
        // load-cost later.
        avail = avail.max(arrival) + batch_cost;
        let lag = avail - arrival;
        freshness_hist.record(lag.as_micros() as u64);
        if lag > cfg.slo_budget {
            report.slo_violations += 1;
            violations_ctr.inc();
        }

        report.batches += 1;
        batches_ctr.inc();
        report.rows_loaded += night.rows_loaded();
        report.rows_skipped += night.rows_skipped();
        report.failed_files += night.failed_files.len();
        report.retries += night.retries;
    }

    report.night_span_us = schedule.span().as_micros() as u64;
    report.freshness = QueueStats::from_histogram(&freshness_hist);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycat::gen::{generate_file, GenConfig};
    use skydb::fault::{FaultPlan, FaultPlanConfig};
    use skydb::DbConfig;
    use skysim::time::TimeScale;

    fn night_files(seed: u64, n: usize) -> Vec<CatalogFile> {
        let cfg = GenConfig::small(seed, 100).with_files(n);
        (0..n).map(|i| generate_file(&cfg, i)).collect()
    }

    fn fresh_server() -> Arc<Server> {
        // Paper hardware at zero time-scale: modeled costs are accounted
        // (freshness needs them) without real sleeping.
        let server = Server::start(DbConfig::paper(TimeScale::ZERO));
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        server
    }

    #[test]
    fn live_night_loads_every_batch_and_measures_freshness() {
        let server = fresh_server();
        let files = night_files(901, 3);
        let expected: u64 = files.iter().map(|f| f.expected.total_loadable()).sum();
        let report = run_live(&server, &files, &LiveConfig::test(901), None).unwrap();
        assert_eq!(report.batches, 3);
        assert_eq!(report.rows_loaded, expected);
        assert_eq!(report.failed_files, 0);
        // Every batch produced one freshness sample; lag is never zero
        // (each load has modeled cost).
        assert_eq!(report.freshness.count, 3);
        assert!(report.freshness.max_us > 0);
        assert!(report.night_span_us > 0);
        // And the histogram is in the shared registry for `--metrics`.
        let snap = server.obs_snapshot();
        assert_eq!(snap.counter("live.batches"), 3);
    }

    #[test]
    fn arrival_burst_fires_deterministically_and_is_ledgered() {
        let server = fresh_server();
        server.set_fault_plan(Some(FaultPlan::new(
            FaultPlanConfig::new(77).with_arrival_burst_at(2),
        )));
        let files = night_files(903, 4);
        let report = run_live(&server, &files, &LiveConfig::test(903), None).unwrap();
        assert_eq!(report.arrival_bursts, 1);
        assert_eq!(
            server.obs_snapshot().counter("server.faults.arrival_burst"),
            1
        );
        // Burst or not, every row still lands exactly once.
        let expected: u64 = files.iter().map(|f| f.expected.total_loadable()).sum();
        assert_eq!(report.rows_loaded, expected);
    }

    #[test]
    fn slo_accounting_matches_budget() {
        let server = fresh_server();
        let files = night_files(905, 3);
        // An impossible budget: every batch violates.
        let mut tight = LiveConfig::test(905);
        tight.slo_budget = Duration::from_nanos(1);
        let report = run_live(&server, &files, &tight, None).unwrap();
        assert_eq!(report.slo_violations, 3);
        assert!(!report.slo_met());
        assert_eq!(server.obs_snapshot().counter("live.slo_violations"), 3);

        // A generous budget on a fresh server: none do.
        let server2 = fresh_server();
        let mut loose = LiveConfig::test(905);
        loose.slo_budget = Duration::from_secs(3600);
        let report2 = run_live(&server2, &files, &loose, None).unwrap();
        assert_eq!(report2.slo_violations, 0);
        assert!(report2.slo_met());
        assert_eq!(report2.rows_loaded, report.rows_loaded);
    }
}
