//! Journal-driven self-repair: turn the scrubber's quarantine list back
//! into catalog rows.
//!
//! The scrubber ([`skydb::scrub`]) removes rotted rows from the heap and
//! every index, leaving behind each row's **identity** (its primary key,
//! recovered from the PK index). This module closes the loop:
//!
//! 1. Map each quarantined row to the catalog file that produced it. The
//!    generator reserves a disjoint id span per file
//!    (`[(obs_id·1000 + file_idx + 1)·10⁷, +10⁷)`), so the PK alone names
//!    the source file — the same arithmetic a real survey performs with its
//!    per-file id-allocation manifest.
//! 2. Reset those files' committed-lines watermarks in the
//!    [`LoadJournal`] ([`LoadJournal::reset_file`]) — the watermark's
//!    "these lines are committed" claim is exactly what the rot falsified.
//!    Lease-epoch history is kept, so fencing still excludes pre-rot
//!    zombies.
//! 3. Re-load exactly those files through the normal fleet path
//!    ([`crate::parallel::load_night_with_journal`]). Survivor rows dedup
//!    as PK-violation skips; only the quarantined rows (and any rows a
//!    corrupt WAL lost) actually insert. Exactly-once falls out of the
//!    loader's existing machinery rather than a parallel repair path.
//!
//! When the caller knows the WAL itself was rotted (recovery stopped at a
//! bad record), the repair widens to **every** file of the night: the log's
//! lost tail could touch any of them, and re-loading a clean file is a
//! harmless all-skips pass.
//!
//! Telemetry: `repair.files_reloaded`, `repair.rows_restored`,
//! `repair.rows_skipped`, `repair.unmapped_rows`.

use std::collections::BTreeSet;
use std::sync::Arc;

use serde::Serialize;

use skycat::gen::CatalogFile;
use skydb::scrub::QuarantinedRow;
use skydb::value::Value;
use skydb::Server;
use skysim::cluster::AssignmentPolicy;

use crate::config::LoaderConfig;
use crate::recovery::LoadJournal;

/// Mirror of `skycat::gen`'s per-file id-space reservation.
const FILE_SPAN: i64 = 10_000_000;

/// The catalog file whose id span contains this quarantined row's primary
/// key, or `None` when the row cannot be mapped: a composite/non-integer
/// key, a seeded static row (ids below the first file span), or a row whose
/// PK the scrubber could not recover from the index.
pub fn source_file_for(row: &QuarantinedRow) -> Option<String> {
    let id = match row.pk.first()? {
        Value::Int(i) => *i,
        _ => return None,
    };
    if id < FILE_SPAN {
        return None;
    }
    let span = id / FILE_SPAN - 1;
    let obs_id = span / 1000;
    let file_idx = span % 1000;
    Some(format!("obs{obs_id:06}_f{file_idx:02}.cat"))
}

/// Committed rows across every table of the catalog.
fn total_rows(server: &Arc<Server>) -> u64 {
    let engine = server.engine();
    engine
        .table_names()
        .iter()
        .filter_map(|name| engine.table_id(name).ok())
        .map(|tid| engine.row_count(tid))
        .sum()
}

/// What one repair pass did.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RepairReport {
    /// Quarantined rows handed to the repairer.
    pub quarantined_rows: u64,
    /// Rows mapped to a source file (and therefore repairable).
    pub mapped_rows: u64,
    /// Rows with no recoverable source (counted, never silently dropped).
    pub unmapped_rows: u64,
    /// Whether the repair widened to the full night because the WAL itself
    /// was found rotted.
    pub widened_for_wal_rot: bool,
    /// Files re-loaded, in name order.
    pub files_reloaded: Vec<String>,
    /// Rows actually re-inserted (the restored rows).
    pub rows_restored: u64,
    /// Survivor rows deduplicated as PK-violation skips.
    pub rows_skipped: u64,
    /// Files the reload could not retire (empty on success).
    pub failed_files: Vec<String>,
}

impl RepairReport {
    /// Did the repair retire every file it set out to reload?
    pub fn complete(&self) -> bool {
        self.failed_files.is_empty()
    }
}

/// Run one repair pass over `server`.
///
/// `night` is the full set of source files (the survey keeps its raw
/// catalog files precisely so they can be re-derived); `quarantined` is the
/// scrubber's output; `wal_rot` widens the reload to the whole night.
/// Progress watermarks of the chosen files are reset in `journal` before
/// the reload, so the loader walks them from line 0.
pub fn run_repair(
    server: &Arc<Server>,
    night: &[CatalogFile],
    quarantined: &[QuarantinedRow],
    wal_rot: bool,
    cfg: &LoaderConfig,
    nodes: usize,
    journal: &LoadJournal,
) -> Result<RepairReport, String> {
    let obs = server.obs().clone();
    let files_ctr = obs.counter("repair.files_reloaded");
    let restored_ctr = obs.counter("repair.rows_restored");
    let skipped_ctr = obs.counter("repair.rows_skipped");
    let unmapped_ctr = obs.counter("repair.unmapped_rows");

    let mut report = RepairReport {
        quarantined_rows: quarantined.len() as u64,
        widened_for_wal_rot: wal_rot,
        ..RepairReport::default()
    };

    let mut targets: BTreeSet<String> = BTreeSet::new();
    for q in quarantined {
        match source_file_for(q) {
            Some(name) => {
                report.mapped_rows += 1;
                targets.insert(name);
            }
            None => report.unmapped_rows += 1,
        }
    }
    unmapped_ctr.add(report.unmapped_rows);
    if wal_rot {
        // The log's lost tail could touch any file; reload them all.
        targets.extend(night.iter().map(|f| f.name.clone()));
    }

    let reload: Vec<CatalogFile> = night
        .iter()
        .filter(|f| targets.contains(&f.name))
        .cloned()
        .collect();
    if reload.len() < targets.len() {
        let known: BTreeSet<&str> = night.iter().map(|f| f.name.as_str()).collect();
        let missing: Vec<&String> = targets
            .iter()
            .filter(|t| !known.contains(t.as_str()))
            .collect();
        return Err(format!(
            "quarantined rows map to files not in the provided night: {missing:?}"
        ));
    }
    if reload.is_empty() {
        return Ok(report);
    }

    for f in &reload {
        journal.reset_file(&f.name);
    }
    // `rows_restored` is a before/after row-count delta rather than the
    // reload's own `rows_loaded()`: under an active fault plan the reload
    // retries per file, and each per-file report reflects only the final
    // attempt's resume window — the delta counts every row that actually
    // came back, regardless of which attempt inserted it. (It assumes no
    // concurrent ingest during the repair pass, which holds for the scrub
    // workflow: repair runs after the night settles.)
    let rows_before = total_rows(server);
    let outcome = crate::parallel::load_night_with_journal(
        server,
        &reload,
        cfg,
        nodes.max(1),
        AssignmentPolicy::Dynamic,
        Some(journal),
    )
    .map_err(|e| format!("repair reload failed: {e}"))?;

    report.files_reloaded = reload.iter().map(|f| f.name.clone()).collect();
    report.rows_restored = total_rows(server).saturating_sub(rows_before);
    report.rows_skipped = outcome.rows_skipped();
    report.failed_files = outcome
        .failed_files
        .iter()
        .map(|f| f.file.clone())
        .collect();
    files_ctr.add(report.files_reloaded.len() as u64);
    restored_ctr.add(report.rows_restored);
    skipped_ctr.add(report.rows_skipped);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CommitPolicy, LoaderConfig};
    use skycat::gen::{aggregate_expected, generate_observation, GenConfig};
    use skydb::scrub::{run_scrub, ScrubConfig};
    use skydb::DbConfig;

    fn loaded_server(seed: u64, files: usize) -> (Arc<Server>, Vec<CatalogFile>, LoadJournal) {
        let server = Server::start(DbConfig::test());
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        let night = generate_observation(&GenConfig::night(seed, 100).with_files(files));
        let journal = LoadJournal::new();
        let cfg = LoaderConfig::test()
            .with_array_size(300)
            .with_commit_policy(CommitPolicy::PerFlush);
        crate::parallel::load_night_with_journal(
            &server,
            &night,
            &cfg,
            2,
            AssignmentPolicy::Dynamic,
            Some(&journal),
        )
        .unwrap();
        (server, night, journal)
    }

    #[test]
    fn span_arithmetic_maps_ids_back_to_their_file() {
        let night = generate_observation(&GenConfig::night(3, 100).with_files(3));
        for (idx, f) in night.iter().enumerate() {
            // Every OBJ id in the file maps back to exactly this file.
            for line in f.text.lines().filter(|l| l.starts_with("OBJ|")) {
                let id: i64 = line.split('|').nth(1).unwrap().parse().unwrap();
                let q = QuarantinedRow {
                    table: "objects".into(),
                    row_id: 0,
                    pk: vec![Value::Int(id)],
                };
                assert_eq!(
                    source_file_for(&q).as_deref(),
                    Some(f.name.as_str()),
                    "file {idx}"
                );
            }
        }
        // Seeded/static ids and empty PKs do not map.
        let seeded = QuarantinedRow {
            table: "observations".into(),
            row_id: 0,
            pk: vec![Value::Int(100)],
        };
        assert_eq!(source_file_for(&seeded), None);
        let empty = QuarantinedRow {
            table: "objects".into(),
            row_id: 0,
            pk: vec![],
        };
        assert_eq!(source_file_for(&empty), None);
    }

    #[test]
    fn quarantine_then_repair_restores_exact_counts() {
        let (server, night, journal) = loaded_server(51, 2);
        let expected = aggregate_expected(&night);

        // Rot three committed object rows, then scrub them out.
        for salt in [1u64, 2, 3] {
            server.engine().rot_heap_row("objects", salt).unwrap();
        }
        let report = run_scrub(server.engine(), &ScrubConfig::default(), server.obs()).unwrap();
        assert!(report.bad_records() >= 1, "rot was injected");
        let objects_tid = server.engine().table_id("objects").unwrap();
        assert!(server.engine().row_count(objects_tid) < expected.loadable["objects"]);

        let cfg = LoaderConfig::test()
            .with_array_size(300)
            .with_commit_policy(CommitPolicy::PerFlush);
        let repair = run_repair(
            &server,
            &night,
            &report.quarantined,
            false,
            &cfg,
            2,
            &journal,
        )
        .unwrap();
        assert!(repair.complete(), "failed: {:?}", repair.failed_files);
        assert_eq!(repair.unmapped_rows, 0);
        assert_eq!(repair.rows_restored, report.bad_records());
        assert!(repair.rows_skipped > 0, "survivors dedup as skips");

        // The catalog is back to the generator's ground truth, row for row.
        for (table, expect) in &expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(server.engine().row_count(tid), *expect, "{table}");
        }
    }

    #[test]
    fn wal_rot_widens_to_every_file() {
        let (server, night, journal) = loaded_server(53, 2);
        let cfg = LoaderConfig::test()
            .with_array_size(300)
            .with_commit_policy(CommitPolicy::PerFlush);
        let repair = run_repair(&server, &night, &[], true, &cfg, 2, &journal).unwrap();
        assert!(repair.widened_for_wal_rot);
        assert_eq!(repair.files_reloaded.len(), night.len());
        assert_eq!(repair.rows_restored, 0, "nothing was actually lost");
        let expected = aggregate_expected(&night);
        for (table, expect) in &expected.loadable {
            let tid = server.engine().table_id(table).unwrap();
            assert_eq!(server.engine().row_count(tid), *expect, "{table}");
        }
    }

    #[test]
    fn empty_quarantine_is_a_noop() {
        let (server, night, journal) = loaded_server(55, 1);
        let cfg = LoaderConfig::test();
        let repair = run_repair(&server, &night, &[], false, &cfg, 1, &journal).unwrap();
        assert!(repair.files_reloaded.is_empty());
        assert_eq!(repair.rows_restored, 0);
    }
}
