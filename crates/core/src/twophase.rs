//! An SDSS-style **two-phase** loader, for the comparison §6 could not run.
//!
//! The paper contrasts SkyLoader with the Sloan Digital Sky Survey's
//! framework: *"the catalog data is converted to comma-separated-value
//! ASCII files before the two-phase loading begins. The data in each
//! comma-separated-value file is associated with a single database table.
//! … the data is first loaded into Task databases … Then the data is fully
//! validated before being published to its final destination in the
//! Publish database."* SkyLoader instead does everything "in a single
//! pass", and the authors *believe* that is more efficient but "are unable
//! to conduct a direct performance comparison" (§6).
//!
//! This module implements the SDSS recipe against the same substrates so
//! the comparison can finally be made (experiment E7 in DESIGN.md):
//!
//! 1. **Convert** — parse the interleaved catalog file and split it into
//!    per-table row files (SDSS's CSV conversion). Parse errors are
//!    dropped here, as SDSS's converter would.
//! 2. **Task load** — bulk load each per-table file into a *Task database*
//!    with the same schema but **no foreign keys** (SDSS loads per-table
//!    files independently; referential checks happen later). PK/UNIQUE/
//!    CHECK/NOT NULL still apply on insert.
//! 3. **Validate** — run the referential checks over the Task database:
//!    every child row's FK target must exist among the task rows (or the
//!    already-published dimension tables).
//! 4. **Publish** — read the validated rows back and bulk-insert them into
//!    the Publish database in parent-before-child order.
//!
//! The Task database lives on its own server (its own CPU gate, network
//! endpoint and disks), as SDSS's Task DBs did on the cluster nodes.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::Serialize;

use skycat::format::parse_line;
use skycat::transform::transform;
use skycat::CatalogFile;
use skydb::error::DbResult;
use skydb::schema::TableBuilder;
use skydb::server::Server;
use skydb::value::{Key, Row};
use skydb::DbConfig;

use crate::config::LoaderConfig;
use crate::report::SkipKind;

/// Outcome of a two-phase load.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TwoPhaseReport {
    /// Rows written to the Task database, per table.
    pub task_rows: BTreeMap<String, u64>,
    /// Rows that failed Task-phase constraints (PK/CHECK/NOT NULL).
    pub task_rejected: u64,
    /// Rows rejected by the validation phase (dangling references).
    pub validation_rejected: u64,
    /// Rows published to the final database, per table.
    pub published: BTreeMap<String, u64>,
    /// Lines dropped at conversion (parse/transform failures).
    pub convert_dropped: u64,
    /// Batched calls against the Task database.
    pub task_calls: u64,
    /// Batched calls against the Publish database.
    pub publish_calls: u64,
}

impl TwoPhaseReport {
    /// Total rows published.
    pub fn total_published(&self) -> u64 {
        self.published.values().sum()
    }
}

/// Build the Task-database schema: the catalog tables with foreign keys
/// stripped (per-table files load independently in SDSS's first phase).
fn task_schemas() -> Vec<skydb::TableSchema> {
    skycat::build_schemas()
        .into_iter()
        .filter(|s| skycat::CATALOG_TABLES.contains(&s.name.as_str()))
        .map(|s| {
            let mut b = TableBuilder::new(s.name.clone());
            for c in &s.columns {
                b = if c.nullable {
                    b.col_null(&c.name, c.dtype)
                } else {
                    b.col(&c.name, c.dtype)
                };
            }
            let pk_names: Vec<&str> = s
                .primary_key
                .iter()
                .map(|&i| s.columns[i].name.as_str())
                .collect();
            b = b.pk(&pk_names);
            for chk in &s.checks {
                b = b.check(&chk.name, chk.expr.clone());
            }
            b.build().expect("task schema")
        })
        .collect()
}

/// Start a Task-database server (same hardware model as the publish
/// server, FK-free catalog tables only).
pub fn start_task_server(cfg: DbConfig) -> Arc<Server> {
    let server = Server::start(cfg);
    for schema in task_schemas() {
        server.engine().create_table(schema).expect("task DDL");
    }
    server
}

/// Run the full SDSS-style pipeline for one catalog file against a
/// dedicated Task server and the final Publish server.
pub fn load_two_phase(
    task: &Arc<Server>,
    publish: &Arc<Server>,
    cfg: &LoaderConfig,
    file: &CatalogFile,
) -> DbResult<TwoPhaseReport> {
    let mut report = TwoPhaseReport::default();

    // The Task database must be dedicated to this load: stale rows from a
    // previous file would be re-validated and re-published in phases 2–3.
    for table_name in skycat::CATALOG_TABLES {
        let tid = task.engine().table_id(table_name)?;
        if task.engine().row_count(tid) != 0 {
            return Err(skydb::DbError::InvalidSchema(format!(
                "task database is not empty ({table_name} has rows); \
                 use a fresh task server per file"
            )));
        }
    }

    // ---- Phase 0: convert the interleaved file to per-table row sets.
    let mut per_table: BTreeMap<&'static str, Vec<Row>> = BTreeMap::new();
    for line in file.text.lines() {
        let Ok(rec) = parse_line(line) else {
            report.convert_dropped += 1;
            continue;
        };
        match transform(&rec) {
            Ok((table, row)) => per_table.entry(table).or_default().push(row),
            Err(_) => report.convert_dropped += 1,
        }
    }

    // ---- Phase 1: bulk load each per-table file into the Task DB.
    let task_session = task.connect();
    for table_name in skycat::CATALOG_TABLES {
        let Some(rows) = per_table.get(table_name) else {
            continue;
        };
        let stmt = task_session.prepare_insert(table_name)?;
        let mut loaded = 0u64;
        let mut first = 0usize;
        while first < rows.len() {
            let end = (first + cfg.batch_size).min(rows.len());
            let out = task_session.execute_batch(&stmt, &rows[first..end])?;
            report.task_calls += 1;
            loaded += out.applied as u64;
            match out.failed {
                None => first = end,
                Some((offset, _)) => {
                    report.task_rejected += 1;
                    first = first + offset + 1;
                }
            }
        }
        report.task_rows.insert(table_name.to_owned(), loaded);
    }
    task_session.commit()?;

    // ---- Phase 2: validate referential integrity inside the Task DB.
    // For each child table, check its FK columns against the parent's
    // task rows (or the publish DB's dimension tables for external
    // parents like observations/filters/ccd_chips).
    let task_engine = task.engine();
    let publish_engine = publish.engine();
    let full_schemas: BTreeMap<String, skydb::TableSchema> = skycat::build_schemas()
        .into_iter()
        .map(|s| (s.name.clone(), s))
        .collect();
    let mut validated: BTreeMap<&'static str, Vec<Row>> = BTreeMap::new();
    let mut surviving_keys: BTreeMap<String, std::collections::BTreeSet<Key>> = BTreeMap::new();
    for table_name in skycat::CATALOG_TABLES {
        let schema = &full_schemas[table_name];
        let tid = task_engine.table_id(table_name)?;
        let rows = task_engine.scan_where(tid, None)?;
        let mut keep = Vec::with_capacity(rows.len());
        'rows: for row in rows {
            for fk in &schema.foreign_keys {
                let key = Key::project(&row, &fk.columns);
                if key.has_null() {
                    continue;
                }
                let parent_is_catalog = skycat::CATALOG_TABLES.contains(&fk.parent_table.as_str());
                let ok = if parent_is_catalog {
                    surviving_keys
                        .get(&fk.parent_table)
                        .is_some_and(|keys| keys.contains(&key))
                } else {
                    let parent = publish_engine.table_id(&fk.parent_table)?;
                    publish_engine.pk_get(parent, &key)?.is_some()
                };
                if !ok {
                    report.validation_rejected += 1;
                    continue 'rows;
                }
            }
            surviving_keys
                .entry(table_name.to_owned())
                .or_default()
                .insert(Key::project(&row, &schema.primary_key));
            keep.push(row);
        }
        validated.insert(table_name, keep);
    }

    // ---- Phase 3: publish in parent-before-child order.
    let publish_session = publish.connect();
    for table_name in skycat::CATALOG_TABLES {
        let Some(rows) = validated.get(table_name) else {
            continue;
        };
        let stmt = publish_session.prepare_insert(table_name)?;
        let mut published = 0u64;
        let mut first = 0usize;
        while first < rows.len() {
            let end = (first + cfg.batch_size).min(rows.len());
            let out = publish_session.execute_batch(&stmt, &rows[first..end])?;
            report.publish_calls += 1;
            published += out.applied as u64;
            match out.failed {
                None => first = end,
                Some((offset, _)) => first = first + offset + 1,
            }
        }
        report.published.insert(table_name.to_owned(), published);
    }
    publish_session.commit()?;

    Ok(report)
}

/// Classify a task-phase rejection for reporting symmetry with the
/// single-pass loader. (Currently unused beyond tests, kept for parity.)
pub fn classify_rejection(err: &skydb::DbError) -> SkipKind {
    SkipKind::from_db_error(err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::load_catalog_file;
    use skycat::gen::{generate_file, GenConfig};
    use skysim::time::TimeScale;

    fn publish_server() -> Arc<Server> {
        let server = Server::start(DbConfig::test());
        skycat::create_all(server.engine()).unwrap();
        skycat::seed_static(server.engine()).unwrap();
        skycat::seed_observation(server.engine(), 1, 100).unwrap();
        server
    }

    #[test]
    fn two_phase_publishes_exactly_the_loadable_rows() {
        let file = generate_file(&GenConfig::night(601, 100).with_error_rate(0.06), 0);
        let task = start_task_server(DbConfig::test());
        let publish = publish_server();
        let report = load_two_phase(&task, &publish, &LoaderConfig::test(), &file).unwrap();

        // Same end state as the single-pass loader: the generator's exact
        // loadable counts.
        assert_eq!(report.total_published(), file.expected.total_loadable());
        for (table, expect) in &file.expected.loadable {
            let tid = publish.engine().table_id(table).unwrap();
            assert_eq!(publish.engine().row_count(tid), *expect, "{table}");
        }
        assert!(report.convert_dropped >= file.expected.malformed_lines);
        assert!(report.validation_rejected > 0, "orphans should be caught");
    }

    #[test]
    fn two_phase_agrees_with_single_pass_on_clean_and_dirty_data() {
        for error_rate in [0.0, 0.1] {
            let file = generate_file(&GenConfig::small(603, 100).with_error_rate(error_rate), 0);
            let task = start_task_server(DbConfig::test());
            let publish = publish_server();
            let two = load_two_phase(&task, &publish, &LoaderConfig::test(), &file).unwrap();

            let single_server = publish_server();
            let session = single_server.connect();
            let single = load_catalog_file(&session, &LoaderConfig::test(), &file).unwrap();

            assert_eq!(
                two.total_published(),
                single.rows_loaded,
                "error rate {error_rate}"
            );
            assert_eq!(&two.published, &single.loaded_by_table);
        }
    }

    #[test]
    fn two_phase_moves_data_twice() {
        let file = generate_file(&GenConfig::small(605, 100), 0);
        let task = start_task_server(DbConfig::test());
        let publish = publish_server();
        let report = load_two_phase(&task, &publish, &LoaderConfig::test(), &file).unwrap();
        // Both phases issue roughly the same number of batched calls: the
        // data crosses a wire twice. This is the §6 inefficiency SkyLoader
        // avoids.
        assert!(report.task_calls > 0);
        assert!(report.publish_calls > 0);
        let total_calls = report.task_calls + report.publish_calls;
        assert!(
            total_calls as f64 >= 1.8 * report.publish_calls as f64,
            "two-phase should roughly double the calls"
        );
    }

    #[test]
    fn task_schema_has_no_foreign_keys() {
        for s in task_schemas() {
            assert!(s.foreign_keys.is_empty(), "{} kept FKs", s.name);
            assert!(!s.primary_key.is_empty());
        }
        assert_eq!(task_schemas().len(), skycat::CATALOG_TABLES.len());
    }

    #[test]
    fn two_phase_costs_more_on_the_modeled_hardware() {
        let file = generate_file(&GenConfig::night(607, 100), 0);

        // Single pass on paper hardware.
        let single_server = {
            let server = Server::start(DbConfig::paper(TimeScale::ZERO));
            skycat::create_all(server.engine()).unwrap();
            skycat::seed_static(server.engine()).unwrap();
            skycat::seed_observation(server.engine(), 1, 100).unwrap();
            server
        };
        let session = single_server.connect();
        let single_report = load_catalog_file(&session, &LoaderConfig::paper(), &file).unwrap();
        single_server.engine().checkpoint();
        let single_cost =
            crate::report::ModeledCost::measure(&single_server, single_report.client_paging)
                .total();

        // Two phase on the same hardware (task server is extra hardware —
        // count both sides' modeled time, as SDSS pays both).
        let task = start_task_server(DbConfig::paper(TimeScale::ZERO));
        let publish = {
            let server = Server::start(DbConfig::paper(TimeScale::ZERO));
            skycat::create_all(server.engine()).unwrap();
            skycat::seed_static(server.engine()).unwrap();
            skycat::seed_observation(server.engine(), 1, 100).unwrap();
            server
        };
        let publish_baseline =
            crate::report::ModeledCost::measure(&publish, std::time::Duration::ZERO);
        load_two_phase(&task, &publish, &LoaderConfig::paper(), &file).unwrap();
        task.engine().checkpoint();
        publish.engine().checkpoint();
        let two_cost = crate::report::ModeledCost::measure(&task, std::time::Duration::ZERO)
            .total()
            + crate::report::ModeledCost::measure(&publish, std::time::Duration::ZERO)
                .since(publish_baseline)
                .total();

        assert!(
            two_cost.as_secs_f64() > single_cost.as_secs_f64() * 1.4,
            "two-phase ({two_cost:?}) should cost well over single-pass ({single_cost:?})"
        );
    }
}
