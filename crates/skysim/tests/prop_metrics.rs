//! Property tests for the metrics primitives every experiment relies on.

use proptest::prelude::*;

use skysim::metrics::{Counter, Histogram, TimeCharge};
use skysim::rng::SplitMix64;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Histogram invariants: count/sum/max exact; quantiles are monotone
    /// in q; every quantile is bounded by [min-ish, 2*max] (power-of-two
    /// buckets err upward by at most 2x).
    #[test]
    fn histogram_quantiles_bound_samples(samples in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());

        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut last = 0u64;
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= last, "quantiles must be monotone");
            prop_assert!(
                v <= h.max().saturating_mul(2).max(1),
                "quantile {q} = {v} exceeds 2x max {}",
                h.max()
            );
            last = v;
        }
        // The true median must lie at or below the reported (upper-bound)
        // median bucket boundary.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let true_median = sorted[(sorted.len() - 1) / 2];
        prop_assert!(h.quantile(0.5) >= true_median / 2);
    }

    /// Counter arithmetic under any add sequence.
    #[test]
    fn counter_sums_exactly(adds in prop::collection::vec(0u64..1_000_000, 0..100)) {
        let c = Counter::new();
        for &a in &adds {
            c.add(a);
        }
        prop_assert_eq!(c.get(), adds.iter().sum::<u64>());
        prop_assert_eq!(c.reset(), adds.iter().sum::<u64>());
        prop_assert_eq!(c.get(), 0);
    }

    /// TimeCharge accumulates micros exactly.
    #[test]
    fn time_charge_accumulates(micros in prop::collection::vec(0u64..1_000_000, 0..100)) {
        let t = TimeCharge::new();
        for &m in &micros {
            t.charge(Duration::from_micros(m));
        }
        prop_assert_eq!(t.duration(), Duration::from_micros(micros.iter().sum::<u64>()));
    }

    /// SplitMix64 bounded draws are in range for ANY seed and bound, and
    /// shuffles permute for any seed and size.
    #[test]
    fn rng_bounds_hold(seed in any::<u64>(), bound in 1u64..1_000_000, n in 1usize..200) {
        let mut r = SplitMix64::new(seed);
        for _ in 0..50 {
            prop_assert!(r.next_below(bound) < bound);
        }
        let mut v: Vec<usize> = (0..n).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
