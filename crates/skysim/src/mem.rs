//! Client memory model: resident-set budget with paging penalties.
//!
//! §4.3 / Fig. 6: "A large array-set may consume too much memory on the
//! client machine and cause excessive memory paging. This slowdown on the
//! client … is reflected in degraded loading performance on the database
//! server." The paper's Condor nodes had 1 GB of RAM; past roughly
//! `array-size ≈ 1000` the array-set outgrew the resident budget and runtime
//! rose again.
//!
//! [`MemoryModel`] reproduces that knee: the loader registers the bytes it
//! keeps resident (the array-set), and touching memory beyond the budget
//! charges page faults at a configurable penalty.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::metrics::{Counter, TimeCharge};
use crate::time::{TimeScale, Waiter};

/// Resident-set budget + page-fault penalty for one client host.
///
/// Cloneable handle; clones share the accounting.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    inner: Arc<MemInner>,
}

#[derive(Debug)]
struct MemInner {
    budget_bytes: u64,
    page_bytes: u64,
    fault_penalty: Duration,
    resident: AtomicI64,
    peak: AtomicI64,
    faults: Counter,
    modeled: TimeCharge,
    waiter: Waiter,
}

impl MemoryModel {
    /// A model with a resident budget, page size and per-fault penalty.
    ///
    /// # Panics
    /// Panics if `page_bytes` is zero.
    pub fn new(
        budget_bytes: u64,
        page_bytes: u64,
        fault_penalty: Duration,
        scale: TimeScale,
    ) -> Self {
        assert!(page_bytes > 0, "page size must be positive");
        MemoryModel {
            inner: Arc::new(MemInner {
                budget_bytes,
                page_bytes,
                fault_penalty,
                resident: AtomicI64::new(0),
                peak: AtomicI64::new(0),
                faults: Counter::new(),
                modeled: TimeCharge::new(),
                waiter: Waiter::new(scale),
            }),
        }
    }

    /// A Condor-node-like client: 1 GB budget, 4 KiB pages, 80µs faults
    /// (2005-era disk-backed swap, amortized).
    pub fn condor_node(scale: TimeScale) -> Self {
        MemoryModel::new(1 << 30, 4096, Duration::from_micros(80), scale)
    }

    /// An unconstrained client (no budget pressure, zero penalties).
    pub fn unconstrained() -> Self {
        MemoryModel::new(u64::MAX / 2, 4096, Duration::ZERO, TimeScale::ZERO)
    }

    /// Register `bytes` of newly resident allocation.
    pub fn allocate(&self, bytes: u64) {
        let now = self
            .inner
            .resident
            .fetch_add(bytes as i64, Ordering::Relaxed)
            + bytes as i64;
        self.inner.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Release `bytes` of resident allocation.
    pub fn release(&self, bytes: u64) {
        self.inner
            .resident
            .fetch_sub(bytes as i64, Ordering::Relaxed);
    }

    /// Currently registered resident bytes.
    pub fn resident(&self) -> u64 {
        self.inner.resident.load(Ordering::Relaxed).max(0) as u64
    }

    /// Peak registered resident bytes.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::Relaxed).max(0) as u64
    }

    /// Bytes currently resident *beyond* the budget (zero if within budget).
    pub fn overcommit(&self) -> u64 {
        self.resident().saturating_sub(self.inner.budget_bytes)
    }

    /// Charge the cost of touching `bytes` of the registered allocation.
    ///
    /// While within budget, touching is free. When the resident set exceeds
    /// the budget, a proportional share of the touched pages is assumed to
    /// fault: touching `b` bytes with an overcommit ratio `o = over/resident`
    /// charges `o * b / page_bytes` faults. This is the standard LRU-under-
    /// uniform-touch approximation and yields the Fig. 6 knee without
    /// simulating an OS.
    pub fn touch(&self, bytes: u64) {
        let resident = self.resident();
        if resident == 0 {
            return;
        }
        let over = self.overcommit();
        if over == 0 {
            return;
        }
        let ratio = over as f64 / resident as f64;
        let faulting_pages = (bytes as f64 * ratio / self.inner.page_bytes as f64).ceil() as u64;
        if faulting_pages == 0 {
            return;
        }
        self.inner.faults.add(faulting_pages);
        let cost =
            Duration::from_nanos(self.inner.fault_penalty.as_nanos() as u64 * faulting_pages);
        self.inner.modeled.charge(cost);
        self.inner.waiter.wait(cost);
    }

    /// Page faults charged so far.
    pub fn faults(&self) -> u64 {
        self.inner.faults.get()
    }

    /// Total modeled paging time.
    pub fn modeled_time(&self) -> Duration {
        self.inner.modeled.duration()
    }

    /// The configured budget in bytes.
    pub fn budget(&self) -> u64 {
        self.inner.budget_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(budget: u64) -> MemoryModel {
        MemoryModel::new(budget, 1024, Duration::from_micros(10), TimeScale::ZERO)
    }

    #[test]
    fn within_budget_is_free() {
        let m = tiny(1_000_000);
        m.allocate(500_000);
        m.touch(500_000);
        assert_eq!(m.faults(), 0);
        assert_eq!(m.modeled_time(), Duration::ZERO);
    }

    #[test]
    fn overcommit_faults_proportionally() {
        let m = tiny(1_000_000);
        m.allocate(2_000_000); // 50% overcommit
        m.touch(1024 * 100); // 100 pages touched → ~50 fault
        assert!(
            m.faults() >= 50 && m.faults() <= 51,
            "faults = {}",
            m.faults()
        );
        assert!(m.modeled_time() >= Duration::from_micros(500));
    }

    #[test]
    fn release_restores_budget() {
        let m = tiny(1_000_000);
        m.allocate(2_000_000);
        assert_eq!(m.overcommit(), 1_000_000);
        m.release(1_500_000);
        assert_eq!(m.overcommit(), 0);
        m.touch(1024 * 100);
        assert_eq!(m.faults(), 0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let m = tiny(u64::MAX / 2);
        m.allocate(100);
        m.allocate(200);
        m.release(250);
        m.allocate(10);
        assert_eq!(m.peak(), 300);
        assert_eq!(m.resident(), 60);
    }

    #[test]
    fn unconstrained_never_faults() {
        let m = MemoryModel::unconstrained();
        m.allocate(1 << 40);
        m.touch(1 << 40);
        assert_eq!(m.faults(), 0);
    }
}
