//! # skysim — simulated hardware environment for the SkyLoader reproduction
//!
//! The SC 2005 SkyLoader paper ran on hardware we do not have: an 8-processor
//! SGI Altix database server, SAN-attached RAID arrays on three separate disk
//! controllers, Gigabit Ethernet between a Condor cluster and the server, and
//! client nodes with 1 GB of RAM. The *shapes* of the paper's evaluation
//! figures are produced by that hardware: per-database-call network round
//! trips (Figs. 4 and 5), client paging when the `array-set` outgrows memory
//! (Fig. 6), CPU saturation and lock stalls on the server (Fig. 7), and disk
//! service time for data, index and log I/O (Figs. 8 and 9).
//!
//! This crate provides that hardware as a set of explicit, calibratable cost
//! models. All *algorithmic* work in the reproduction (B+-tree maintenance,
//! constraint checking, batching, parsing) is real; only the hardware we lack
//! is injected as precisely timed waits. Every model:
//!
//! * performs an optional **real wait** (hybrid sleep/spin, scaled by a
//!   [`TimeScale`] so unit tests can set the scale to zero and run instantly),
//! * always **accounts** the modeled time into shared [`metrics`] counters so
//!   tests can assert on modeled costs without waiting.
//!
//! The sub-modules are:
//!
//! * [`time`] — virtual [`time::SimClock`], [`TimeScale`], precision waiter.
//! * [`metrics`] — lock-free counters, gauges and histograms.
//! * [`net`] — [`net::NetworkModel`]: round-trip latency + bandwidth per call.
//! * [`disk`] — [`disk::DiskDevice`] / [`disk::DiskFarm`]: per-page service
//!   times with real queueing across a configurable set of devices.
//! * [`cpu`] — [`cpu::CpuGate`]: an N-permit execution gate modeling the
//!   8-processor database host, plus a general counting [`cpu::Semaphore`].
//! * [`mem`] — [`mem::MemoryModel`]: client resident-set budget with paging
//!   penalties past the budget.
//! * [`cluster`] — Condor-style work distribution: dynamic on-the-fly
//!   assignment versus static partitioning across worker nodes.
//! * [`rng`] — small deterministic PRNG (SplitMix64) for reproducible
//!   workloads without external dependencies.
//! * [`arrival`] — deterministic Poisson file-arrival schedules (with burst
//!   compression) for the live micro-batch ingest mode.

#![warn(missing_docs)]

pub mod arrival;
pub mod cluster;
pub mod cpu;
pub mod disk;
pub mod mem;
pub mod metrics;
pub mod net;
pub mod rng;
pub mod time;

pub use arrival::ArrivalSchedule;
pub use cluster::{run_dynamic, run_static, AssignmentPolicy, NodeSpec};
pub use cpu::{CpuGate, Semaphore};
pub use disk::{DiskDevice, DiskFarm, DiskModel};
pub use mem::MemoryModel;
pub use metrics::{Counter, Histogram, TimeCharge};
pub use net::NetworkModel;
pub use rng::SplitMix64;
pub use time::{SimClock, TimeScale, Waiter};
