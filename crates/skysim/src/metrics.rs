//! Lock-free metrics primitives shared across the reproduction.
//!
//! Every substrate (database engine, loader, cost models) exposes its
//! behaviour through these counters so experiments can assert on *modeled*
//! quantities (database calls, page writes, lock waits, modeled nanoseconds)
//! independently of wall-clock time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one, returning the previous value.
    #[inline]
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Increment by `n`, returning the previous value.
    #[inline]
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed)
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the value before the reset.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// Accumulated modeled time, in nanoseconds.
///
/// Cost models charge modeled durations here even when the [`TimeScale`]
/// suppresses the real wait, so tests can assert "this configuration modeled
/// X ms of network time" deterministically.
///
/// [`TimeScale`]: crate::time::TimeScale
#[derive(Debug, Default)]
pub struct TimeCharge(AtomicU64);

impl TimeCharge {
    /// A charge accumulator starting at zero.
    pub const fn new() -> Self {
        TimeCharge(AtomicU64::new(0))
    }

    /// Add a modeled duration.
    #[inline]
    pub fn charge(&self, d: Duration) {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.0.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total modeled nanoseconds charged.
    #[inline]
    pub fn nanos(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Total modeled time charged.
    #[inline]
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.nanos())
    }

    /// Reset to zero, returning the nanoseconds before the reset.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// Number of buckets in [`Histogram`]; powers of two up to `2^62`, plus
/// an overflow bucket.
const HIST_BUCKETS: usize = 64;

/// A fixed-bucket (power-of-two) histogram of `u64` samples.
///
/// Used for batch sizes, lock-wait durations and I/O sizes. Recording is
/// lock-free; reads are racy-but-consistent-enough for reporting.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record a sample.
    pub fn record(&self, v: u64) {
        let idx = bucket_index(v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample, or zero if empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples, or zero if empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Approximate quantile (`0.0..=1.0`) from the bucket boundaries.
    ///
    /// The returned value is the *upper bound* of the bucket containing the
    /// requested rank, so the approximation always errs upward by at most 2x.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        self.max()
    }
}

#[inline]
fn bucket_index(v: u64) -> usize {
    // Bucket i holds values in [2^(i-1)+1 .. 2^i]; bucket 0 holds {0, 1}.
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

#[inline]
fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        1u64 << i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        assert_eq!(c.inc(), 0);
        assert_eq!(c.add(4), 1);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn time_charge_accumulates() {
        let t = TimeCharge::new();
        t.charge(Duration::from_micros(3));
        t.charge(Duration::from_nanos(10));
        assert_eq!(t.nanos(), 3010);
        assert_eq!(t.duration(), Duration::from_nanos(3010));
        assert_eq!(t.reset(), 3010);
        assert_eq!(t.nanos(), 0);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(9), 4);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_stats() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.0).abs() < f64::EPSILON);
        // Median lands in the bucket holding 3..4 → upper bound 4.
        assert_eq!(h.quantile(0.5), 4);
        assert!(h.quantile(1.0) >= 100);
    }

    #[test]
    fn histogram_empty_quantile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_concurrent_recording() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum(), 4 * (999 * 1000 / 2));
    }
}
