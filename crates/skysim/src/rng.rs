//! Deterministic PRNG helpers.
//!
//! The synthetic workload generators must be exactly reproducible across
//! runs and platforms (the experiments compare configurations on *identical*
//! data, as the paper does: "All tests were performed using the same data
//! model and load identical sky survey catalog data"). SplitMix64 is tiny,
//! fast, has no external dependencies, and passes BigCrush for our purposes.

/// SplitMix64: a 64-bit splittable PRNG (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free approximation is fine here;
        // bias is < 2^-64 * bound which is irrelevant for workload synthesis.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 bits of mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn next_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fork an independent generator (for per-file / per-thread streams).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_range_inclusive() {
        let mut r = SplitMix64::new(7);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..10_000 {
            let v = r.next_range(3, 5);
            assert!((3..=5).contains(&v));
            hit_lo |= v == 3;
            hit_hi |= v == 5;
        }
        assert!(hit_lo && hit_hi, "range endpoints never produced");
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix64::new(99);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn fork_streams_independent() {
        let mut parent = SplitMix64::new(11);
        let mut f1 = parent.fork();
        let mut f2 = parent.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }
}
