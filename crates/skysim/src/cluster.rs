//! Condor-style work distribution across loader nodes.
//!
//! §4.4: "we assign unloaded data sets to the Condor nodes 'on the fly'
//! rather than dividing the data sets evenly among the Condor nodes. As soon
//! as a node completes the loading of one data file, another file is assigned
//! to it until no unloaded catalog data files remain."
//!
//! [`run_dynamic`] implements exactly that policy with a shared injector
//! queue; [`run_static`] implements the even-division baseline the paper
//! rejects, for ablation A2 (skewed file sizes make static partitioning lose
//! on makespan).

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::queue::SegQueue;

/// Description of a worker node, mirroring the paper's Condor nodes
/// ("dual CPU 1.5 GHz Pentium III, 1 GB RAM, Linux").
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Display name, e.g. `"radium-03"`.
    pub name: String,
}

impl NodeSpec {
    /// A pool of `n` nodes named `radium-00 .. radium-(n-1)` after the
    /// paper's NCSA Condor cluster.
    pub fn pool(n: usize) -> Vec<NodeSpec> {
        (0..n)
            .map(|i| NodeSpec {
                name: format!("radium-{i:02}"),
            })
            .collect()
    }
}

/// How work items are assigned to nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignmentPolicy {
    /// On-the-fly: each node takes the next unprocessed item as soon as it
    /// finishes the previous one (the paper's choice).
    Dynamic,
    /// Round-robin even division decided up front (the rejected baseline).
    Static,
}

/// Per-node outcome of a cluster run.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Which node this report covers.
    pub node: NodeSpec,
    /// Items this node processed.
    pub items: usize,
    /// Wall time this node spent busy.
    pub busy: Duration,
}

/// Outcome of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Wall-clock makespan of the whole run.
    pub makespan: Duration,
    /// One report per node.
    pub nodes: Vec<NodeReport>,
}

impl ClusterReport {
    /// Total items processed across nodes.
    pub fn total_items(&self) -> usize {
        self.nodes.iter().map(|n| n.items).sum()
    }

    /// Ratio of the busiest node's busy time to the idlest node's.
    /// 1.0 is perfectly balanced; large values indicate skew.
    pub fn imbalance(&self) -> f64 {
        let max = self
            .nodes
            .iter()
            .map(|n| n.busy.as_secs_f64())
            .fold(0.0f64, f64::max);
        let min = self
            .nodes
            .iter()
            .map(|n| n.busy.as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        if min <= 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

/// Run `work` over `items` on `nodes.len()` worker threads with dynamic
/// on-the-fly assignment (the paper's policy).
///
/// `work(node_index, item)` is called once per item on the claiming node's
/// thread. Panics in `work` propagate.
pub fn run_dynamic<T, F>(nodes: &[NodeSpec], items: Vec<T>, work: F) -> ClusterReport
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    assert!(!nodes.is_empty(), "cluster needs at least one node");
    let queue = SegQueue::new();
    for item in items {
        queue.push(item);
    }
    run_pool(nodes, &work, move |_node_idx| queue.pop())
}

/// Run `work` over `items` with static round-robin pre-assignment
/// (the baseline §4.4 argues against).
pub fn run_static<T, F>(nodes: &[NodeSpec], items: Vec<T>, work: F) -> ClusterReport
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    assert!(!nodes.is_empty(), "cluster needs at least one node");
    // Pre-divide: item i goes to node i % n, regardless of item cost.
    let n = nodes.len();
    let partitions: Vec<SegQueue<T>> = (0..n).map(|_| SegQueue::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        partitions[i % n].push(item);
    }
    let partitions = Arc::new(partitions);
    run_pool(nodes, &work, move |node_idx| partitions[node_idx].pop())
}

fn run_pool<T, F, N>(nodes: &[NodeSpec], work: &F, next: N) -> ClusterReport
where
    T: Send,
    F: Fn(usize, T) + Sync,
    N: Fn(usize) -> Option<T> + Sync,
{
    let start = Instant::now();
    let mut reports: Vec<NodeReport> = nodes
        .iter()
        .map(|n| NodeReport {
            node: n.clone(),
            items: 0,
            busy: Duration::ZERO,
        })
        .collect();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..nodes.len())
            .map(|node_idx| {
                let next = &next;
                s.spawn(move || {
                    let mut items = 0usize;
                    let node_start = Instant::now();
                    while let Some(item) = next(node_idx) {
                        work(node_idx, item);
                        items += 1;
                    }
                    (items, node_start.elapsed())
                })
            })
            .collect();
        for (node_idx, h) in handles.into_iter().enumerate() {
            let (items, busy) = h.join().expect("cluster worker panicked");
            reports[node_idx].items = items;
            reports[node_idx].busy = busy;
        }
    });

    ClusterReport {
        makespan: start.elapsed(),
        nodes: reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_names_nodes() {
        let pool = NodeSpec::pool(3);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool[0].name, "radium-00");
        assert_eq!(pool[2].name, "radium-02");
    }

    #[test]
    fn dynamic_processes_every_item_exactly_once() {
        let nodes = NodeSpec::pool(4);
        let seen = AtomicUsize::new(0);
        let report = run_dynamic(&nodes, (0..100).collect(), |_, _item: i32| {
            seen.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(seen.load(Ordering::SeqCst), 100);
        assert_eq!(report.total_items(), 100);
    }

    #[test]
    fn static_processes_every_item_exactly_once() {
        let nodes = NodeSpec::pool(3);
        let seen = AtomicUsize::new(0);
        let report = run_static(&nodes, (0..50).collect(), |_, _item: i32| {
            seen.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(seen.load(Ordering::SeqCst), 50);
        assert_eq!(report.total_items(), 50);
        // Round-robin: 17/17/16.
        let mut counts: Vec<_> = report.nodes.iter().map(|n| n.items).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![16, 17, 17]);
    }

    #[test]
    fn dynamic_beats_static_on_skewed_items() {
        // One huge item plus many small ones: static round-robin saddles one
        // node with the huge item AND its round-robin share; dynamic lets the
        // other nodes drain the small items. (This is ablation A2 in
        // miniature; the bench does it with real loading.)
        let nodes = NodeSpec::pool(4);
        // Item value = milliseconds of simulated work.
        let mut items = vec![40u64];
        items.extend(std::iter::repeat_n(5u64, 16));
        let work = |_node: usize, ms: u64| {
            crate::time::precise_wait(Duration::from_millis(ms));
        };
        let dynamic = run_dynamic(&nodes, items.clone(), work);
        let static_ = run_static(&nodes, items, work);
        assert!(
            dynamic.makespan < static_.makespan,
            "dynamic {:?} should beat static {:?}",
            dynamic.makespan,
            static_.makespan
        );
    }

    #[test]
    fn imbalance_metric() {
        let report = ClusterReport {
            makespan: Duration::from_secs(1),
            nodes: vec![
                NodeReport {
                    node: NodeSpec { name: "a".into() },
                    items: 1,
                    busy: Duration::from_secs(2),
                },
                NodeReport {
                    node: NodeSpec { name: "b".into() },
                    items: 1,
                    busy: Duration::from_secs(1),
                },
            ],
        };
        assert!((report.imbalance() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        run_dynamic(&[], vec![1], |_, _: i32| {});
    }
}
