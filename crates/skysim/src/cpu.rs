//! CPU execution gate modeling the paper's 8-processor database host.
//!
//! §4.4: "In an ideal environment with our 8-processor database server …
//! we would expect 8 parallel loading processes to fully utilize all CPUs".
//! The `skydb` server admits each request through a [`CpuGate`] with one
//! permit per modeled processor; while a request holds a permit it is charged
//! CPU service time. With more concurrent loaders than permits, requests
//! queue — which is exactly what bends the Fig. 7 throughput curve flat at
//! the processor count (lock stalls, modeled in `skydb`, then bend it
//! downward).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::metrics::{Counter, TimeCharge};
use crate::time::{TimeScale, Waiter};

/// A counting semaphore built on `parking_lot` primitives.
///
/// The standard library has no stable semaphore; this one is small, fair
/// enough for our purposes (wakeups via `notify_one`), and exposes wait
/// accounting for the experiments.
#[derive(Debug)]
pub struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
    waits: Counter,
}

impl Semaphore {
    /// A semaphore with `n` permits.
    pub fn new(n: usize) -> Self {
        Semaphore {
            permits: Mutex::new(n),
            available: Condvar::new(),
            waits: Counter::new(),
        }
    }

    /// Acquire one permit, blocking until available.
    pub fn acquire(&self) {
        let mut permits = self.permits.lock();
        if *permits == 0 {
            self.waits.inc();
            while *permits == 0 {
                self.available.wait(&mut permits);
            }
        }
        *permits -= 1;
    }

    /// Try to acquire one permit without blocking.
    pub fn try_acquire(&self) -> bool {
        let mut permits = self.permits.lock();
        if *permits == 0 {
            false
        } else {
            *permits -= 1;
            true
        }
    }

    /// Release one permit.
    pub fn release(&self) {
        let mut permits = self.permits.lock();
        *permits += 1;
        drop(permits);
        self.available.notify_one();
    }

    /// Number of acquires that had to block.
    pub fn blocked_acquires(&self) -> u64 {
        self.waits.get()
    }

    /// Currently available permits (racy; for reporting only).
    pub fn available_permits(&self) -> usize {
        *self.permits.lock()
    }
}

/// RAII guard for a [`Semaphore`] permit.
pub struct SemaphoreGuard<'a>(&'a Semaphore);

impl Drop for SemaphoreGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

impl Semaphore {
    /// Acquire a permit held until the guard drops.
    pub fn acquire_guard(&self) -> SemaphoreGuard<'_> {
        self.acquire();
        SemaphoreGuard(self)
    }
}

/// An N-processor execution gate with per-request service-time charging.
///
/// Cloneable handle; clones share the permit pool and counters.
#[derive(Debug, Clone)]
pub struct CpuGate {
    inner: Arc<GateInner>,
}

#[derive(Debug)]
struct GateInner {
    sem: Semaphore,
    cpus: usize,
    waiter: Waiter,
    served: Counter,
    modeled: TimeCharge,
}

impl CpuGate {
    /// A gate with `cpus` permits.
    ///
    /// # Panics
    /// Panics if `cpus` is zero.
    pub fn new(cpus: usize, scale: TimeScale) -> Self {
        assert!(cpus > 0, "a CPU gate needs at least one processor");
        CpuGate {
            inner: Arc::new(GateInner {
                sem: Semaphore::new(cpus),
                cpus,
                waiter: Waiter::new(scale),
                served: Counter::new(),
                modeled: TimeCharge::new(),
            }),
        }
    }

    /// The number of modeled processors.
    pub fn cpus(&self) -> usize {
        self.inner.cpus
    }

    /// Execute `f` while holding a processor permit, charging `service` of
    /// modeled CPU time around it.
    ///
    /// The charge is paid *while holding the permit*, so queueing delay under
    /// saturation is real: with `k > cpus` concurrent callers, caller `k`
    /// waits for a permit on the wall clock (scaled).
    pub fn run<T>(&self, service: Duration, f: impl FnOnce() -> T) -> T {
        let _permit = self.inner.sem.acquire_guard();
        self.inner.served.inc();
        self.inner.modeled.charge(service);
        self.inner.waiter.wait(service);
        f()
    }

    /// Requests that found all processors busy and had to queue.
    pub fn queued_requests(&self) -> u64 {
        self.inner.sem.blocked_acquires()
    }

    /// Total requests served.
    pub fn served(&self) -> u64 {
        self.inner.served.get()
    }

    /// Total modeled CPU service time charged.
    pub fn modeled_time(&self) -> Duration {
        self.inner.modeled.duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn semaphore_limits_concurrency() {
        let sem = Arc::new(Semaphore::new(2));
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (sem, live, peak) = (sem.clone(), live.clone(), peak.clone());
                thread::spawn(move || {
                    let _g = sem.acquire_guard();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_millis(5));
                    live.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "semaphore admitted too many"
        );
        assert!(sem.blocked_acquires() > 0);
    }

    #[test]
    fn try_acquire_does_not_block() {
        let sem = Semaphore::new(1);
        assert!(sem.try_acquire());
        assert!(!sem.try_acquire());
        sem.release();
        assert!(sem.try_acquire());
        sem.release();
        assert_eq!(sem.available_permits(), 1);
    }

    #[test]
    fn gate_charges_and_counts() {
        let gate = CpuGate::new(4, TimeScale::ZERO);
        let out = gate.run(Duration::from_micros(50), || 7);
        assert_eq!(out, 7);
        assert_eq!(gate.served(), 1);
        assert_eq!(gate.modeled_time(), Duration::from_micros(50));
        assert_eq!(gate.cpus(), 4);
    }

    #[test]
    fn saturated_gate_queues_real_time() {
        // 1 CPU, 4 threads each needing 2 ms of service at REAL scale: total
        // wall time must be >= ~8 ms because service serializes.
        let gate = CpuGate::new(1, TimeScale::REAL);
        let start = std::time::Instant::now();
        thread::scope(|s| {
            for _ in 0..4 {
                let g = gate.clone();
                s.spawn(move || g.run(Duration::from_millis(2), || ()));
            }
        });
        assert!(start.elapsed() >= Duration::from_millis(8));
        assert!(gate.queued_requests() > 0);
    }
}
