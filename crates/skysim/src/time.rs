//! Clocks, time scaling and the precision waiter.
//!
//! Everything in the simulated environment expresses cost as a *modeled*
//! [`Duration`]. Whether that duration is actually waited out on the wall
//! clock is controlled by a [`TimeScale`]:
//!
//! * `TimeScale::ZERO` — never wait; costs are only accounted. Unit tests use
//!   this so a full load of tens of thousands of rows finishes in
//!   milliseconds while still exposing modeled costs for assertions.
//! * `TimeScale::new(0.01)` — wait 1% of the modeled time. The benchmark
//!   harness uses small scales so the paper-sized experiments finish in
//!   seconds while preserving the *ratios* between configurations.
//! * `TimeScale::REAL` — wait the full modeled time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A multiplier applied to every modeled wait before it hits the wall clock.
///
/// The scale is stored as nanoseconds-per-modeled-microsecond to keep the
/// arithmetic integral and cheap; see [`TimeScale::scale`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeScale(f64);

impl TimeScale {
    /// Never perform a real wait (costs are still accounted).
    pub const ZERO: TimeScale = TimeScale(0.0);
    /// Wait the full modeled duration.
    pub const REAL: TimeScale = TimeScale(1.0);

    /// A scale that waits `factor` of every modeled duration.
    ///
    /// # Panics
    /// Panics if `factor` is negative or not finite.
    pub fn new(factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "time scale must be finite and non-negative, got {factor}"
        );
        TimeScale(factor)
    }

    /// The raw multiplication factor.
    #[inline]
    pub fn factor(self) -> f64 {
        self.0
    }

    /// `true` if this scale never produces a real wait.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Scale a modeled duration down to the real duration to wait.
    #[inline]
    pub fn scale(self, modeled: Duration) -> Duration {
        if self.0 == 0.0 {
            return Duration::ZERO;
        }
        if self.0 == 1.0 {
            return modeled;
        }
        Duration::from_nanos((modeled.as_nanos() as f64 * self.0) as u64)
    }
}

impl Default for TimeScale {
    /// Defaults to [`TimeScale::ZERO`]: tests and library users never wait
    /// unless they opt in.
    fn default() -> Self {
        TimeScale::ZERO
    }
}

/// A monotonically increasing virtual clock measured in nanoseconds.
///
/// `SimClock` backs deterministic unit tests for code that needs to observe
/// "time" passing without a real wall-clock dependency (for example WAL
/// timestamps and lock-wait bookkeeping inside `skydb`).
#[derive(Debug, Default)]
pub struct SimClock {
    nanos: AtomicU64,
}

impl SimClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current virtual time in nanoseconds since clock creation.
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Acquire)
    }

    /// Current virtual time as a [`Duration`] since clock creation.
    #[inline]
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.now_nanos())
    }

    /// Advance the clock by `d`, returning the new time in nanoseconds.
    #[inline]
    pub fn advance(&self, d: Duration) -> u64 {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(nanos, Ordering::AcqRel) + nanos
    }
}

/// Granularity below which [`Waiter`] spins instead of sleeping.
///
/// `thread::sleep` on Linux typically overshoots by ~50µs; waits shorter than
/// this are busy-spun against `Instant` for precision.
const SPIN_THRESHOLD: Duration = Duration::from_micros(200);

/// Precision waiter: hybrid sleep + spin, with a [`TimeScale`] applied.
///
/// All cost models funnel their real waits through a `Waiter` so the scale is
/// applied uniformly and total waited time is observable via
/// [`Waiter::total_waited_nanos`].
#[derive(Debug)]
pub struct Waiter {
    scale: TimeScale,
    total_waited: AtomicU64,
}

impl Waiter {
    /// A waiter with the given scale.
    pub fn new(scale: TimeScale) -> Self {
        Waiter {
            scale,
            total_waited: AtomicU64::new(0),
        }
    }

    /// The scale this waiter applies.
    pub fn scale(&self) -> TimeScale {
        self.scale
    }

    /// Total real nanoseconds this waiter has spent waiting.
    pub fn total_waited_nanos(&self) -> u64 {
        self.total_waited.load(Ordering::Relaxed)
    }

    /// Wait out `modeled`, scaled. Returns the real duration waited.
    pub fn wait(&self, modeled: Duration) -> Duration {
        let real = self.scale.scale(modeled);
        if real.is_zero() {
            return Duration::ZERO;
        }
        let start = Instant::now();
        precise_wait(real);
        let waited = start.elapsed();
        self.total_waited
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        waited
    }
}

/// Block the current thread for `d`.
///
/// Short waits (≤ 200µs) are spun against [`Instant`] for
/// precision; longer waits are plainly slept. Sleeping accepts the OS
/// timer's small, *systematic* overshoot (~tens of µs) in exchange for not
/// burning CPU — crucial when many loader threads share few host cores,
/// where spin-slack would serialize the very parallelism an experiment is
/// measuring.
pub fn precise_wait(d: Duration) {
    if d.is_zero() {
        return;
    }
    if d > SPIN_THRESHOLD {
        std::thread::sleep(d);
        return;
    }
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_scale_never_waits() {
        let w = Waiter::new(TimeScale::ZERO);
        let waited = w.wait(Duration::from_secs(3600));
        assert_eq!(waited, Duration::ZERO);
        assert_eq!(w.total_waited_nanos(), 0);
    }

    #[test]
    fn scale_multiplies() {
        let s = TimeScale::new(0.5);
        assert_eq!(
            s.scale(Duration::from_micros(100)),
            Duration::from_micros(50)
        );
        assert_eq!(
            TimeScale::REAL.scale(Duration::from_micros(7)),
            Duration::from_micros(7)
        );
        assert_eq!(
            TimeScale::ZERO.scale(Duration::from_secs(1)),
            Duration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "time scale must be finite")]
    fn negative_scale_rejected() {
        let _ = TimeScale::new(-1.0);
    }

    #[test]
    fn sim_clock_advances_monotonically() {
        let c = SimClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(Duration::from_nanos(10));
        c.advance(Duration::from_micros(1));
        assert_eq!(c.now_nanos(), 1010);
        assert_eq!(c.now(), Duration::from_nanos(1010));
    }

    #[test]
    fn precise_wait_hits_target_within_tolerance() {
        let d = Duration::from_micros(300);
        let start = Instant::now();
        precise_wait(d);
        let elapsed = start.elapsed();
        assert!(elapsed >= d, "waited {elapsed:?} < requested {d:?}");
        // Generous upper bound: CI machines can overshoot, but not by 50x.
        assert!(elapsed < d * 50, "waited {elapsed:?}, way over {d:?}");
    }

    #[test]
    fn waiter_accounts_real_waits() {
        let w = Waiter::new(TimeScale::REAL);
        w.wait(Duration::from_micros(100));
        assert!(w.total_waited_nanos() >= 100_000);
    }
}
