//! Network cost model: Gigabit-Ethernet-like round trips between the loader
//! clients and the database server.
//!
//! The paper (§3) identifies the network as "the first bottleneck to fast
//! data loading" and §4.2 motivates bulk loading precisely as a way to
//! minimize "network roundtrip traffic". Every database call in the `skydb`
//! wire layer therefore pays:
//!
//! * one fixed **round-trip latency** (request + response), and
//! * **serialization delay** proportional to the payload size at the modeled
//!   link bandwidth.
//!
//! The defaults approximate the paper's environment: a Gigabit Ethernet
//! interface (~120 MB/s effective) and LAN round trips in the few-hundred
//! microsecond range once JDBC driver overheads are included.

use std::sync::Arc;
use std::time::Duration;

use crate::metrics::{Counter, TimeCharge};
use crate::time::{TimeScale, Waiter};

/// Round-trip + bandwidth cost model for one client↔server link.
///
/// Cloneable handle; clones share counters and the waiter, modeling multiple
/// sessions over the same physical link.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    rtt: Duration,
    bytes_per_sec: u64,
    waiter: Waiter,
    calls: Counter,
    bytes: Counter,
    modeled: TimeCharge,
}

impl NetworkModel {
    /// Effective Gigabit Ethernet payload bandwidth (bytes/second).
    pub const GIGE_BYTES_PER_SEC: u64 = 120_000_000;

    /// Default modeled round trip: LAN + driver + marshaling overhead.
    pub const DEFAULT_RTT: Duration = Duration::from_micros(300);

    /// A model with explicit round-trip latency and bandwidth.
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is zero.
    pub fn new(rtt: Duration, bytes_per_sec: u64, scale: TimeScale) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        NetworkModel {
            inner: Arc::new(Inner {
                rtt,
                bytes_per_sec,
                waiter: Waiter::new(scale),
                calls: Counter::new(),
                bytes: Counter::new(),
                modeled: TimeCharge::new(),
            }),
        }
    }

    /// The paper-like default: GigE bandwidth, 300µs RTT.
    pub fn gige(scale: TimeScale) -> Self {
        NetworkModel::new(Self::DEFAULT_RTT, Self::GIGE_BYTES_PER_SEC, scale)
    }

    /// A free network (no latency, effectively infinite bandwidth). Useful
    /// for isolating server-side costs in ablations.
    pub fn free() -> Self {
        NetworkModel::new(Duration::ZERO, u64::MAX, TimeScale::ZERO)
    }

    /// Modeled cost of one call transferring `bytes` of payload.
    pub fn cost_of(&self, bytes: usize) -> Duration {
        let xfer = if self.inner.bytes_per_sec == u64::MAX {
            Duration::ZERO
        } else {
            Duration::from_nanos(
                (bytes as u128 * 1_000_000_000 / self.inner.bytes_per_sec as u128) as u64,
            )
        };
        self.inner.rtt + xfer
    }

    /// Account (and, depending on the scale, wait out) one round trip
    /// carrying `bytes` of payload. Returns the modeled cost.
    pub fn round_trip(&self, bytes: usize) -> Duration {
        let cost = self.cost_of(bytes);
        self.inner.calls.inc();
        self.inner.bytes.add(bytes as u64);
        self.inner.modeled.charge(cost);
        self.inner.waiter.wait(cost);
        cost
    }

    /// Account (and, depending on the scale, wait out) an extra one-off
    /// delay on the link — a latency spike beyond the modeled round trip
    /// (congestion, a retransmit burst, a GC pause on the far side). Used
    /// by fault injection; charged to the same modeled-time counter as
    /// regular round trips so spikes show up in experiment accounting.
    pub fn delay(&self, spike: Duration) -> Duration {
        self.inner.modeled.charge(spike);
        self.inner.waiter.wait(spike);
        spike
    }

    /// Total round trips accounted so far.
    pub fn calls(&self) -> u64 {
        self.inner.calls.get()
    }

    /// Total payload bytes accounted so far.
    pub fn bytes(&self) -> u64 {
        self.inner.bytes.get()
    }

    /// Total modeled network time.
    pub fn modeled_time(&self) -> Duration {
        self.inner.modeled.duration()
    }

    /// The configured round-trip latency.
    pub fn rtt(&self) -> Duration {
        self.inner.rtt
    }

    /// Reset counters (calls, bytes, modeled time) to zero.
    pub fn reset_counters(&self) {
        self.inner.calls.reset();
        self.inner.bytes.reset();
        self.inner.modeled.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_rtt_plus_transfer() {
        let net = NetworkModel::new(Duration::from_micros(100), 1_000_000, TimeScale::ZERO);
        // 1000 bytes at 1 MB/s = 1 ms transfer.
        assert_eq!(
            net.cost_of(1000),
            Duration::from_micros(100) + Duration::from_millis(1)
        );
    }

    #[test]
    fn round_trip_accounts_without_waiting_at_zero_scale() {
        let net = NetworkModel::gige(TimeScale::ZERO);
        let c = net.round_trip(1200);
        assert_eq!(net.calls(), 1);
        assert_eq!(net.bytes(), 1200);
        assert_eq!(net.modeled_time(), c);
        assert!(c >= NetworkModel::DEFAULT_RTT);
    }

    #[test]
    fn free_network_costs_nothing() {
        let net = NetworkModel::free();
        assert_eq!(net.round_trip(10_000_000), Duration::ZERO);
        assert_eq!(net.modeled_time(), Duration::ZERO);
        assert_eq!(net.calls(), 1);
    }

    #[test]
    fn clones_share_counters() {
        let net = NetworkModel::gige(TimeScale::ZERO);
        let net2 = net.clone();
        net.round_trip(10);
        net2.round_trip(20);
        assert_eq!(net.calls(), 2);
        assert_eq!(net.bytes(), 30);
    }

    #[test]
    fn batching_amortizes_round_trips() {
        // The core premise of Fig. 4: N singleton calls cost ~N RTTs, one
        // batched call carrying the same bytes costs ~1 RTT.
        let net = NetworkModel::gige(TimeScale::ZERO);
        let row = 100usize;
        let n = 40usize;
        let singleton: Duration = (0..n).map(|_| net.round_trip(row)).sum();
        let batched = net.round_trip(row * n);
        assert!(singleton > batched * 10);
    }
}
