//! Deterministic file-arrival process for live micro-batch ingest.
//!
//! The paper's nightly load assumes the whole night's files are present
//! before loading starts; the live-ingest mode instead models files
//! trickling in over the night as the telescope observes and the extraction
//! pipeline emits them. An [`ArrivalSchedule`] is a reproducible sequence of
//! arrival offsets from the start of the night: inter-arrival gaps are drawn
//! from an exponential distribution (a Poisson arrival process, the standard
//! model for independent event streams) using [`SplitMix64`], so one seed
//! reproduces the identical night.
//!
//! Bursts — several files landing nearly at once, e.g. a pipeline node
//! flushing its backlog — are injected by *compressing* a run of gaps by a
//! configurable factor. The fault layer decides per-arrival whether a burst
//! starts ([`skydb` `FaultKind::ArrivalBurst`]); this module only provides
//! the deterministic schedule arithmetic.

use std::time::Duration;

use crate::rng::SplitMix64;

/// A reproducible arrival schedule: offsets of each file's arrival from the
/// start of the night, non-decreasing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalSchedule {
    offsets: Vec<Duration>,
}

impl ArrivalSchedule {
    /// Draw `n` arrivals with exponential inter-arrival gaps of the given
    /// mean. The first arrival is one gap after the night starts.
    ///
    /// # Panics
    /// Panics if `mean` is zero (use [`ArrivalSchedule::immediate`] for a
    /// zero-delay schedule).
    pub fn poisson(seed: u64, n: usize, mean: Duration) -> Self {
        assert!(!mean.is_zero(), "mean inter-arrival must be nonzero");
        let mut rng = SplitMix64::new(seed ^ 0x4152_5249_5641_4C21); // "ARRIVAL!"
        let mut at = Duration::ZERO;
        let mut offsets = Vec::with_capacity(n);
        for _ in 0..n {
            // Inverse-CDF exponential draw; clamp the uniform away from 0
            // so ln() stays finite.
            let u = rng.next_f64().max(1e-12);
            let gap = mean.as_secs_f64() * -u.ln();
            at += Duration::from_secs_f64(gap);
            offsets.push(at);
        }
        ArrivalSchedule { offsets }
    }

    /// All `n` files present at the start of the night (the paper's bulk
    /// scenario, as a degenerate schedule).
    pub fn immediate(n: usize) -> Self {
        ArrivalSchedule {
            offsets: vec![Duration::ZERO; n],
        }
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// `true` if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Arrival offset of file `i`.
    pub fn offset(&self, i: usize) -> Duration {
        self.offsets[i]
    }

    /// Iterate over the arrival offsets.
    pub fn iter(&self) -> impl Iterator<Item = Duration> + '_ {
        self.offsets.iter().copied()
    }

    /// Offset of the last arrival (the modeled night length up to the final
    /// file), or zero for an empty schedule.
    pub fn span(&self) -> Duration {
        self.offsets.last().copied().unwrap_or(Duration::ZERO)
    }

    /// Inject a burst starting at arrival `start`: the gaps *entering* each
    /// of the next `run` arrivals (i.e. between arrivals `start-1..start`
    /// through `start+run-1`) are divided by `factor`, and every later
    /// arrival shifts earlier by the time saved. Offsets stay
    /// non-decreasing; `factor <= 1` or an out-of-range `start` is a no-op.
    pub fn compress_burst(&mut self, start: usize, run: usize, factor: f64) {
        if factor <= 1.0 || start >= self.offsets.len() {
            return;
        }
        let n = self.offsets.len();
        let mut gaps: Vec<Duration> = (0..n)
            .map(|i| {
                let prev = if i == 0 {
                    Duration::ZERO
                } else {
                    self.offsets[i - 1]
                };
                self.offsets[i] - prev
            })
            .collect();
        for g in gaps.iter_mut().skip(start).take(run) {
            *g = Duration::from_secs_f64(g.as_secs_f64() / factor);
        }
        let mut at = Duration::ZERO;
        for (i, g) in gaps.iter().enumerate() {
            at += *g;
            self.offsets[i] = at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = ArrivalSchedule::poisson(7, 50, Duration::from_millis(100));
        let b = ArrivalSchedule::poisson(7, 50, Duration::from_millis(100));
        assert_eq!(a, b);
        let c = ArrivalSchedule::poisson(8, 50, Duration::from_millis(100));
        assert_ne!(a, c);
    }

    #[test]
    fn offsets_are_nondecreasing_and_mean_roughly_honoured() {
        let mean = Duration::from_millis(200);
        let s = ArrivalSchedule::poisson(42, 2000, mean);
        let mut prev = Duration::ZERO;
        for off in s.iter() {
            assert!(off >= prev);
            prev = off;
        }
        let avg_gap = s.span().as_secs_f64() / 2000.0;
        assert!(
            (avg_gap - mean.as_secs_f64()).abs() < 0.2 * mean.as_secs_f64(),
            "avg gap {avg_gap}s far from mean {}s",
            mean.as_secs_f64()
        );
    }

    #[test]
    fn burst_compresses_gaps_and_shifts_tail() {
        let mut s = ArrivalSchedule::poisson(3, 20, Duration::from_millis(100));
        let before = s.clone();
        s.compress_burst(5, 4, 10.0);
        // Arrivals before the burst are untouched.
        for i in 0..5 {
            assert_eq!(s.offset(i), before.offset(i));
        }
        // Burst arrivals land earlier; the tail shifts by the saved time.
        for i in 5..20 {
            assert!(s.offset(i) < before.offset(i), "arrival {i} did not move");
        }
        // Still non-decreasing.
        for i in 1..20 {
            assert!(s.offset(i) >= s.offset(i - 1));
        }
        let saved_at_burst_end = before.offset(8) - s.offset(8);
        let tail_shift = before.offset(19) - s.offset(19);
        assert_eq!(saved_at_burst_end, tail_shift);
    }

    #[test]
    fn burst_with_unit_factor_or_oob_start_is_noop() {
        let mut s = ArrivalSchedule::poisson(3, 10, Duration::from_millis(50));
        let before = s.clone();
        s.compress_burst(4, 3, 1.0);
        assert_eq!(s, before);
        s.compress_burst(10, 3, 5.0);
        assert_eq!(s, before);
    }

    #[test]
    fn immediate_schedule_is_all_zero() {
        let s = ArrivalSchedule::immediate(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.span(), Duration::ZERO);
        assert!(!s.is_empty());
        assert!(ArrivalSchedule::immediate(0).is_empty());
    }
}
