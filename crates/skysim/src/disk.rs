//! Disk cost model: the SAN-attached RAID environment of the paper.
//!
//! The paper's server reached its 30 TB of RAIDed SATA disks through three
//! separate Data Direct 8500 controllers, and §4.5.3 reports distributing
//! (1) data + temp files, (2) indices and (3) logs onto the three devices to
//! reduce I/O contention. A [`DiskFarm`] models that: named [`DiskDevice`]s,
//! each with its own service queue, so placing data/index/log on one shared
//! device really does queue their I/Os behind each other while separate
//! devices proceed in parallel.
//!
//! Service times are charged per page with distinct sequential/random rates,
//! which is what makes presorted input (§4.5.4, better clustering → more
//! sequential leaf writes) measurably cheaper.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::metrics::{Counter, TimeCharge};
use crate::time::{TimeScale, Waiter};

/// Per-device service-time parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Service time for a sequential page transfer (next page on the same
    /// track/stripe).
    pub sequential_page: Duration,
    /// Service time for a random page access (seek + rotational + transfer).
    pub random_page: Duration,
    /// Extra cost for a synchronous barrier (log fsync).
    pub sync_barrier: Duration,
}

impl DiskModel {
    /// RAID-backed SATA defaults, loosely matching 2005-era arrays behind a
    /// caching controller: fast streaming writes, costly random access.
    pub fn raided_sata() -> Self {
        DiskModel {
            sequential_page: Duration::from_micros(25),
            random_page: Duration::from_micros(400),
            sync_barrier: Duration::from_micros(150),
        }
    }

    /// A free disk (all operations cost zero). Useful in ablations that
    /// isolate non-I/O costs.
    pub fn free() -> Self {
        DiskModel {
            sequential_page: Duration::ZERO,
            random_page: Duration::ZERO,
            sync_barrier: Duration::ZERO,
        }
    }
}

/// The access pattern of a page I/O, chosen by the caller (the buffer-cache
/// writer knows whether a flush run is contiguous).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Next page in sequence on this device.
    Sequential,
    /// Random placement (seek required).
    Random,
}

/// One modeled disk device with a serialized service queue.
///
/// Cloneable handle; clones share the queue and counters. The queue is
/// modeled by a real mutex held for the (scaled) service duration, so
/// concurrent I/Os to the same device genuinely wait on each other —
/// that is the §4.5.3 contention effect.
#[derive(Debug, Clone)]
pub struct DiskDevice {
    inner: Arc<DeviceInner>,
}

#[derive(Debug)]
struct DeviceInner {
    name: String,
    model: DiskModel,
    service: Mutex<()>,
    waiter: Waiter,
    reads: Counter,
    writes: Counter,
    syncs: Counter,
    modeled: TimeCharge,
}

impl DiskDevice {
    /// A device named `name` with the given service model.
    pub fn new(name: impl Into<String>, model: DiskModel, scale: TimeScale) -> Self {
        DiskDevice {
            inner: Arc::new(DeviceInner {
                name: name.into(),
                model,
                service: Mutex::new(()),
                waiter: Waiter::new(scale),
                reads: Counter::new(),
                writes: Counter::new(),
                syncs: Counter::new(),
                modeled: TimeCharge::new(),
            }),
        }
    }

    /// Device name (for reports).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    fn service(&self, d: Duration) {
        self.inner.modeled.charge(d);
        if !self.inner.waiter.scale().is_zero() && !d.is_zero() {
            // Hold the device queue for the scaled service time: concurrent
            // requests to this device serialize, as on a real spindle set.
            let _q = self.inner.service.lock();
            self.inner.waiter.wait(d);
        }
    }

    /// Charge one page read.
    pub fn read_page(&self, access: Access) {
        self.inner.reads.inc();
        self.service(self.page_cost(access));
    }

    /// Charge one page write.
    pub fn write_page(&self, access: Access) {
        self.inner.writes.inc();
        self.service(self.page_cost(access));
    }

    /// Charge `n` page writes issued as one run with the given pattern.
    pub fn write_run(&self, n: u64, access: Access) {
        self.inner.writes.add(n);
        let per = self.page_cost(access);
        self.service(Duration::from_nanos(per.as_nanos() as u64 * n));
    }

    /// Charge a synchronous barrier (e.g. log fsync).
    pub fn sync(&self) {
        self.inner.syncs.inc();
        self.service(self.inner.model.sync_barrier);
    }

    fn page_cost(&self, access: Access) -> Duration {
        match access {
            Access::Sequential => self.inner.model.sequential_page,
            Access::Random => self.inner.model.random_page,
        }
    }

    /// Pages read so far.
    pub fn reads(&self) -> u64 {
        self.inner.reads.get()
    }

    /// Pages written so far.
    pub fn writes(&self) -> u64 {
        self.inner.writes.get()
    }

    /// Sync barriers so far.
    pub fn syncs(&self) -> u64 {
        self.inner.syncs.get()
    }

    /// Total modeled service time on this device.
    pub fn modeled_time(&self) -> Duration {
        self.inner.modeled.duration()
    }
}

/// The roles storage is divided into, mirroring §4.5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageRole {
    /// Table heap pages and temporary segments.
    Data,
    /// Index pages.
    Index,
    /// Redo/undo log.
    Log,
}

/// A set of disk devices with a role → device placement map.
///
/// [`DiskFarm::separated`] gives each role its own device (the paper's tuned
/// configuration); [`DiskFarm::shared`] maps every role to one device (the
/// untuned baseline for ablation A6).
#[derive(Debug, Clone)]
pub struct DiskFarm {
    data: DiskDevice,
    index: DiskDevice,
    log: DiskDevice,
}

impl DiskFarm {
    /// Three separate devices, one per role.
    pub fn separated(model: DiskModel, scale: TimeScale) -> Self {
        DiskFarm {
            data: DiskDevice::new("dd8500-data", model, scale),
            index: DiskDevice::new("dd8500-index", model, scale),
            log: DiskDevice::new("dd8500-log", model, scale),
        }
    }

    /// One shared device for all roles.
    pub fn shared(model: DiskModel, scale: TimeScale) -> Self {
        let dev = DiskDevice::new("dd8500-shared", model, scale);
        DiskFarm {
            data: dev.clone(),
            index: dev.clone(),
            log: dev,
        }
    }

    /// A farm whose operations all cost zero (unit tests).
    pub fn free() -> Self {
        DiskFarm::separated(DiskModel::free(), TimeScale::ZERO)
    }

    /// The device serving `role`.
    pub fn device(&self, role: StorageRole) -> &DiskDevice {
        match role {
            StorageRole::Data => &self.data,
            StorageRole::Index => &self.index,
            StorageRole::Log => &self.log,
        }
    }

    /// Total modeled I/O time across all distinct devices.
    pub fn modeled_time(&self) -> Duration {
        // In the shared configuration all three handles alias one device;
        // dedupe by pointer identity so the total is not triple-counted.
        let mut total = self.data.modeled_time();
        if !Arc::ptr_eq(&self.index.inner, &self.data.inner) {
            total += self.index.modeled_time();
        }
        if !Arc::ptr_eq(&self.log.inner, &self.data.inner)
            && !Arc::ptr_eq(&self.log.inner, &self.index.inner)
        {
            total += self.log.modeled_time();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_counts_and_charges() {
        let d = DiskDevice::new("t", DiskModel::raided_sata(), TimeScale::ZERO);
        d.read_page(Access::Random);
        d.write_page(Access::Sequential);
        d.write_run(10, Access::Sequential);
        d.sync();
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 11);
        assert_eq!(d.syncs(), 1);
        let m = DiskModel::raided_sata();
        let expect = m.random_page + m.sequential_page * 11 + m.sync_barrier;
        assert_eq!(d.modeled_time(), expect);
    }

    #[test]
    fn sequential_cheaper_than_random() {
        let m = DiskModel::raided_sata();
        assert!(m.sequential_page < m.random_page);
    }

    #[test]
    fn shared_farm_aliases_one_device() {
        let farm = DiskFarm::shared(DiskModel::raided_sata(), TimeScale::ZERO);
        farm.device(StorageRole::Data).write_page(Access::Random);
        farm.device(StorageRole::Log).sync();
        // Both operations landed on the same device.
        assert_eq!(farm.device(StorageRole::Index).writes(), 1);
        assert_eq!(farm.device(StorageRole::Index).syncs(), 1);
        let m = DiskModel::raided_sata();
        assert_eq!(farm.modeled_time(), m.random_page + m.sync_barrier);
    }

    #[test]
    fn separated_farm_isolates_roles() {
        let farm = DiskFarm::separated(DiskModel::raided_sata(), TimeScale::ZERO);
        farm.device(StorageRole::Data).write_page(Access::Random);
        assert_eq!(farm.device(StorageRole::Index).writes(), 0);
        assert_eq!(farm.device(StorageRole::Log).writes(), 0);
    }

    #[test]
    fn shared_device_serializes_real_io() {
        // Two threads issue 2 ms of I/O each to one device at REAL scale;
        // total wall time must reflect serialization (>= ~4 ms).
        let d = DiskDevice::new(
            "q",
            DiskModel {
                sequential_page: Duration::from_millis(2),
                random_page: Duration::from_millis(2),
                sync_barrier: Duration::ZERO,
            },
            TimeScale::REAL,
        );
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let d = d.clone();
                s.spawn(move || d.write_page(Access::Sequential));
            }
        });
        assert!(start.elapsed() >= Duration::from_millis(4));
    }
}
