//! A from-scratch B+-tree used for primary keys and attribute indexes.
//!
//! The tree is built for the workload the paper measures:
//!
//! * **Insert-heavy maintenance.** Fig. 8 measures the drag an index puts on
//!   bulk loading; every insert here does real comparisons, real node splits
//!   and real memory traffic. Fanout is derived from the key width, so the
//!   paper's "index on 3 float attributes" genuinely has lower fanout, more
//!   splits and more dirty pages than the "index on 1 integer attribute".
//! * **Bulk build from sorted input** for §4.5.1's delayed index building:
//!   secondary indexes are dropped during load and rebuilt afterwards with
//!   [`BPlusTree::bulk_build`], which packs leaves to a fill factor instead
//!   of paying per-key descent and splits.
//! * **Dirty-node accounting.** The engine charges index-device page writes
//!   per distinct node dirtied between cache flushes ([`BPlusTree::take_dirty`]).
//!
//! Deletions (used only to undo uncommitted inserts on rollback) are lazy:
//! entries are removed without rebalancing, as in many production engines.

use std::collections::HashSet;

use crate::value::Key;

/// Payload stored per entry (a packed [`RowId`]).
///
/// [`RowId`]: crate::heap::RowId
pub type Payload = u64;

/// Error returned by [`BPlusTree::insert`] on a unique-key conflict,
/// carrying the payload of the entry already holding the key. Callers use
/// the incumbent to attribute the collision (committed row vs. a still-open
/// transaction's staged row) without a second, racy tree probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateKey(pub Payload);

/// Internal separator: entries are globally ordered by `(key, payload)` so
/// duplicate keys (non-unique indexes) have a total order and never straddle
/// ambiguously.
type Entry = (Key, Payload);

#[derive(Debug)]
enum Node {
    Leaf {
        entries: Vec<Entry>,
        next: Option<u32>,
    },
    Internal {
        /// `children[i]` holds entries `< seps[i]`; `children.len() == seps.len() + 1`.
        seps: Vec<Entry>,
        children: Vec<u32>,
    },
}

/// A B+-tree mapping composite [`Key`]s to row payloads.
#[derive(Debug)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: u32,
    /// Maximum entries per node.
    order: usize,
    unique: bool,
    len: u64,
    splits: u64,
    dirty: HashSet<u32>,
}

/// Modeled page size a node occupies (drives fanout from key width).
const NODE_BYTES: usize = 8192;
/// Per-entry bookkeeping overhead assumed when deriving fanout.
const ENTRY_OVERHEAD: usize = 16;

/// Derive a node order (max entries) from an expected key width in bytes.
pub fn order_for_key_width(key_width_bytes: usize) -> usize {
    (NODE_BYTES / (key_width_bytes + ENTRY_OVERHEAD)).clamp(8, 512)
}

impl BPlusTree {
    /// An empty tree. `unique` rejects duplicate keys (primary keys and
    /// UNIQUE constraints); non-unique trees allow them (attribute indexes).
    pub fn new(unique: bool, order: usize) -> Self {
        assert!(order >= 4, "B+-tree order must be at least 4, got {order}");
        BPlusTree {
            nodes: vec![Node::Leaf {
                entries: Vec::new(),
                next: None,
            }],
            root: 0,
            order,
            unique,
            len: 0,
            splits: 0,
            dirty: HashSet::new(),
        }
    }

    /// An empty tree with order derived from an expected key width.
    pub fn with_key_width(unique: bool, key_width_bytes: usize) -> Self {
        BPlusTree::new(unique, order_for_key_width(key_width_bytes))
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total node splits since creation (a proxy for index page allocations).
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Number of allocated nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Height of the tree (1 = just a root leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut n = self.root;
        loop {
            match &self.nodes[n as usize] {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    h += 1;
                    n = children[0];
                }
            }
        }
    }

    /// Drain the set of nodes dirtied since the last call, returning its size.
    /// The engine maps this to index-device page writes.
    pub fn take_dirty(&mut self) -> usize {
        let n = self.dirty.len();
        self.dirty.clear();
        n
    }

    fn mark_dirty(&mut self, node: u32) {
        self.dirty.insert(node);
    }

    /// Insert `(key, payload)`. For unique trees, returns [`DuplicateKey`]
    /// if an entry with an equal key (any payload) exists. Keys containing
    /// NULL components bypass uniqueness (as in Oracle, NULLs are not
    /// indexed for uniqueness) but are still stored for completeness.
    pub fn insert(&mut self, key: Key, payload: Payload) -> Result<(), DuplicateKey> {
        if self.unique && !key.has_null() {
            if let Some(incumbent) = self.get_first(&key) {
                return Err(DuplicateKey(incumbent));
            }
        }
        let entry = (key, payload);
        if let Some((sep, right)) = self.insert_rec(self.root, entry) {
            // Root split: grow a new root.
            let old_root = self.root;
            let new_root = self.alloc(Node::Internal {
                seps: vec![sep],
                children: vec![old_root, right],
            });
            self.root = new_root;
        }
        self.len += 1;
        Ok(())
    }

    fn alloc(&mut self, node: Node) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        self.mark_dirty(id);
        id
    }

    /// Recursive insert; returns the promoted separator and new right node
    /// if `node` split.
    fn insert_rec(&mut self, node: u32, entry: Entry) -> Option<(Entry, u32)> {
        self.mark_dirty(node);
        let child = match &self.nodes[node as usize] {
            Node::Leaf { .. } => None,
            Node::Internal { seps, children, .. } => {
                let idx = seps.partition_point(|s| *s <= entry);
                Some(children[idx])
            }
        };

        match child {
            None => {
                // Leaf insert.
                let order = self.order;
                let Node::Leaf { entries, .. } = &mut self.nodes[node as usize] else {
                    unreachable!()
                };
                let pos = entries.partition_point(|e| *e < entry);
                entries.insert(pos, entry);
                if entries.len() <= order {
                    return None;
                }
                // Split leaf. Ascending (rightmost) inserts get Oracle's
                // "90-10" split so presorted loads pack leaves instead of
                // leaving them half-full; everything else splits 50-50.
                let mid = if pos == entries.len() - 1 {
                    (entries.len() * 9) / 10
                } else {
                    entries.len() / 2
                };
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].clone();
                let Node::Leaf { next, .. } = &mut self.nodes[node as usize] else {
                    unreachable!()
                };
                let old_next = *next;
                let right = self.alloc(Node::Leaf {
                    entries: right_entries,
                    next: old_next,
                });
                let Node::Leaf { next, .. } = &mut self.nodes[node as usize] else {
                    unreachable!()
                };
                *next = Some(right);
                self.splits += 1;
                Some((sep, right))
            }
            Some(child_id) => {
                let split = self.insert_rec(child_id, entry)?;
                let order = self.order;
                let (sep, right) = split;
                let Node::Internal { seps, children } = &mut self.nodes[node as usize] else {
                    unreachable!()
                };
                let idx = seps.partition_point(|s| *s <= sep);
                seps.insert(idx, sep);
                children.insert(idx + 1, right);
                if seps.len() <= order {
                    return None;
                }
                // Split internal: middle separator moves up.
                let mid = seps.len() / 2;
                let promoted = seps[mid].clone();
                let right_seps = seps.split_off(mid + 1);
                seps.pop(); // remove promoted
                let right_children = children.split_off(mid + 1);
                let right = self.alloc(Node::Internal {
                    seps: right_seps,
                    children: right_children,
                });
                self.splits += 1;
                Some((promoted, right))
            }
        }
    }

    fn find_leaf(&self, probe: &Entry) -> u32 {
        let mut n = self.root;
        loop {
            match &self.nodes[n as usize] {
                Node::Leaf { .. } => return n,
                Node::Internal { seps, children } => {
                    let idx = seps.partition_point(|s| s <= probe);
                    n = children[idx];
                }
            }
        }
    }

    /// `true` if any entry has exactly this key.
    pub fn contains_key(&self, key: &Key) -> bool {
        self.get_first(key).is_some()
    }

    /// The payload of the first entry with this key, if any.
    pub fn get_first(&self, key: &Key) -> Option<Payload> {
        let probe = (key.clone(), 0u64);
        let mut leaf = self.find_leaf(&probe);
        loop {
            let Node::Leaf { entries, next } = &self.nodes[leaf as usize] else {
                unreachable!()
            };
            let pos = entries.partition_point(|e| *e < probe);
            if pos < entries.len() {
                return if entries[pos].0 == *key {
                    Some(entries[pos].1)
                } else {
                    None
                };
            }
            // Probe landed past the end of this leaf; the key, if present,
            // is the first entry of the next leaf.
            match next {
                Some(n) => leaf = *n,
                None => return None,
            }
        }
    }

    /// All payloads with keys in the inclusive range `[lo, hi]`, in order.
    pub fn range(&self, lo: &Key, hi: &Key) -> Vec<(Key, Payload)> {
        let mut out = Vec::new();
        if lo > hi || self.len == 0 {
            return out;
        }
        let probe = (lo.clone(), 0u64);
        let mut leaf = self.find_leaf(&probe);
        let mut started = false;
        loop {
            let Node::Leaf { entries, next } = &self.nodes[leaf as usize] else {
                unreachable!()
            };
            let start = if started {
                0
            } else {
                entries.partition_point(|e| e < &probe)
            };
            started = true;
            for e in &entries[start..] {
                if e.0 > *hi {
                    return out;
                }
                out.push(e.clone());
            }
            match next {
                Some(n) => leaf = *n,
                None => return out,
            }
        }
    }

    /// All payloads with exactly this key.
    pub fn get_all(&self, key: &Key) -> Vec<Payload> {
        self.range(key, key).into_iter().map(|(_, p)| p).collect()
    }

    /// Remove the entry `(key, payload)` if present. Lazy: no rebalancing.
    pub fn remove(&mut self, key: &Key, payload: Payload) -> bool {
        let probe = (key.clone(), payload);
        let leaf = self.find_leaf(&probe);
        let Node::Leaf { entries, .. } = &mut self.nodes[leaf as usize] else {
            unreachable!()
        };
        match entries.binary_search_by(|e| e.cmp(&probe)) {
            Ok(pos) => {
                entries.remove(pos);
                self.len -= 1;
                self.mark_dirty(leaf);
                true
            }
            Err(_) => false,
        }
    }

    /// The key of the first entry whose payload is `payload`, found by a
    /// full leaf-chain walk.
    ///
    /// This is the quarantine path: when a heap row's stored bytes have
    /// rotted, the row can no longer be decoded to compute its index keys —
    /// but the index entry that *points at* the row was written before the
    /// rot and is still trustworthy. O(n); acceptable because it runs only
    /// for rows the scrubber has already condemned.
    pub fn key_for_row(&self, payload: Payload) -> Option<Key> {
        let mut n = self.root;
        while let Node::Internal { children, .. } = &self.nodes[n as usize] {
            n = children[0];
        }
        let mut leaf = Some(n);
        while let Some(l) = leaf {
            let Node::Leaf { entries, next } = &self.nodes[l as usize] else {
                unreachable!()
            };
            if let Some((k, _)) = entries.iter().find(|(_, p)| *p == payload) {
                return Some(k.clone());
            }
            leaf = *next;
        }
        None
    }

    /// Remove the first entry whose payload is `payload`, returning its key.
    /// The companion of [`BPlusTree::key_for_row`] for de-indexing a row
    /// whose heap bytes can no longer be decoded. O(n), lazy (no
    /// rebalancing), quarantine-only.
    pub fn remove_payload(&mut self, payload: Payload) -> Option<Key> {
        let mut n = self.root;
        while let Node::Internal { children, .. } = &self.nodes[n as usize] {
            n = children[0];
        }
        let mut leaf = Some(n);
        while let Some(l) = leaf {
            let Node::Leaf { entries, next } = &self.nodes[l as usize] else {
                unreachable!()
            };
            if let Some(pos) = entries.iter().position(|(_, p)| *p == payload) {
                let Node::Leaf { entries, .. } = &mut self.nodes[l as usize] else {
                    unreachable!()
                };
                let (k, _) = entries.remove(pos);
                self.len -= 1;
                self.mark_dirty(l);
                return Some(k);
            }
            leaf = *next;
        }
        None
    }

    /// Build a tree from entries **sorted by (key, payload)**, packing
    /// leaves to ~90% fill. Used for delayed index rebuild (§4.5.1).
    ///
    /// # Panics
    /// Panics (in debug builds) if the input is not sorted, and returns an
    /// invalid tree otherwise — callers sort first.
    pub fn bulk_build(unique: bool, order: usize, entries: Vec<Entry>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0] <= w[1]),
            "bulk_build requires sorted input"
        );
        let mut tree = BPlusTree::new(unique, order);
        if entries.is_empty() {
            return tree;
        }
        tree.len = entries.len() as u64;
        tree.nodes.clear();
        tree.dirty.clear();

        let per_leaf = ((order * 9) / 10).max(2);
        // Build leaves.
        let mut level: Vec<(Entry, u32)> = Vec::new(); // (first entry, node id)
        let mut prev_leaf: Option<u32> = None;
        for chunk in entries.chunks(per_leaf) {
            let first = chunk[0].clone();
            let id = tree.nodes.len() as u32;
            tree.nodes.push(Node::Leaf {
                entries: chunk.to_vec(),
                next: None,
            });
            tree.dirty.insert(id);
            if let Some(prev) = prev_leaf {
                let Node::Leaf { next, .. } = &mut tree.nodes[prev as usize] else {
                    unreachable!()
                };
                *next = Some(id);
            }
            prev_leaf = Some(id);
            level.push((first, id));
        }

        // Build internal levels until a single root remains.
        let per_node = per_leaf;
        while level.len() > 1 {
            let mut next_level = Vec::new();
            for group in level.chunks(per_node + 1) {
                let first = group[0].0.clone();
                let children: Vec<u32> = group.iter().map(|(_, id)| *id).collect();
                let seps: Vec<Entry> = group[1..].iter().map(|(e, _)| e.clone()).collect();
                let id = tree.nodes.len() as u32;
                tree.nodes.push(Node::Internal { seps, children });
                tree.dirty.insert(id);
                next_level.push((first, id));
            }
            level = next_level;
        }
        tree.root = level[0].1;
        tree
    }

    /// Verify structural invariants; used by property tests.
    ///
    /// Checks: entries sorted within nodes, separators bound their subtrees,
    /// all leaves at equal depth, leaf chain visits every entry in order.
    pub fn validate(&self) -> Result<(), String> {
        let mut leaf_depths = Vec::new();
        self.validate_rec(self.root, None, None, 1, &mut leaf_depths)?;
        if leaf_depths.windows(2).any(|w| w[0] != w[1]) {
            return Err("leaves at unequal depths".into());
        }
        // Walk the leaf chain and confirm global ordering + count.
        let mut n = self.root;
        while let Node::Internal { children, .. } = &self.nodes[n as usize] {
            n = children[0];
        }
        let mut count = 0u64;
        let mut last: Option<Entry> = None;
        let mut leaf = Some(n);
        while let Some(l) = leaf {
            let Node::Leaf { entries, next } = &self.nodes[l as usize] else {
                return Err("leaf chain reached internal node".into());
            };
            for e in entries {
                if let Some(prev) = &last {
                    if prev > e {
                        return Err(format!("leaf chain out of order near {:?}", e.0));
                    }
                }
                last = Some(e.clone());
                count += 1;
            }
            leaf = *next;
        }
        if count != self.len {
            return Err(format!("len {} != chain count {count}", self.len));
        }
        Ok(())
    }

    fn validate_rec(
        &self,
        node: u32,
        lo: Option<&Entry>,
        hi: Option<&Entry>,
        depth: usize,
        leaf_depths: &mut Vec<usize>,
    ) -> Result<(), String> {
        match &self.nodes[node as usize] {
            Node::Leaf { entries, .. } => {
                for w in entries.windows(2) {
                    if w[0] > w[1] {
                        return Err("unsorted leaf".into());
                    }
                }
                for e in entries {
                    if let Some(lo) = lo {
                        if e < lo {
                            return Err("leaf entry below lower bound".into());
                        }
                    }
                    if let Some(hi) = hi {
                        if e >= hi {
                            return Err("leaf entry at/above upper bound".into());
                        }
                    }
                }
                leaf_depths.push(depth);
                Ok(())
            }
            Node::Internal { seps, children } => {
                if children.len() != seps.len() + 1 {
                    return Err("internal arity mismatch".into());
                }
                for w in seps.windows(2) {
                    if w[0] > w[1] {
                        return Err("unsorted separators".into());
                    }
                }
                for (i, &child) in children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(&seps[i - 1]) };
                    let child_hi = if i == seps.len() { hi } else { Some(&seps[i]) };
                    self.validate_rec(child, child_lo, child_hi, depth + 1, leaf_depths)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn ikey(i: i64) -> Key {
        Key(vec![Value::Int(i)])
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = BPlusTree::new(true, 4);
        for i in 0..100 {
            t.insert(ikey(i), i as u64).unwrap();
        }
        assert_eq!(t.len(), 100);
        assert!(t.height() > 1);
        for i in 0..100 {
            assert_eq!(t.get_first(&ikey(i)), Some(i as u64), "missing key {i}");
        }
        assert_eq!(t.get_first(&ikey(100)), None);
        t.validate().unwrap();
    }

    #[test]
    fn unique_rejects_duplicates() {
        let mut t = BPlusTree::new(true, 8);
        t.insert(ikey(1), 10).unwrap();
        assert_eq!(t.insert(ikey(1), 20), Err(DuplicateKey(10)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn null_keys_bypass_uniqueness() {
        let mut t = BPlusTree::new(true, 8);
        let nk = Key(vec![Value::Null]);
        t.insert(nk.clone(), 1).unwrap();
        t.insert(nk.clone(), 2).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn non_unique_allows_duplicates_and_get_all() {
        let mut t = BPlusTree::new(false, 4);
        for p in 0..10u64 {
            t.insert(ikey(7), p).unwrap();
        }
        t.insert(ikey(3), 100).unwrap();
        let all = t.get_all(&ikey(7));
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        t.validate().unwrap();
    }

    #[test]
    fn range_scan_inclusive() {
        let mut t = BPlusTree::new(true, 4);
        for i in (0..200).step_by(2) {
            t.insert(ikey(i), i as u64).unwrap();
        }
        let hits = t.range(&ikey(10), &ikey(20));
        let keys: Vec<i64> = hits.iter().map(|(k, _)| k.0[0].as_i64().unwrap()).collect();
        assert_eq!(keys, vec![10, 12, 14, 16, 18, 20]);
        assert!(t.range(&ikey(21), &ikey(21)).is_empty());
        assert!(t.range(&ikey(30), &ikey(10)).is_empty());
    }

    #[test]
    fn reverse_and_random_order_inserts_stay_valid() {
        let mut t = BPlusTree::new(true, 4);
        for i in (0..500).rev() {
            t.insert(ikey(i), i as u64).unwrap();
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 500);
        // Interleave from both ends.
        let mut t2 = BPlusTree::new(true, 4);
        for i in 0..250 {
            t2.insert(ikey(i), 0).unwrap();
            t2.insert(ikey(999 - i), 0).unwrap();
        }
        t2.validate().unwrap();
    }

    #[test]
    fn remove_is_lazy_but_correct() {
        let mut t = BPlusTree::new(false, 4);
        for i in 0..50 {
            t.insert(ikey(i), i as u64).unwrap();
        }
        assert!(t.remove(&ikey(25), 25));
        assert!(!t.remove(&ikey(25), 25));
        assert!(!t.remove(&ikey(999), 0));
        assert_eq!(t.len(), 49);
        assert_eq!(t.get_first(&ikey(25)), None);
        t.validate().unwrap();
    }

    #[test]
    fn key_for_row_and_remove_payload_walk_the_chain() {
        let mut t = BPlusTree::new(true, 4);
        for i in 0..200 {
            t.insert(ikey(i), 1000 + i as u64).unwrap();
        }
        assert_eq!(t.key_for_row(1123), Some(ikey(123)));
        assert_eq!(t.key_for_row(99), None);
        assert_eq!(t.remove_payload(1123), Some(ikey(123)));
        assert_eq!(t.len(), 199);
        assert_eq!(t.get_first(&ikey(123)), None);
        assert_eq!(t.remove_payload(1123), None, "already removed");
        t.validate().unwrap();
    }

    #[test]
    fn sequential_inserts_split_less_than_random() {
        // Presort ablation (A4) in miniature: right-edge inserts produce a
        // packed tree; shuffled inserts produce more, half-full nodes.
        let n = 2000i64;
        let mut seq = BPlusTree::new(true, 32);
        for i in 0..n {
            seq.insert(ikey(i), 0).unwrap();
        }
        let mut rng = 0x12345u64;
        let mut order: Vec<i64> = (0..n).collect();
        // xorshift shuffle
        for i in (1..order.len()).rev() {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            order.swap(i, (rng % (i as u64 + 1)) as usize);
        }
        let mut rnd = BPlusTree::new(true, 32);
        for i in order {
            rnd.insert(ikey(i), 0).unwrap();
        }
        assert!(
            rnd.node_count() > seq.node_count(),
            "random {} nodes should exceed sequential {}",
            rnd.node_count(),
            seq.node_count()
        );
    }

    #[test]
    fn bulk_build_matches_incremental() {
        let entries: Vec<Entry> = (0..1000).map(|i| (ikey(i), i as u64)).collect();
        let t = BPlusTree::bulk_build(true, 32, entries);
        t.validate().unwrap();
        assert_eq!(t.len(), 1000);
        for i in (0..1000).step_by(37) {
            assert_eq!(t.get_first(&ikey(i)), Some(i as u64));
        }
        let hits = t.range(&ikey(100), &ikey(110));
        assert_eq!(hits.len(), 11);
    }

    #[test]
    fn bulk_build_empty_and_single() {
        let t = BPlusTree::bulk_build(true, 8, vec![]);
        assert!(t.is_empty());
        t.validate().unwrap();
        let t1 = BPlusTree::bulk_build(true, 8, vec![(ikey(5), 50)]);
        assert_eq!(t1.get_first(&ikey(5)), Some(50));
        t1.validate().unwrap();
    }

    #[test]
    fn dirty_tracking_drains() {
        let mut t = BPlusTree::new(true, 4);
        for i in 0..100 {
            t.insert(ikey(i), 0).unwrap();
        }
        let d1 = t.take_dirty();
        assert!(d1 > 0);
        assert_eq!(t.take_dirty(), 0);
        t.insert(ikey(1000), 0).unwrap();
        assert!(t.take_dirty() >= 1);
    }

    #[test]
    fn wider_keys_lower_fanout() {
        assert!(order_for_key_width(9) > order_for_key_width(27));
        assert_eq!(order_for_key_width(100_000), 8); // clamped
    }

    #[test]
    fn composite_float_keys() {
        let mut t = BPlusTree::new(false, 8);
        let k = |a: f64, b: f64, c: f64| Key(vec![a.into(), b.into(), c.into()]);
        t.insert(k(1.0, 2.0, 3.0), 1).unwrap();
        t.insert(k(1.0, 2.0, 2.0), 2).unwrap();
        t.insert(k(0.5, 9.0, 9.0), 3).unwrap();
        let hits = t.range(&k(0.0, 0.0, 0.0), &k(1.0, 2.0, 2.5));
        assert_eq!(hits.len(), 2);
        t.validate().unwrap();
    }
}
