//! Error types for the database engine.

use std::fmt;

/// The kind of constraint whose violation produced an error.
///
/// The loading paper exercises all of these: "All constraints, including
/// primary key constraints, foreign key constraints, unique constraints, and
/// check constraints were maintained in the data loading process" (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// Duplicate primary key.
    PrimaryKey,
    /// Foreign key references a missing parent row.
    ForeignKey,
    /// Duplicate value in a unique index.
    Unique,
    /// CHECK expression evaluated to false (or failed to evaluate).
    Check,
    /// NULL in a NOT NULL column.
    NotNull,
}

impl fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConstraintKind::PrimaryKey => "PRIMARY KEY",
            ConstraintKind::ForeignKey => "FOREIGN KEY",
            ConstraintKind::Unique => "UNIQUE",
            ConstraintKind::Check => "CHECK",
            ConstraintKind::NotNull => "NOT NULL",
        };
        f.write_str(s)
    }
}

/// Errors produced by the engine, wire layer and sessions.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// A named table does not exist.
    NoSuchTable(String),
    /// A named index does not exist.
    NoSuchIndex(String),
    /// A named column does not exist on the given table.
    NoSuchColumn {
        /// Table searched.
        table: String,
        /// Missing column name.
        column: String,
    },
    /// An object with this name already exists.
    AlreadyExists(String),
    /// A value did not match the declared column type.
    TypeMismatch {
        /// Table involved.
        table: String,
        /// Column involved.
        column: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A row has the wrong number of columns for its table.
    ArityMismatch {
        /// Table involved.
        table: String,
        /// Columns the table declares.
        expected: usize,
        /// Columns the row supplied.
        got: usize,
    },
    /// A declared constraint was violated.
    ConstraintViolation {
        /// Which kind of constraint.
        kind: ConstraintKind,
        /// Constraint name (e.g. `pk_objects`, `fk_objects_frame`).
        constraint: String,
        /// Table on which the violation occurred.
        table: String,
        /// Human-readable description of the offending values.
        detail: String,
    },
    /// An expression failed to evaluate (type error, unknown column…).
    ExprError(String),
    /// The schema definition itself is invalid.
    InvalidSchema(String),
    /// A wire-protocol frame could not be decoded.
    Protocol(String),
    /// The server refused the call because it is momentarily overloaded
    /// (transient; the client should back off and retry).
    ServerBusy(String),
    /// A client-side driver timeout: the call exceeded the session's
    /// per-call budget (the server may or may not have processed it).
    Timeout(String),
    /// The log device rejected a write for lack of space (transient once
    /// the operator frees space; the transaction stays open).
    DiskFull(String),
    /// The server has crashed; every further call on any session fails
    /// until the repository is recovered into a fresh server.
    ServerDown(String),
    /// The server detected a corrupted request payload (checksum mismatch)
    /// and rejected the whole call before applying anything. Nothing was
    /// stored: the client may simply resend the batch.
    Corruption(String),
    /// The server detected corruption **at rest**: a stored heap row or WAL
    /// record failed its CRC. Unlike [`DbError::Corruption`], the damage is
    /// in durable state — resending the request cannot help; the row must be
    /// quarantined by the scrubber and re-derived from its source file.
    DataCorruption(String),
    /// A batch failed at `offset`; rows before the offset were applied.
    Batch {
        /// Zero-based index of the failing row within the batch.
        offset: usize,
        /// The underlying error for the failing row.
        cause: Box<DbError>,
    },
    /// The key being inserted collides with a row staged by another
    /// *still-active* transaction. Whether this is a true duplicate is
    /// unknowable until that transaction resolves (commit → duplicate,
    /// rollback → insertable), so it is reported as a retryable conflict
    /// rather than a constraint violation — the analogue of a row-lock
    /// wait timeout in a disk RDBMS. Skipping the row here would lose it
    /// forever if the conflicting transaction rolls back.
    WriteConflict(String),
    /// The call carried a fencing token whose epoch is older than the
    /// minimum the server has been told to accept: a newer lease holder has
    /// taken over the work, and this (zombie) session's writes must not
    /// apply. Rejected before anything is applied; not retryable on this
    /// lease.
    FencedOut(String),
    /// The session has no active transaction for the requested operation.
    NoTransaction,
    /// The engine rejected a statement because the session is closed.
    SessionClosed,
}

impl DbError {
    /// Convenience constructor for constraint violations.
    pub fn constraint(
        kind: ConstraintKind,
        constraint: impl Into<String>,
        table: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        DbError::ConstraintViolation {
            kind,
            constraint: constraint.into(),
            table: table.into(),
            detail: detail.into(),
        }
    }

    /// If this error is (or wraps, for [`DbError::Batch`]) a constraint
    /// violation, return its kind.
    pub fn constraint_kind(&self) -> Option<ConstraintKind> {
        match self {
            DbError::ConstraintViolation { kind, .. } => Some(*kind),
            DbError::Batch { cause, .. } => cause.constraint_kind(),
            _ => None,
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "table does not exist: {t}"),
            DbError::NoSuchIndex(i) => write!(f, "index does not exist: {i}"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "column {column} does not exist on table {table}")
            }
            DbError::AlreadyExists(n) => write!(f, "object already exists: {n}"),
            DbError::TypeMismatch {
                table,
                column,
                detail,
            } => write!(f, "type mismatch on {table}.{column}: {detail}"),
            DbError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(f, "table {table} has {expected} columns, row has {got}"),
            DbError::ConstraintViolation {
                kind,
                constraint,
                table,
                detail,
            } => {
                // Client-side errors reconstructed from the wire carry only
                // the kind and the server's message.
                if constraint.is_empty() && table.is_empty() {
                    write!(f, "{kind} constraint violated: {detail}")
                } else {
                    write!(
                        f,
                        "{kind} constraint {constraint} violated on {table}: {detail}"
                    )
                }
            }
            DbError::ExprError(m) => write!(f, "expression error: {m}"),
            DbError::InvalidSchema(m) => write!(f, "invalid schema: {m}"),
            DbError::Protocol(m) => write!(f, "protocol error: {m}"),
            DbError::ServerBusy(m) => write!(f, "server busy: {m}"),
            DbError::Timeout(m) => write!(f, "call timed out: {m}"),
            DbError::DiskFull(m) => write!(f, "disk full: {m}"),
            DbError::ServerDown(m) => write!(f, "server down: {m}"),
            DbError::Corruption(m) => write!(f, "corrupt payload: {m}"),
            DbError::DataCorruption(m) => write!(f, "at-rest corruption: {m}"),
            DbError::Batch { offset, cause } => {
                write!(f, "batch failed at row offset {offset}: {cause}")
            }
            DbError::WriteConflict(m) => write!(f, "write conflict: {m}"),
            DbError::FencedOut(m) => write!(f, "fenced out: {m}"),
            DbError::NoTransaction => write!(f, "no active transaction"),
            DbError::SessionClosed => write!(f, "session is closed"),
        }
    }
}

impl std::error::Error for DbError {}

/// Result alias used throughout the engine.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DbError::constraint(
            ConstraintKind::ForeignKey,
            "fk_objects_frame",
            "objects",
            "frame_id=99 has no parent",
        );
        let s = e.to_string();
        assert!(s.contains("FOREIGN KEY"));
        assert!(s.contains("fk_objects_frame"));
        assert!(s.contains("objects"));
    }

    #[test]
    fn constraint_kind_unwraps_batch() {
        let inner = DbError::constraint(ConstraintKind::PrimaryKey, "pk", "t", "d");
        let batch = DbError::Batch {
            offset: 3,
            cause: Box::new(inner),
        };
        assert_eq!(batch.constraint_kind(), Some(ConstraintKind::PrimaryKey));
        assert_eq!(DbError::NoTransaction.constraint_kind(), None);
    }
}
