//! A small typed expression language for CHECK constraints and query filters.
//!
//! The catalog schema uses CHECK constraints for the "stringent data
//! checking … performed by the database to guard against hidden corruption"
//! (§4.3) — range checks on magnitudes, coordinates within the sky, flag
//! domains — and the examples use the same expressions as scan filters.

use std::fmt;

use crate::error::{DbError, DbResult};
use crate::value::Value;

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// An expression tree over row columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference by position.
    Column(usize),
    /// A literal value.
    Literal(Value),
    /// Comparison of two sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic on two sub-expressions (numeric only).
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Logical AND (SQL three-valued logic).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR (SQL three-valued logic).
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// `IS NULL`.
    IsNull(Box<Expr>),
    /// `x BETWEEN lo AND hi` (inclusive).
    Between(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `x IN (v1, v2, …)`.
    In(Box<Expr>, Vec<Value>),
}

/// Result of evaluating a boolean expression under SQL three-valued logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// NULL / unknown.
    Unknown,
}

impl Truth {
    fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// CHECK-constraint acceptance: NULL results *pass* (as in SQL).
    pub fn passes_check(self) -> bool {
        !matches!(self, Truth::False)
    }

    /// WHERE-clause acceptance: only definite truth selects a row.
    pub fn selects(self) -> bool {
        matches!(self, Truth::True)
    }
}

impl Expr {
    /// Shorthand: `column op literal`.
    pub fn cmp(col: usize, op: CmpOp, lit: impl Into<Value>) -> Expr {
        Expr::Cmp(
            op,
            Box::new(Expr::Column(col)),
            Box::new(Expr::Literal(lit.into())),
        )
    }

    /// Shorthand: `column BETWEEN lo AND hi`.
    pub fn between(col: usize, lo: impl Into<Value>, hi: impl Into<Value>) -> Expr {
        Expr::Between(
            Box::new(Expr::Column(col)),
            Box::new(Expr::Literal(lo.into())),
            Box::new(Expr::Literal(hi.into())),
        )
    }

    /// Shorthand: `a AND b`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// Shorthand: `a OR b`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Evaluate to a [`Value`] against a row.
    pub fn eval(&self, row: &[Value]) -> DbResult<Value> {
        match self {
            Expr::Column(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| DbError::ExprError(format!("column index {i} out of range"))),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Cmp(op, a, b) => {
                let (a, b) = (a.eval(row)?, b.eval(row)?);
                Ok(truth_value(eval_cmp(*op, &a, &b)))
            }
            Expr::Arith(op, a, b) => {
                let (a, b) = (a.eval(row)?, b.eval(row)?);
                if a.is_null() || b.is_null() {
                    return Ok(Value::Null);
                }
                let (x, y) = match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => return Err(DbError::ExprError("arithmetic on non-numeric value".into())),
                };
                // Keep integer arithmetic exact when both sides are ints.
                if let (Value::Int(ia), Value::Int(ib)) = (&a, &b) {
                    let r = match op {
                        ArithOp::Add => ia.checked_add(*ib),
                        ArithOp::Sub => ia.checked_sub(*ib),
                        ArithOp::Mul => ia.checked_mul(*ib),
                        ArithOp::Div => {
                            if *ib == 0 {
                                return Err(DbError::ExprError("division by zero".into()));
                            }
                            ia.checked_div(*ib)
                        }
                    };
                    return r
                        .map(Value::Int)
                        .ok_or_else(|| DbError::ExprError("integer overflow".into()));
                }
                let r = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => {
                        if y == 0.0 {
                            return Err(DbError::ExprError("division by zero".into()));
                        }
                        x / y
                    }
                };
                Ok(Value::Float(r))
            }
            _ => Ok(truth_value(self.eval_truth(row)?)),
        }
    }

    /// Evaluate as a boolean under SQL three-valued logic.
    pub fn eval_truth(&self, row: &[Value]) -> DbResult<Truth> {
        match self {
            Expr::And(a, b) => Ok(a.eval_truth(row)?.and(b.eval_truth(row)?)),
            Expr::Or(a, b) => Ok(a.eval_truth(row)?.or(b.eval_truth(row)?)),
            Expr::Not(a) => Ok(a.eval_truth(row)?.not()),
            Expr::IsNull(a) => Ok(if a.eval(row)?.is_null() {
                Truth::True
            } else {
                Truth::False
            }),
            Expr::Cmp(op, a, b) => Ok(eval_cmp(*op, &a.eval(row)?, &b.eval(row)?)),
            Expr::Between(x, lo, hi) => {
                let x = x.eval(row)?;
                let lo = lo.eval(row)?;
                let hi = hi.eval(row)?;
                let ge = eval_cmp(CmpOp::Ge, &x, &lo);
                let le = eval_cmp(CmpOp::Le, &x, &hi);
                Ok(ge.and(le))
            }
            Expr::In(x, set) => {
                let x = x.eval(row)?;
                if x.is_null() {
                    return Ok(Truth::Unknown);
                }
                let mut saw_null = false;
                for v in set {
                    if v.is_null() {
                        saw_null = true;
                    } else if matches!(eval_cmp(CmpOp::Eq, &x, v), Truth::True) {
                        return Ok(Truth::True);
                    }
                }
                Ok(if saw_null {
                    Truth::Unknown
                } else {
                    Truth::False
                })
            }
            Expr::Column(_) | Expr::Literal(_) | Expr::Arith(..) => match self.eval(row)? {
                Value::Bool(true) => Ok(Truth::True),
                Value::Bool(false) => Ok(Truth::False),
                Value::Null => Ok(Truth::Unknown),
                other => Err(DbError::ExprError(format!("expected boolean, got {other}"))),
            },
        }
    }

    /// The highest column index referenced, for schema validation.
    pub fn max_column(&self) -> Option<usize> {
        match self {
            Expr::Column(i) => Some(*i),
            Expr::Literal(_) => None,
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.max_column().into_iter().chain(b.max_column()).max()
            }
            Expr::Not(a) | Expr::IsNull(a) => a.max_column(),
            Expr::Between(a, b, c) => a
                .max_column()
                .into_iter()
                .chain(b.max_column())
                .chain(c.max_column())
                .max(),
            Expr::In(a, _) => a.max_column(),
        }
    }
}

fn eval_cmp(op: CmpOp, a: &Value, b: &Value) -> Truth {
    if a.is_null() || b.is_null() {
        return Truth::Unknown;
    }
    let ord = a.cmp_sql(b);
    let holds = match op {
        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
        CmpOp::Ne => ord != std::cmp::Ordering::Equal,
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::Le => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::Ge => ord != std::cmp::Ordering::Less,
    };
    if holds {
        Truth::True
    } else {
        Truth::False
    }
}

fn truth_value(t: Truth) -> Value {
    match t {
        Truth::True => Value::Bool(true),
        Truth::False => Value::Bool(false),
        Truth::Unknown => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![
            Value::Int(10),
            Value::Float(2.5),
            Value::Text("abc".into()),
            Value::Null,
        ]
    }

    #[test]
    fn comparisons() {
        let r = row();
        assert_eq!(
            Expr::cmp(0, CmpOp::Gt, 5i64).eval_truth(&r).unwrap(),
            Truth::True
        );
        assert_eq!(
            Expr::cmp(0, CmpOp::Lt, 5i64).eval_truth(&r).unwrap(),
            Truth::False
        );
        assert_eq!(
            Expr::cmp(2, CmpOp::Eq, "abc").eval_truth(&r).unwrap(),
            Truth::True
        );
        // Comparison with NULL is Unknown.
        assert_eq!(
            Expr::cmp(3, CmpOp::Eq, 1i64).eval_truth(&r).unwrap(),
            Truth::Unknown
        );
    }

    #[test]
    fn three_valued_logic() {
        let r = row();
        let unknown = Expr::cmp(3, CmpOp::Eq, 1i64);
        let t = Expr::cmp(0, CmpOp::Eq, 10i64);
        let f = Expr::cmp(0, CmpOp::Ne, 10i64);
        assert_eq!(
            unknown.clone().and(f.clone()).eval_truth(&r).unwrap(),
            Truth::False
        );
        assert_eq!(
            unknown.clone().and(t.clone()).eval_truth(&r).unwrap(),
            Truth::Unknown
        );
        assert_eq!(unknown.clone().or(t).eval_truth(&r).unwrap(), Truth::True);
        assert_eq!(
            unknown.clone().or(f).eval_truth(&r).unwrap(),
            Truth::Unknown
        );
        assert_eq!(
            Expr::Not(Box::new(unknown)).eval_truth(&r).unwrap(),
            Truth::Unknown
        );
    }

    #[test]
    fn check_semantics_pass_on_unknown() {
        let r = row();
        // CHECK (col3 > 5) where col3 is NULL: passes, as in SQL.
        assert!(Expr::cmp(3, CmpOp::Gt, 5i64)
            .eval_truth(&r)
            .unwrap()
            .passes_check());
        // WHERE col3 > 5: does not select.
        assert!(!Expr::cmp(3, CmpOp::Gt, 5i64)
            .eval_truth(&r)
            .unwrap()
            .selects());
    }

    #[test]
    fn between_and_in() {
        let r = row();
        assert_eq!(
            Expr::between(1, 2.0, 3.0).eval_truth(&r).unwrap(),
            Truth::True
        );
        assert_eq!(
            Expr::between(1, 3.0, 9.0).eval_truth(&r).unwrap(),
            Truth::False
        );
        let in_expr = Expr::In(
            Box::new(Expr::Column(0)),
            vec![Value::Int(9), Value::Int(10)],
        );
        assert_eq!(in_expr.eval_truth(&r).unwrap(), Truth::True);
        let in_null = Expr::In(Box::new(Expr::Column(0)), vec![Value::Int(9), Value::Null]);
        assert_eq!(in_null.eval_truth(&r).unwrap(), Truth::Unknown);
    }

    #[test]
    fn arithmetic() {
        let r = row();
        let e = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::Column(0)),
            Box::new(Expr::Literal(Value::Int(5))),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Int(15));
        let div0 = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::Column(0)),
            Box::new(Expr::Literal(Value::Int(0))),
        );
        assert!(div0.eval(&r).is_err());
        let nullprop = Expr::Arith(
            ArithOp::Mul,
            Box::new(Expr::Column(3)),
            Box::new(Expr::Literal(Value::Int(2))),
        );
        assert_eq!(nullprop.eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn integer_overflow_detected() {
        let e = Expr::Arith(
            ArithOp::Mul,
            Box::new(Expr::Literal(Value::Int(i64::MAX))),
            Box::new(Expr::Literal(Value::Int(2))),
        );
        assert!(e.eval(&[]).is_err());
    }

    #[test]
    fn max_column_scans_tree() {
        let e = Expr::between(4, 0i64, 1i64).and(Expr::cmp(9, CmpOp::Eq, 1i64));
        assert_eq!(e.max_column(), Some(9));
        assert_eq!(Expr::Literal(Value::Int(1)).max_column(), None);
    }

    #[test]
    fn out_of_range_column_errors() {
        assert!(Expr::Column(99).eval(&row()).is_err());
    }
}
