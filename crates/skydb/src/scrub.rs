//! Background scrubber: walk every table's heap under committed-read locks,
//! verify each stored row's CRC, check B+-tree structural invariants, and
//! **quarantine** rotted rows so they are never served.
//!
//! The scrubber is the detection half of the integrity loop (the repair half
//! is `skyloader::repair`): it runs concurrently with live ingest and
//! serving, holding each table's heap mutex only for the duration of that
//! table's pass — the same lock a committed scan holds — so a racing reader
//! either sees a row before the scrubber (when a rotted row surfaces as
//! [`crate::error::DbError::DataCorruption`], never as data) or after
//! quarantine (when the row is simply gone). There is no window in which
//! rotted bytes decode into a served row.
//!
//! Telemetry: `scrub.pages`, `scrub.bad_records`, `scrub.bad_nodes`,
//! `scrub.quarantined` counters in the shared [`skyobs::Registry`].

use serde::{Deserialize, Serialize};
use skyobs::Registry;

use crate::engine::Engine;
use crate::error::DbResult;

/// What the scrubber should walk.
#[derive(Debug, Clone, Default)]
pub struct ScrubConfig {
    /// Restrict the pass to these tables (`None` = every table in the
    /// catalog, in name order).
    pub tables: Option<Vec<String>>,
}

/// One quarantined row: enough identity to re-derive it from source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedRow {
    /// Table the row lived in.
    pub table: String,
    /// Packed heap row id (page << 16 | slot) it occupied.
    pub row_id: u64,
    /// The row's primary-key values as recovered from the PK index (the
    /// heap bytes are rotted, so the index — whose entry maps key → this
    /// row id — is the only trustworthy source of identity). Empty when the
    /// index held no entry for the row.
    pub pk: Vec<crate::value::Value>,
}

/// Per-table scrub outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableScrub {
    /// Table name.
    pub table: String,
    /// Heap pages walked.
    pub pages: u64,
    /// Live rows whose CRC was verified.
    pub rows: u64,
    /// Rows that failed their CRC (all quarantined).
    pub bad_records: u64,
    /// Index trees that failed their structural invariant check.
    pub bad_nodes: u64,
}

/// Outcome of one full scrub pass.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Per-table outcomes, in scan order.
    pub tables: Vec<TableScrub>,
    /// Every row quarantined in this pass.
    pub quarantined: Vec<QuarantinedRow>,
}

impl ScrubReport {
    /// Heap pages walked across all tables.
    pub fn pages(&self) -> u64 {
        self.tables.iter().map(|t| t.pages).sum()
    }

    /// Rows that failed their CRC across all tables.
    pub fn bad_records(&self) -> u64 {
        self.tables.iter().map(|t| t.bad_records).sum()
    }

    /// Trees that failed validation across all tables.
    pub fn bad_nodes(&self) -> u64 {
        self.tables.iter().map(|t| t.bad_nodes).sum()
    }
}

/// Run one scrub pass over `engine`, recording `scrub.*` counters in `obs`.
///
/// Each table is scrubbed under its own heap lock (concurrent ingest into
/// *other* tables proceeds untouched; a loader writing *this* table simply
/// waits, exactly as it would behind a long committed scan). Rows staged by
/// still-open transactions are skipped: their fate belongs to their
/// transaction, and their bytes have not yet survived long enough to rot in
/// this model.
pub fn run_scrub(engine: &Engine, cfg: &ScrubConfig, obs: &Registry) -> DbResult<ScrubReport> {
    let pages_ctr = obs.counter("scrub.pages");
    let bad_records_ctr = obs.counter("scrub.bad_records");
    let bad_nodes_ctr = obs.counter("scrub.bad_nodes");
    let quarantined_ctr = obs.counter("scrub.quarantined");

    let tables = match &cfg.tables {
        Some(list) => list.clone(),
        None => engine.table_names(),
    };
    let mut report = ScrubReport::default();
    for name in tables {
        let (scrubbed, quarantined) = engine.scrub_table(&name)?;
        pages_ctr.add(scrubbed.pages);
        bad_records_ctr.add(scrubbed.bad_records);
        bad_nodes_ctr.add(scrubbed.bad_nodes);
        quarantined_ctr.add(quarantined.len() as u64);
        report.tables.push(scrubbed);
        report.quarantined.extend(quarantined);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DbConfig;
    use crate::error::DbError;
    use crate::schema::TableBuilder;
    use crate::value::{DataType, Key, Value};

    fn engine_with_rows(n: i64) -> (Engine, crate::schema::TableId) {
        let engine = Engine::new(DbConfig::test());
        let schema = TableBuilder::new("objs")
            .col("id", DataType::Int)
            .col("mag", DataType::Float)
            .pk(&["id"])
            .build()
            .unwrap();
        engine.create_table(schema).unwrap();
        let tid = engine.table_id("objs").unwrap();
        let txn = engine.begin();
        for i in 0..n {
            engine
                .insert_row(txn, tid, &[Value::Int(i), Value::Float(i as f64)])
                .unwrap();
        }
        engine.commit(txn).unwrap();
        (engine, tid)
    }

    #[test]
    fn rotted_row_is_never_served_then_quarantined() {
        let (engine, tid) = engine_with_rows(50);
        let rid = engine
            .rot_heap_row("objs", 7)
            .expect("a committed row to rot");

        // Pre-scrub: every committed read path refuses to serve the rot.
        let err = engine.scan_where_committed(tid, None).unwrap_err();
        assert!(matches!(err, DbError::DataCorruption(_)), "{err}");

        let obs = skyobs::Registry::new();
        let report = run_scrub(&engine, &ScrubConfig::default(), &obs).unwrap();
        assert_eq!(report.bad_records(), 1);
        assert_eq!(report.bad_nodes(), 0);
        assert_eq!(report.quarantined.len(), 1);
        let q = &report.quarantined[0];
        assert_eq!(q.table, "objs");
        assert_eq!(q.row_id, rid.packed());
        assert_eq!(q.pk.len(), 1, "PK identity recovered from the index");

        // Post-scrub: scans serve exactly the survivors; the quarantined
        // key is gone from the indexes too.
        let rows = engine.scan_where_committed(tid, None).unwrap().rows;
        assert_eq!(rows.len(), 49);
        let gone = engine.pk_get_committed(tid, &Key(q.pk.clone())).unwrap();
        assert!(gone.is_none());

        assert_eq!(obs.counter("scrub.bad_records").get(), 1);
        assert_eq!(obs.counter("scrub.quarantined").get(), 1);
        assert!(obs.counter("scrub.pages").get() >= 1);

        // A second pass finds nothing.
        let again = run_scrub(&engine, &ScrubConfig::default(), &obs).unwrap();
        assert_eq!(again.bad_records(), 0);
        assert_eq!(again.quarantined.len(), 0);
    }

    #[test]
    fn clean_engine_scrubs_clean_and_reports_all_tables() {
        let (engine, _) = engine_with_rows(10);
        let obs = skyobs::Registry::new();
        let report = run_scrub(&engine, &ScrubConfig::default(), &obs).unwrap();
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].rows, 10);
        assert_eq!(report.bad_records(), 0);
        assert_eq!(report.bad_nodes(), 0);
    }

    #[test]
    fn scrub_config_restricts_tables() {
        let (engine, _) = engine_with_rows(5);
        let obs = skyobs::Registry::new();
        let cfg = ScrubConfig {
            tables: Some(vec!["objs".into()]),
        };
        let report = run_scrub(&engine, &cfg, &obs).unwrap();
        assert_eq!(report.tables.len(), 1);
        let missing = ScrubConfig {
            tables: Some(vec!["nope".into()]),
        };
        assert!(run_scrub(&engine, &missing, &obs).is_err());
    }
}
