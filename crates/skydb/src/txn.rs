//! Transactions, the concurrent-transaction limit, and table insert locks.
//!
//! §4.4: *"our tests have shown … parallelism at this level tends to cause
//! locking problems attributable to the fact that all RDBMS have a limit on
//! the supported number of concurrent transactions"*, and §5.4 observes
//! throughput peaking at 6–7 parallel loaders on an 8-CPU server with
//! "escalating occurrences of database locks" beyond that.
//!
//! Two mechanisms reproduce this:
//!
//! * [`TxnManager`] enforces an engine-wide cap on simultaneously active
//!   transactions — beginning a transaction past the cap blocks.
//! * [`LockManager`] gives each table a bounded set of **insert slots**
//!   (Oracle's interested-transaction-list, ITL, in spirit). A batch insert
//!   must hold a slot for its duration; when all slots are taken the caller
//!   blocks *and* is charged a lock-wait penalty modeling the server-side
//!   lock-manager work and process wakeup latency that make contention
//!   worse than mere queueing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use skyobs::{CounterHandle, Registry};
use skysim::cpu::Semaphore;
use skysim::metrics::TimeCharge;
use skysim::time::{TimeScale, Waiter};

use crate::heap::RowId;
use crate::schema::TableId;
use crate::wal::TxnId;

/// An undo entry: enough to reverse one write.
#[derive(Debug, Clone)]
pub enum UndoOp {
    /// Reverse an insert: remove the row at this heap location.
    Insert {
        /// Table the row went into.
        table: TableId,
        /// Heap location of the row.
        row_id: RowId,
    },
    /// Reverse a delete: re-insert the saved row.
    Delete {
        /// Table the row was deleted from.
        table: TableId,
        /// The full row as it was before deletion.
        row: crate::value::Row,
    },
}

#[derive(Debug, Default)]
struct TxnTable {
    active: std::collections::HashMap<TxnId, Vec<UndoOp>>,
}

/// Engine-wide transaction bookkeeping with a concurrency cap.
#[derive(Debug)]
pub struct TxnManager {
    next: AtomicU64,
    max_concurrent: usize,
    state: Mutex<TxnTable>,
    slot_free: Condvar,
    begins: CounterHandle,
    limit_stalls: CounterHandle,
}

impl TxnManager {
    /// A manager admitting at most `max_concurrent` simultaneous
    /// transactions. Counters are registered in `obs` under `txn.*`.
    pub fn new(max_concurrent: usize, obs: &Registry) -> Self {
        assert!(max_concurrent > 0, "need at least one transaction slot");
        TxnManager {
            next: AtomicU64::new(1),
            max_concurrent,
            state: Mutex::new(TxnTable::default()),
            slot_free: Condvar::new(),
            begins: obs.counter("txn.begins"),
            limit_stalls: obs.counter("txn.limit_stalls"),
        }
    }

    /// Begin a transaction, blocking while the engine is at its limit.
    pub fn begin(&self) -> TxnId {
        let mut st = self.state.lock();
        if st.active.len() >= self.max_concurrent {
            self.limit_stalls.inc();
            while st.active.len() >= self.max_concurrent {
                self.slot_free.wait(&mut st);
            }
        }
        let id = TxnId(self.next.fetch_add(1, Ordering::Relaxed));
        st.active.insert(id, Vec::new());
        self.begins.inc();
        id
    }

    /// Record an undo entry for `txn`. No-op if the transaction is unknown
    /// (already ended) — callers treat that as a logic error in tests.
    pub fn push_undo(&self, txn: TxnId, undo: UndoOp) {
        let mut st = self.state.lock();
        if let Some(list) = st.active.get_mut(&txn) {
            list.push(undo);
        }
    }

    /// Drain `txn`'s undo log while leaving the transaction registered as
    /// active. Rollback uses this so the rows being reversed stay invisible
    /// to committed-read queries (whose hidden set is derived from *active*
    /// transactions' undo logs) until they are physically removed; only
    /// then does [`TxnManager::end`] release the slot.
    pub fn take_undo(&self, txn: TxnId) -> Vec<UndoOp> {
        let mut st = self.state.lock();
        st.active
            .get_mut(&txn)
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// A copy of `txn`'s undo log, leaving the log itself in place.
    /// Rollback reverses from this copy so that, for the whole physical
    /// reversal, the rows stay both hidden from committed reads *and*
    /// attributed to their owner by [`TxnManager::insert_owner`] — a
    /// concurrent same-key insert must keep seeing a write conflict (not a
    /// phantom duplicate) right up until the entries are gone.
    pub fn snapshot_undo(&self, txn: TxnId) -> Vec<UndoOp> {
        let st = self.state.lock();
        st.active.get(&txn).cloned().unwrap_or_default()
    }

    /// Packed heap locations of rows inserted by still-active transactions
    /// into `table` — the set a read-committed query must not observe.
    pub fn uncommitted_inserts(&self, table: TableId) -> std::collections::HashSet<u64> {
        let st = self.state.lock();
        let mut hidden = std::collections::HashSet::new();
        for undo in st.active.values() {
            for op in undo {
                if let UndoOp::Insert { table: t, row_id } = op {
                    if *t == table {
                        hidden.insert(row_id.packed());
                    }
                }
            }
        }
        hidden
    }

    /// The still-active transaction that staged the row at `payload`
    /// (packed heap location) into `table`, if any. This is how the insert
    /// path tells a *provisional* key collision — the owner may yet roll
    /// back — from a collision with committed data.
    pub fn insert_owner(&self, table: TableId, payload: u64) -> Option<TxnId> {
        let st = self.state.lock();
        for (id, undo) in &st.active {
            for op in undo {
                if let UndoOp::Insert { table: t, row_id } = op {
                    if *t == table && row_id.packed() == payload {
                        return Some(*id);
                    }
                }
            }
        }
        None
    }

    /// End `txn` (commit or rollback), returning its undo log.
    pub fn end(&self, txn: TxnId) -> Vec<UndoOp> {
        let mut st = self.state.lock();
        let undo = st.active.remove(&txn).unwrap_or_default();
        drop(st);
        self.slot_free.notify_one();
        undo
    }

    /// `true` if `txn` is still active.
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.state.lock().active.contains_key(&txn)
    }

    /// Currently active transactions.
    pub fn active_count(&self) -> usize {
        self.state.lock().active.len()
    }

    /// Transactions begun.
    pub fn begins(&self) -> u64 {
        self.begins.get()
    }

    /// Times `begin` blocked on the concurrency limit.
    pub fn limit_stalls(&self) -> u64 {
        self.limit_stalls.get()
    }
}

/// Per-table insert-slot locks with wait penalties.
#[derive(Debug)]
pub struct LockManager {
    tables: Vec<TableLock>,
    wait_penalty: Duration,
    waiter: Waiter,
    waits: CounterHandle,
    wait_time: TimeCharge,
}

#[derive(Debug)]
struct TableLock {
    slots: Semaphore,
}

/// RAII guard for one table insert slot.
pub struct SlotGuard<'a> {
    lock: &'a TableLock,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.lock.slots.release();
    }
}

impl LockManager {
    /// A manager for `n_tables` tables, each with `slots_per_table` insert
    /// slots; blocked acquisitions are charged `wait_penalty`. The wait
    /// counter is registered in `obs` as `lock.waits`.
    pub fn new(
        n_tables: usize,
        slots_per_table: usize,
        wait_penalty: Duration,
        scale: TimeScale,
        obs: &Registry,
    ) -> Self {
        assert!(slots_per_table > 0, "tables need at least one insert slot");
        LockManager {
            tables: (0..n_tables)
                .map(|_| TableLock {
                    slots: Semaphore::new(slots_per_table),
                })
                .collect(),
            wait_penalty,
            waiter: Waiter::new(scale),
            waits: obs.counter("lock.waits"),
            wait_time: TimeCharge::new(),
        }
    }

    /// Grow to cover newly created tables.
    pub fn ensure_tables(&mut self, n_tables: usize, slots_per_table: usize) {
        while self.tables.len() < n_tables {
            self.tables.push(TableLock {
                slots: Semaphore::new(slots_per_table),
            });
        }
    }

    /// Acquire an insert slot on `table`, blocking if all slots are held.
    ///
    /// A *contended* acquisition pays the wait penalty **while holding the
    /// slot**: the lock-manager bookkeeping, enqueue/dequeue and process
    /// wakeup are server-side work that extends the effective hold time.
    /// This is the degradation feedback §5.4 observes — past the slot
    /// capacity, adding loaders makes every loader slower, so aggregate
    /// throughput *declines* rather than merely flattening.
    pub fn acquire_insert_slot(&self, table: TableId) -> SlotGuard<'_> {
        let lock = &self.tables[table.index()];
        if lock.slots.try_acquire() {
            return SlotGuard { lock };
        }
        self.waits.inc();
        lock.slots.acquire();
        self.wait_time.charge(self.wait_penalty);
        self.waiter.wait(self.wait_penalty);
        SlotGuard { lock }
    }

    /// Lock waits observed.
    pub fn waits(&self) -> u64 {
        self.waits.get()
    }

    /// Total modeled lock-wait penalty time.
    pub fn wait_time(&self) -> Duration {
        self.wait_time.duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn begin_end_roundtrip() {
        let tm = TxnManager::new(4, &Registry::new());
        let t1 = tm.begin();
        let t2 = tm.begin();
        assert_ne!(t1, t2);
        assert!(tm.is_active(t1));
        assert_eq!(tm.active_count(), 2);
        tm.push_undo(
            t1,
            UndoOp::Insert {
                table: TableId(0),
                row_id: RowId::new(0, 0),
            },
        );
        let undo = tm.end(t1);
        assert_eq!(undo.len(), 1);
        assert!(!tm.is_active(t1));
        assert!(tm.end(t1).is_empty(), "double end is harmless");
    }

    #[test]
    fn concurrency_limit_blocks_and_releases() {
        let tm = Arc::new(TxnManager::new(2, &Registry::new()));
        let a = tm.begin();
        let _b = tm.begin();
        let tm2 = tm.clone();
        let h = thread::spawn(move || {
            let c = tm2.begin(); // blocks until a slot frees
            tm2.end(c);
        });
        thread::sleep(Duration::from_millis(20));
        assert!(!h.is_finished(), "third begin should be blocked");
        tm.end(a);
        h.join().unwrap();
        assert_eq!(tm.limit_stalls(), 1);
    }

    #[test]
    fn uncommitted_inserts_tracks_active_txns_only() {
        let tm = TxnManager::new(4, &Registry::new());
        let t1 = tm.begin();
        let t2 = tm.begin();
        tm.push_undo(
            t1,
            UndoOp::Insert {
                table: TableId(0),
                row_id: RowId::new(1, 2),
            },
        );
        tm.push_undo(
            t2,
            UndoOp::Insert {
                table: TableId(0),
                row_id: RowId::new(3, 4),
            },
        );
        tm.push_undo(
            t2,
            UndoOp::Insert {
                table: TableId(1),
                row_id: RowId::new(5, 6),
            },
        );
        let hidden0 = tm.uncommitted_inserts(TableId(0));
        assert_eq!(hidden0.len(), 2);
        assert!(hidden0.contains(&RowId::new(1, 2).packed()));
        assert_eq!(tm.uncommitted_inserts(TableId(1)).len(), 1);
        tm.end(t1);
        assert_eq!(tm.uncommitted_inserts(TableId(0)).len(), 1);
    }

    #[test]
    fn take_undo_keeps_txn_active() {
        let tm = TxnManager::new(4, &Registry::new());
        let t = tm.begin();
        tm.push_undo(
            t,
            UndoOp::Insert {
                table: TableId(0),
                row_id: RowId::new(0, 0),
            },
        );
        let undo = tm.take_undo(t);
        assert_eq!(undo.len(), 1);
        assert!(tm.is_active(t), "take_undo must not release the slot");
        assert!(tm.end(t).is_empty(), "undo already drained");
    }

    #[test]
    fn undo_after_end_is_dropped() {
        let tm = TxnManager::new(2, &Registry::new());
        let t = tm.begin();
        tm.end(t);
        tm.push_undo(
            t,
            UndoOp::Insert {
                table: TableId(0),
                row_id: RowId::new(0, 0),
            },
        );
        assert!(tm.end(t).is_empty());
    }

    #[test]
    fn lock_slots_limit_concurrent_holders() {
        let lm = Arc::new(LockManager::new(
            1,
            2,
            Duration::from_micros(100),
            TimeScale::ZERO,
            &Registry::new(),
        ));
        let live = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        thread::scope(|s| {
            for _ in 0..6 {
                let (lm, live, peak) = (lm.clone(), live.clone(), peak.clone());
                s.spawn(move || {
                    let _g = lm.acquire_insert_slot(TableId(0));
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_millis(3));
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
        assert!(lm.waits() > 0);
        assert!(lm.wait_time() >= Duration::from_micros(100));
    }

    #[test]
    fn uncontended_slot_has_no_penalty() {
        let lm = LockManager::new(
            2,
            4,
            Duration::from_millis(10),
            TimeScale::ZERO,
            &Registry::new(),
        );
        {
            let _g = lm.acquire_insert_slot(TableId(1));
        }
        assert_eq!(lm.waits(), 0);
        assert_eq!(lm.wait_time(), Duration::ZERO);
    }

    #[test]
    fn ensure_tables_grows() {
        let mut lm = LockManager::new(1, 1, Duration::ZERO, TimeScale::ZERO, &Registry::new());
        lm.ensure_tables(5, 1);
        let _g = lm.acquire_insert_slot(TableId(4));
    }
}
