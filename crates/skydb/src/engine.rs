//! The relational engine: DDL, constrained inserts, transactions, queries.
//!
//! This is the substrate standing in for Oracle 10g. The insert path does
//! everything the paper's loading measurements depend on:
//!
//! 1. arity + type + NOT NULL validation ("stringent data checking is
//!    performed by the database to guard against hidden corruption", §4.3),
//! 2. CHECK constraint evaluation,
//! 3. foreign-key lookups against parent primary keys,
//! 4. heap append into 8 KiB pages through the block cache,
//! 5. primary-key / unique / secondary B+-tree maintenance,
//! 6. redo logging, with synchronous log flush on commit.
//!
//! Batch application has **JDBC semantics** (§4.3: "when an error is
//! encountered during a bulk load, the remaining data in the batch is
//! ignored"): rows are applied in order; the first failure stops the batch;
//! rows before the failure stay applied; the failing offset is reported.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use skysim::disk::{Access, DiskFarm, StorageRole};
use skysim::time::TimeScale;

use crate::btree::{order_for_key_width, BPlusTree, Payload};
use crate::cache::BufferPool;
use crate::config::DbConfig;
use crate::error::{ConstraintKind, DbError, DbResult};
use crate::expr::Expr;
use crate::heap::{RowId, TableHeap};
use crate::schema::{Catalog, TableId, TableSchema};
use crate::stats::EngineStats;
use crate::txn::{LockManager, TxnManager, UndoOp};
use crate::value::{decode_row, encode_row, Key, Row, Value};
use crate::wal::{recover_checked, LogRecord, TxnId, Wal};
use skysim::rng::SplitMix64;

/// A named secondary index on a table.
#[derive(Debug)]
struct SecondaryIndex {
    name: String,
    columns: Vec<usize>,
    unique: bool,
    tree: BPlusTree,
}

/// Runtime state of one table.
#[derive(Debug)]
struct TableState {
    /// The table's schema snapshot. Behind a lock because a shadow→live
    /// swap ([`Engine::swap_tables`]) rebinds names and rewrites FK parent
    /// references in place; readers clone the `Arc` once per operation so
    /// each insert/delete sees one consistent schema.
    schema: RwLock<Arc<TableSchema>>,
    heap: Mutex<TableHeap>,
    /// Unique index enforcing the primary key.
    pk: RwLock<BPlusTree>,
    /// One unique tree per declared UNIQUE constraint.
    uniques: Vec<RwLock<BPlusTree>>,
    /// Attribute indexes, created/dropped dynamically (§4.5.1).
    secondaries: RwLock<Vec<SecondaryIndex>>,
}

impl TableState {
    /// The current schema snapshot (one cheap `Arc` clone).
    fn schema(&self) -> Arc<TableSchema> {
        self.schema.read().clone()
    }
}

/// Result of applying a batch of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Rows applied (the prefix before any error).
    pub applied: usize,
    /// The failing offset and error, if the batch stopped early.
    pub failed: Option<(usize, DbError)>,
}

impl BatchOutcome {
    /// `true` if every row applied.
    pub fn is_complete(&self) -> bool {
        self.failed.is_none()
    }
}

/// Result of a read-committed query: the visible rows plus how many heap
/// candidates the executor examined — the serving tier charges per-row
/// scan CPU ([`DbConfig::scan_row_cpu`]) for exactly that count.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Rows visible at read-committed isolation.
    pub rows: Vec<Row>,
    /// Heap rows examined to produce them (pre-filter candidate count).
    pub examined: u64,
}

/// The database engine.
pub struct Engine {
    cfg: DbConfig,
    catalog: RwLock<Catalog>,
    tables: RwLock<Vec<Arc<TableState>>>,
    cache: BufferPool,
    wal: Wal,
    txns: TxnManager,
    locks: RwLock<LockManager>,
    farm: DiskFarm,
    stats: EngineStats,
    /// The observability registry backing [`EngineStats`] and the cache /
    /// WAL / txn counters. The server attaches itself to the same registry
    /// by default, so one snapshot covers the whole stack.
    obs: Arc<skyobs::Registry>,
    dirty_events: AtomicUsize,
    /// Waits out modeled per-row SQL-layer service *while the table insert
    /// slot is held*, so lock contention sees realistic hold times.
    service_waiter: skysim::time::Waiter,
    row_service: skysim::metrics::TimeCharge,
}

impl Engine {
    /// A fresh engine with the given configuration and its own private
    /// observability registry.
    pub fn new(cfg: DbConfig) -> Self {
        Engine::with_obs(cfg, Arc::new(skyobs::Registry::new()))
    }

    /// A fresh engine registering its counters in the given registry —
    /// used when a coordinator wants one registry spanning several engine
    /// generations (chaos recovery) or the whole loader stack.
    pub fn with_obs(cfg: DbConfig, obs: Arc<skyobs::Registry>) -> Self {
        let farm = if cfg.separate_devices {
            DiskFarm::separated(cfg.disk, cfg.scale)
        } else {
            DiskFarm::shared(cfg.disk, cfg.scale)
        };
        Engine {
            cache: BufferPool::new(cfg.cache_pages, cfg.per_frame_scan, cfg.scale, &obs),
            wal: Wal::new(cfg.log_buffer_bytes, &obs),
            txns: TxnManager::new(cfg.max_concurrent_txns, &obs),
            locks: RwLock::new(LockManager::new(
                0,
                cfg.table_insert_slots,
                cfg.lock_wait_penalty,
                cfg.scale,
                &obs,
            )),
            farm,
            stats: EngineStats::new(&obs),
            obs,
            dirty_events: AtomicUsize::new(0),
            service_waiter: skysim::time::Waiter::new(cfg.scale),
            row_service: skysim::metrics::TimeCharge::new(),
            catalog: RwLock::new(Catalog::new()),
            tables: RwLock::new(Vec::new()),
            cfg,
        }
    }

    /// A test engine (no modeled costs, generous limits).
    pub fn for_tests() -> Self {
        Engine::new(DbConfig::test())
    }

    /// The observability registry this engine's counters live in.
    pub fn obs(&self) -> &Arc<skyobs::Registry> {
        &self.obs
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &DbConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------ DDL

    /// Create a table. Parent tables of its foreign keys must exist.
    pub fn create_table(&self, schema: TableSchema) -> DbResult<TableId> {
        // Lock order must match the insert path, which holds the lock
        // manager (insert slot) and then touches the catalog (FK targets)
        // and table state: locks → catalog → tables. Acquiring them in
        // the opposite order deadlocks a concurrent DDL — e.g. a serving
        // tier materializing a MyDB result table — against a running
        // batch insert.
        let mut locks = self.locks.write();
        let mut catalog = self.catalog.write();
        let id = catalog.add_table(schema)?;
        let schema = Arc::new(catalog.table(id).clone());
        let pk_width: usize = schema
            .primary_key
            .iter()
            .map(|&c| schema.columns[c].dtype.width_hint() + 1)
            .sum();
        let uniques = schema
            .uniques
            .iter()
            .map(|u| {
                let w: usize = u
                    .columns
                    .iter()
                    .map(|&c| schema.columns[c].dtype.width_hint() + 1)
                    .sum();
                RwLock::new(BPlusTree::with_key_width(true, w))
            })
            .collect();
        let state = Arc::new(TableState {
            heap: Mutex::new(TableHeap::new(id)),
            pk: RwLock::new(BPlusTree::with_key_width(true, pk_width)),
            uniques,
            secondaries: RwLock::new(Vec::new()),
            schema: RwLock::new(schema),
        });
        let mut tables = self.tables.write();
        tables.push(state);
        locks.ensure_tables(tables.len(), self.cfg.table_insert_slots);
        Ok(id)
    }

    /// Look up a table id by name.
    pub fn table_id(&self, name: &str) -> DbResult<TableId> {
        self.catalog
            .read()
            .table_id(name)
            .ok_or_else(|| DbError::NoSuchTable(name.into()))
    }

    /// The schema of `table`.
    pub fn schema(&self, table: TableId) -> Arc<TableSchema> {
        self.tables.read()[table.index()].schema()
    }

    /// All table ids in parent-before-child order.
    pub fn tables_topological(&self) -> Vec<TableId> {
        self.catalog.read().topological_order()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.read().len()
    }

    fn state(&self, table: TableId) -> Arc<TableState> {
        self.tables.read()[table.index()].clone()
    }

    /// Create a secondary index over the named columns, bulk-building it
    /// from existing rows (this is the §4.5.1 "rebuild after the catch-up
    /// phase" path).
    pub fn create_index(
        &self,
        table: &str,
        index_name: &str,
        columns: &[&str],
        unique: bool,
    ) -> DbResult<()> {
        let tid = self.table_id(table)?;
        let ts = self.state(tid);
        let schema = ts.schema();
        let cols: Vec<usize> = columns
            .iter()
            .map(|c| {
                schema.column_index(c).ok_or_else(|| DbError::NoSuchColumn {
                    table: table.into(),
                    column: (*c).into(),
                })
            })
            .collect::<DbResult<_>>()?;
        {
            let secs = ts.secondaries.read();
            if secs.iter().any(|s| s.name == index_name) {
                return Err(DbError::AlreadyExists(index_name.into()));
            }
        }
        // Build sorted entries from the current heap contents.
        let mut entries: Vec<(Key, u64)> = Vec::new();
        {
            let heap = ts.heap.lock();
            for (rid, bytes) in heap.scan() {
                let mut slice = bytes;
                let row = decode_row(&mut slice)?;
                entries.push((Key::project(&row, &cols), rid.packed()));
            }
        }
        entries.sort();
        if unique {
            for w in entries.windows(2) {
                if w[0].0 == w[1].0 && !w[0].0.has_null() {
                    return Err(DbError::constraint(
                        ConstraintKind::Unique,
                        index_name,
                        table,
                        format!("duplicate key {} while building unique index", w[0].0),
                    ));
                }
            }
        }
        let width: usize = cols
            .iter()
            .map(|&c| schema.columns[c].dtype.width_hint() + 1)
            .sum();
        let mut tree = BPlusTree::bulk_build(unique, order_for_key_width(width), entries);
        // Building writes every node once, sequentially.
        let built = tree.take_dirty() as u64;
        if built > 0 {
            self.farm
                .device(StorageRole::Index)
                .write_run(built, Access::Sequential);
        }
        ts.secondaries.write().push(SecondaryIndex {
            name: index_name.into(),
            columns: cols,
            unique,
            tree,
        });
        Ok(())
    }

    /// Drop a secondary index (the §4.5.1 load-phase optimization).
    pub fn drop_index(&self, table: &str, index_name: &str) -> DbResult<()> {
        let tid = self.table_id(table)?;
        let ts = self.state(tid);
        let mut secs = ts.secondaries.write();
        let pos = secs
            .iter()
            .position(|s| s.name == index_name)
            .ok_or_else(|| DbError::NoSuchIndex(index_name.into()))?;
        secs.remove(pos);
        Ok(())
    }

    /// Atomically swap table **name bindings** pairwise — the shadow→live
    /// promotion of a reprocessing campaign. For each `(live, shadow)` pair
    /// the physical table currently answering to `live` is demoted to the
    /// `shadow` name and vice versa; every FK reference crossing the pair
    /// set is rewritten so the FK graph over physical table ids never
    /// changes (see [`Catalog::swap_names`]).
    ///
    /// Holds the lock manager and catalog write locks in the same order as
    /// `create_table` (locks → catalog → tables), so the rebind is atomic
    /// against concurrent inserts and queries: any reader resolving a name
    /// sees the full old binding or the full new binding, never a mix.
    /// Physical state (heaps, B+-trees, the WAL, which replays by table id)
    /// is untouched, which is what makes the swap O(pairs) and crash-safe:
    /// a recovered engine replays rows into the same ids and the campaign
    /// manifest decides whether to re-apply the rebind.
    ///
    /// Returns the `(live_id, shadow_id)` pairs as bound before the swap.
    pub fn swap_tables(&self, pairs: &[(String, String)]) -> DbResult<Vec<(TableId, TableId)>> {
        let _locks = self.locks.write();
        let mut catalog = self.catalog.write();
        let ids = catalog.swap_names(pairs)?;
        // Refresh every cached schema snapshot: the swapped tables changed
        // name, and any table whose FK parents were swapped had its
        // parent_table strings rewritten.
        let tables = self.tables.read();
        for (id, schema) in catalog.iter() {
            *tables[id.index()].schema.write() = Arc::new(schema.clone());
        }
        self.stats.table_swaps.inc();
        Ok(ids)
    }

    /// Names of the secondary indexes on `table`.
    pub fn index_names(&self, table: &str) -> DbResult<Vec<String>> {
        let tid = self.table_id(table)?;
        let ts = self.state(tid);
        let secs = ts.secondaries.read();
        Ok(secs.iter().map(|s| s.name.clone()).collect())
    }

    /// Metadata of one secondary index: `(column positions, unique)`.
    pub fn index_info(&self, table: &str, index_name: &str) -> DbResult<(Vec<usize>, bool)> {
        let tid = self.table_id(table)?;
        let ts = self.state(tid);
        let secs = ts.secondaries.read();
        secs.iter()
            .find(|s| s.name == index_name)
            .map(|s| (s.columns.clone(), s.unique))
            .ok_or_else(|| DbError::NoSuchIndex(index_name.into()))
    }

    // ----------------------------------------------------------------- txns

    /// Begin a transaction (blocks at the engine's concurrency limit).
    pub fn begin(&self) -> TxnId {
        let txn = self.txns.begin();
        self.wal
            .append(&LogRecord::Begin(txn), self.farm.device(StorageRole::Log));
        txn
    }

    /// Commit: synchronous log flush + commit processing cost.
    pub fn commit(&self, txn: TxnId) -> DbResult<()> {
        if !self.txns.is_active(txn) {
            return Err(DbError::NoTransaction);
        }
        let log_dev = self.farm.device(StorageRole::Log);
        self.wal.append(&LogRecord::Commit(txn), log_dev);
        self.wal.flush_sync(log_dev);
        self.txns.end(txn);
        self.stats.commits.inc();
        Ok(())
    }

    /// Fault injection: a crash in the middle of the commit's log flush.
    ///
    /// The commit record is appended, but the flush tears `torn_tail` bytes
    /// short of durability — on a torn tail inside the commit record the
    /// transaction is *not* durably committed and a redo scan drops all its
    /// work. The transaction is deliberately left open (the crashed server
    /// never answered), so engine-side state matches what a power cut at
    /// this instant would leave: recovery must come from [`Engine::
    /// recover_from_log`] on [`Engine::durable_log`].
    pub fn simulate_torn_commit_flush(&self, txn: TxnId, torn_tail: usize) -> DbResult<()> {
        if !self.txns.is_active(txn) {
            return Err(DbError::NoTransaction);
        }
        let log_dev = self.farm.device(StorageRole::Log);
        self.wal.append(&LogRecord::Commit(txn), log_dev);
        self.wal.flush_torn(log_dev, torn_tail);
        Ok(())
    }

    /// Roll back: reverse every write of the transaction.
    pub fn rollback(&self, txn: TxnId) -> DbResult<()> {
        if !self.txns.is_active(txn) {
            return Err(DbError::NoTransaction);
        }
        // Reverse from a *copy* of the undo log, keeping the log itself in
        // place until the transaction ends: committed-read queries hide
        // exactly the rows recorded in *active* transactions' undo logs,
        // and the insert path attributes staged index entries to their
        // owner through the same records. Draining the log first would
        // open a window where a half-reversed row is neither hidden nor
        // attributed — a concurrent same-key insert would misread the
        // doomed entry as a committed duplicate and skip a row that is
        // about to vanish.
        let undo = self.txns.snapshot_undo(txn);
        for op in undo.into_iter().rev() {
            match op {
                UndoOp::Insert { table, row_id } => {
                    self.remove_row_physical(table, row_id);
                }
                UndoOp::Delete { table, row } => {
                    // The original insert is still committed in the log;
                    // undoing the (never-committed) delete is in-memory only.
                    self.reinsert_unlogged(table, &row);
                }
            }
        }
        self.txns.end(txn);
        self.wal.append(
            &LogRecord::Rollback(txn),
            self.farm.device(StorageRole::Log),
        );
        self.stats.rollbacks.inc();
        Ok(())
    }

    /// Remove a row from heap + all indexes, returning it if it existed.
    fn remove_row_physical(&self, table: TableId, row_id: RowId) -> Option<Row> {
        let ts = self.state(table);
        let row = {
            let mut heap = ts.heap.lock();
            let bytes = heap.get(row_id).map(<[u8]>::to_vec)?;
            heap.delete(row_id);
            let mut slice = bytes.as_slice();
            decode_row(&mut slice).ok()?
        };
        let payload = row_id.packed();
        let schema = ts.schema();
        ts.pk
            .write()
            .remove(&Key::project(&row, &schema.primary_key), payload);
        for (u, udef) in ts.uniques.iter().zip(schema.uniques.iter()) {
            u.write()
                .remove(&Key::project(&row, &udef.columns), payload);
        }
        let mut secs = ts.secondaries.write();
        for s in secs.iter_mut() {
            s.tree.remove(&Key::project(&row, &s.columns), payload);
        }
        Some(row)
    }

    /// Physically re-insert a previously deleted row (rollback of a delete;
    /// bypasses constraint checks and the WAL — the row was valid before).
    fn reinsert_unlogged(&self, table: TableId, row: &[Value]) {
        let ts = self.state(table);
        let mut encoded = bytes::BytesMut::with_capacity(64);
        encode_row(row, &mut encoded);
        let rid = {
            let mut heap = ts.heap.lock();
            heap.insert(encoded.to_vec().into_boxed_slice()).row_id
        };
        self.cache
            .note_write((table, rid.page()), self.farm.device(StorageRole::Data));
        let payload = rid.packed();
        let schema = ts.schema();
        ts.pk
            .write()
            .insert(Key::project(row, &schema.primary_key), payload)
            .expect("reinserted PK was unique before the delete");
        for (u, udef) in ts.uniques.iter().zip(schema.uniques.iter()) {
            u.write()
                .insert(Key::project(row, &udef.columns), payload)
                .expect("reinserted unique key was unique before the delete");
        }
        let mut secs = ts.secondaries.write();
        for s in secs.iter_mut() {
            let _ = s.tree.insert(Key::project(row, &s.columns), payload);
        }
    }

    // --------------------------------------------------------------- delete

    /// Delete every row of `table` matching `filter` (all rows if `None`),
    /// under `txn`, enforcing **RESTRICT** semantics: if any other table
    /// holds a foreign-key reference to a row being deleted, the statement
    /// fails atomically with a foreign-key violation.
    ///
    /// Returns the number of rows deleted. Used for pipeline reprocessing
    /// (delete a night's derived rows, re-extract, reload).
    ///
    /// Deletes are maintenance operations: the RESTRICT check and the
    /// physical deletes are not atomic against *concurrent* inserts into
    /// child tables, so run them while no loaders are writing the affected
    /// tables (as production reprocessing does).
    pub fn delete_where(&self, txn: TxnId, table: TableId, filter: Option<&Expr>) -> DbResult<u64> {
        self.delete_matching(txn, table, &mut |row| {
            Ok(match filter {
                Some(f) => f.eval_truth(row)?.selects(),
                None => true,
            })
        })
    }

    /// Delete every row whose primary key is in `keys` (set-based fast path
    /// for bulk purges: O(rows · log keys) instead of a filter-expression
    /// scan). Same RESTRICT semantics and concurrency contract as
    /// [`Engine::delete_where`].
    pub fn delete_by_pks(
        &self,
        txn: TxnId,
        table: TableId,
        keys: &std::collections::BTreeSet<Key>,
    ) -> DbResult<u64> {
        if keys.is_empty() {
            return Ok(0);
        }
        let pk_cols = self.schema(table).primary_key.clone();
        self.delete_matching(txn, table, &mut |row| {
            Ok(keys.contains(&Key::project(row, &pk_cols)))
        })
    }

    fn delete_matching(
        &self,
        txn: TxnId,
        table: TableId,
        matches: &mut dyn FnMut(&Row) -> DbResult<bool>,
    ) -> DbResult<u64> {
        let ts = self.state(table);
        // 1. Collect victims.
        let mut victims: Vec<(RowId, Row)> = Vec::new();
        {
            let heap = ts.heap.lock();
            for (rid, bytes) in heap.scan() {
                let mut slice = bytes;
                let row = decode_row(&mut slice)?;
                if matches(&row)? {
                    victims.push((rid, row));
                }
            }
        }
        if victims.is_empty() {
            return Ok(0);
        }
        // 2. RESTRICT: no child row may reference a victim.
        let schema = ts.schema();
        let victim_keys: std::collections::BTreeSet<Key> = victims
            .iter()
            .map(|(_, row)| Key::project(row, &schema.primary_key))
            .collect();
        let table_name = schema.name.clone();
        let catalog = self.catalog.read();
        let children: Vec<(TableId, String, Vec<usize>)> = catalog
            .iter()
            .flat_map(|(child_id, child)| {
                child
                    .foreign_keys
                    .iter()
                    .filter(|fk| fk.parent_table == table_name)
                    .map(move |fk| (child_id, fk.name.clone(), fk.columns.clone()))
            })
            .collect();
        drop(catalog);
        for (child_id, fk_name, fk_cols) in children {
            let child_ts = self.state(child_id);
            let heap = child_ts.heap.lock();
            for (_, bytes) in heap.scan() {
                let mut slice = bytes;
                let child_row = decode_row(&mut slice)?;
                let key = Key::project(&child_row, &fk_cols);
                if !key.has_null() && victim_keys.contains(&key) {
                    self.stats.fk_violations.inc();
                    return Err(DbError::constraint(
                        ConstraintKind::ForeignKey,
                        fk_name,
                        &child_ts.schema().name,
                        format!("child row references {table_name} key {key} being deleted"),
                    ));
                }
            }
        }
        // 3. Delete, log, and record undo.
        let log_dev = self.farm.device(StorageRole::Log);
        let n = victims.len() as u64;
        for (rid, row) in victims {
            let removed = self.remove_row_physical(table, rid);
            debug_assert!(removed.is_some(), "victim vanished mid-delete");
            let pk_values = Key::project(&row, &schema.primary_key).0;
            let mut pk_bytes = bytes::BytesMut::with_capacity(32);
            encode_row(&pk_values, &mut pk_bytes);
            self.wal.append(
                &LogRecord::Delete {
                    txn,
                    table,
                    pk: pk_bytes.to_vec().into_boxed_slice(),
                },
                log_dev,
            );
            self.txns.push_undo(txn, UndoOp::Delete { table, row });
            self.stats.rows_deleted.inc();
        }
        Ok(n)
    }

    /// Delete one row by primary key (recovery redo path; no WAL, no undo).
    fn delete_by_pk_unlogged(&self, table: TableId, key: &Key) -> bool {
        let ts = self.state(table);
        let Some(payload) = ts.pk.read().get_first(key) else {
            return false;
        };
        self.remove_row_physical(table, RowId::from_packed(payload))
            .is_some()
    }

    // --------------------------------------------------------------- insert

    /// Classify a key collision: if the entry already holding the key was
    /// staged by *another still-active* transaction, whether it is a real
    /// duplicate is unknowable until that transaction resolves — commit
    /// makes it a duplicate, rollback makes the key free. Reporting it as
    /// a constraint violation would let a bulk loader "skip the duplicate"
    /// and lose the row forever if the owner then rolls back (the lease
    /// takeover race: a new holder reloads lines whose rows a fenced
    /// zombie has staged but will never commit). Instead return a
    /// retryable [`DbError::WriteConflict`] — the analogue of a row-lock
    /// wait in a disk RDBMS. Collisions with committed rows (or with the
    /// inserting transaction itself) return `None` and keep their
    /// constraint-violation semantics.
    fn staged_collision(
        &self,
        table: TableId,
        txn: TxnId,
        incumbent: Payload,
        key: &Key,
    ) -> Option<DbError> {
        let owner = self.txns.insert_owner(table, incumbent)?;
        if owner == txn {
            return None;
        }
        self.stats.write_conflicts.inc();
        Some(DbError::WriteConflict(format!(
            "key {key} is staged by in-flight transaction {}; retry once it resolves",
            owner.0
        )))
    }

    /// Validate and insert one row under `txn`. On success returns the
    /// heap location; on failure nothing is left behind.
    pub fn insert_row(&self, txn: TxnId, table: TableId, row: &[Value]) -> DbResult<RowId> {
        let ts = self.state(table);
        let schema = ts.schema();

        // 1. Arity.
        if row.len() != schema.columns.len() {
            self.stats.type_errors.inc();
            self.stats.rows_rejected.inc();
            return Err(DbError::ArityMismatch {
                table: schema.name.clone(),
                expected: schema.columns.len(),
                got: row.len(),
            });
        }
        // 2. Types + NOT NULL (primary-key columns are implicitly NOT NULL).
        for (i, (v, c)) in row.iter().zip(schema.columns.iter()).enumerate() {
            if v.is_null() {
                if !c.nullable || schema.primary_key.contains(&i) {
                    self.stats.not_null_violations.inc();
                    self.stats.rows_rejected.inc();
                    return Err(DbError::constraint(
                        ConstraintKind::NotNull,
                        format!("nn_{}_{}", schema.name, c.name),
                        &schema.name,
                        format!("column {} is NULL", c.name),
                    ));
                }
                continue;
            }
            if let Err(detail) = v.matches_type(c.dtype) {
                self.stats.type_errors.inc();
                self.stats.rows_rejected.inc();
                return Err(DbError::TypeMismatch {
                    table: schema.name.clone(),
                    column: c.name.clone(),
                    detail,
                });
            }
        }
        // 3. CHECK constraints.
        for chk in &schema.checks {
            let passes = chk
                .expr
                .eval_truth(row)
                .map(|t| t.passes_check())
                .unwrap_or(false);
            if !passes {
                self.stats.check_violations.inc();
                self.stats.rows_rejected.inc();
                return Err(DbError::constraint(
                    ConstraintKind::Check,
                    &chk.name,
                    &schema.name,
                    format!("check {} failed", chk.name),
                ));
            }
        }
        // 4. Foreign keys.
        for fk in &schema.foreign_keys {
            let key = Key::project(row, &fk.columns);
            if key.has_null() {
                continue; // SQL: NULL FK components pass
            }
            let parent_id = self
                .catalog
                .read()
                .table_id(&fk.parent_table)
                .expect("catalog validated FK targets");
            let parent = self.state(parent_id);
            let found = parent.pk.read().contains_key(&key);
            if !found {
                self.stats.fk_violations.inc();
                self.stats.rows_rejected.inc();
                return Err(DbError::constraint(
                    ConstraintKind::ForeignKey,
                    &fk.name,
                    &schema.name,
                    format!("no parent row {} in {}", key, fk.parent_table),
                ));
            }
        }

        // 5. Heap append.
        let mut encoded = bytes::BytesMut::with_capacity(64);
        encode_row(row, &mut encoded);
        let encoded = encoded.to_vec().into_boxed_slice();
        let heap_insert = {
            let mut heap = ts.heap.lock();
            heap.insert(encoded)
        };
        let rid = heap_insert.row_id;
        let payload = rid.packed();
        self.cache
            .note_write((table, rid.page()), self.farm.device(StorageRole::Data));

        // 6. Primary key.
        let pk_key = Key::project(row, &schema.primary_key);
        {
            let mut pk = ts.pk.write();
            if let Err(dup) = pk.insert(pk_key.clone(), payload) {
                // Classify the collision while still holding the tree
                // lock: removing the incumbent (a rollback) needs this
                // lock too, so the owner lookup is atomic with the
                // collision itself.
                let conflict = self.staged_collision(table, txn, dup.0, &pk_key);
                drop(pk);
                ts.heap.lock().delete(rid);
                if let Some(e) = conflict {
                    return Err(e);
                }
                self.stats.pk_violations.inc();
                self.stats.rows_rejected.inc();
                return Err(DbError::constraint(
                    ConstraintKind::PrimaryKey,
                    format!("pk_{}", schema.name),
                    &schema.name,
                    format!("duplicate key {pk_key}"),
                ));
            }
        }
        let mut entries = 1u64;

        // 7. Unique constraints.
        for (i, (u, udef)) in ts.uniques.iter().zip(schema.uniques.iter()).enumerate() {
            let ukey = Key::project(row, &udef.columns);
            let mut tree = u.write();
            if let Err(dup) = tree.insert(ukey.clone(), payload) {
                // Classified under the tree lock; see the primary key.
                let conflict = self.staged_collision(table, txn, dup.0, &ukey);
                drop(tree);
                // Undo what we did.
                for (v, vdef) in ts.uniques.iter().zip(schema.uniques.iter()).take(i) {
                    v.write().remove(&Key::project(row, &vdef.columns), payload);
                }
                ts.pk.write().remove(&pk_key, payload);
                ts.heap.lock().delete(rid);
                if let Some(e) = conflict {
                    return Err(e);
                }
                self.stats.unique_violations.inc();
                self.stats.rows_rejected.inc();
                return Err(DbError::constraint(
                    ConstraintKind::Unique,
                    &udef.name,
                    &schema.name,
                    format!("duplicate key {ukey}"),
                ));
            }
            drop(tree);
            entries += 1;
        }

        // 8. Secondary indexes (attribute indexes are non-unique in the
        //    repository; unique secondaries reject like uniques).
        {
            let mut secs = ts.secondaries.write();
            let mut failed: Option<(usize, String, Key, Payload)> = None;
            for (i, s) in secs.iter_mut().enumerate() {
                let skey = Key::project(row, &s.columns);
                if let Err(dup) = s.tree.insert(skey.clone(), payload) {
                    failed = Some((i, s.name.clone(), skey, dup.0));
                    break;
                }
                entries += 1;
            }
            if let Some((upto, name, skey, incumbent)) = failed {
                // Classified under the secondaries lock; see the primary key.
                let conflict = self.staged_collision(table, txn, incumbent, &skey);
                for s in secs.iter_mut().take(upto) {
                    s.tree.remove(&Key::project(row, &s.columns), payload);
                }
                drop(secs);
                for (v, vdef) in ts.uniques.iter().zip(schema.uniques.iter()) {
                    v.write().remove(&Key::project(row, &vdef.columns), payload);
                }
                ts.pk.write().remove(&pk_key, payload);
                ts.heap.lock().delete(rid);
                if let Some(e) = conflict {
                    return Err(e);
                }
                self.stats.unique_violations.inc();
                self.stats.rows_rejected.inc();
                return Err(DbError::constraint(
                    ConstraintKind::Unique,
                    &name,
                    &schema.name,
                    format!("duplicate key {skey}"),
                ));
            }
        }
        self.stats.index_entries.add(entries);

        // 9. Redo log + undo list.
        let mut logged = bytes::BytesMut::with_capacity(64);
        encode_row(row, &mut logged);
        self.wal.append(
            &LogRecord::Insert {
                txn,
                table,
                row: logged.to_vec().into_boxed_slice(),
            },
            self.farm.device(StorageRole::Log),
        );
        self.txns
            .push_undo(txn, UndoOp::Insert { table, row_id: rid });

        // 10. Periodic database-writer cycle.
        if heap_insert.new_page {
            let prev = self.dirty_events.fetch_add(1, Ordering::Relaxed) + 1;
            if prev.is_multiple_of(self.cfg.writer_interval_pages) {
                self.writer_cycle();
            }
        }

        self.stats.rows_inserted.inc();
        Ok(rid)
    }

    /// Apply a batch of rows with JDBC semantics, holding one table insert
    /// slot for the duration of the call.
    pub fn apply_batch(&self, txn: TxnId, table: TableId, rows: &[Row]) -> BatchOutcome {
        self.stats.batch_calls.inc();
        let locks = self.locks.read();
        let _slot = locks.acquire_insert_slot(table);
        let mut applied = 0usize;
        let mut outcome = BatchOutcome {
            applied: 0,
            failed: None,
        };
        for (i, row) in rows.iter().enumerate() {
            match self.insert_row(txn, table, row) {
                Ok(_) => applied += 1,
                Err(e) => {
                    outcome.failed = Some((i, e));
                    break;
                }
            }
        }
        outcome.applied = applied;
        // The SQL layer worked on every attempted row (the failing row is
        // detected only after its execution); that service time is paid
        // while the insert slot is held, which is what makes high
        // parallelism contend on hot tables (§4.4).
        let attempted = applied + usize::from(outcome.failed.is_some());
        self.charge_row_service(table, attempted);
        outcome
    }

    /// Apply a single insert (the non-bulk baseline path).
    pub fn apply_single(&self, txn: TxnId, table: TableId, row: &[Value]) -> DbResult<RowId> {
        self.stats.single_calls.inc();
        let locks = self.locks.read();
        let _slot = locks.acquire_insert_slot(table);
        let result = self.insert_row(txn, table, row);
        self.charge_row_service(table, 1);
        result
    }

    /// Charge (and, at nonzero time scale, wait out) the modeled SQL-layer
    /// service for `n` rows on `table`.
    fn charge_row_service(&self, table: TableId, n: usize) {
        if n == 0 {
            return;
        }
        let per_row = self.cfg.per_row_cpu + self.maintenance_cost(table);
        let service = Duration::from_nanos(per_row.as_nanos() as u64 * n as u64);
        self.row_service.charge(service);
        self.service_waiter.wait(service);
    }

    /// Total modeled per-row SQL-layer service time.
    pub fn row_service_time(&self) -> Duration {
        self.row_service.duration()
    }

    /// Run one database-writer cycle (cache scan + dirty flush + index
    /// dirty-node writes).
    pub fn writer_cycle(&self) {
        self.cache.writer_cycle(self.farm.device(StorageRole::Data));
        self.flush_index_dirty();
    }

    fn flush_index_dirty(&self) {
        let tables = self.tables.read();
        let idx_dev = self.farm.device(StorageRole::Index);
        for ts in tables.iter() {
            let mut dirty = ts.pk.write().take_dirty() as u64;
            for u in &ts.uniques {
                dirty += u.write().take_dirty() as u64;
            }
            for s in ts.secondaries.write().iter_mut() {
                dirty += s.tree.take_dirty() as u64;
            }
            if dirty > 0 {
                // Index leaves dirtied by scattered keys land scattered on
                // disk: random access.
                idx_dev.write_run(dirty, Access::Random);
            }
        }
    }

    /// Flush everything (end-of-load checkpoint so runs account all I/O).
    pub fn checkpoint(&self) {
        self.writer_cycle();
        self.wal.flush_sync(self.farm.device(StorageRole::Log));
    }

    // --------------------------------------------------------------- query

    /// Full scan with an optional filter.
    pub fn scan_where(&self, table: TableId, filter: Option<&Expr>) -> DbResult<Vec<Row>> {
        let ts = self.state(table);
        let heap = ts.heap.lock();
        let data_dev = self.farm.device(StorageRole::Data);
        let mut out = Vec::new();
        let mut last_page = u32::MAX;
        for (rid, bytes) in heap.scan_checked() {
            if rid.page() != last_page {
                last_page = rid.page();
                self.stats.scan_pages.inc();
                self.cache.note_read((table, rid.page()), data_dev);
            }
            let bytes = bytes.map_err(|()| self.rotted(&ts, rid))?;
            let mut slice = bytes;
            let row = decode_row(&mut slice)?;
            let keep = match filter {
                Some(f) => f.eval_truth(&row)?.selects(),
                None => true,
            };
            if keep {
                out.push(row);
            }
        }
        Ok(out)
    }

    /// Point lookup by primary key.
    pub fn pk_get(&self, table: TableId, key: &Key) -> DbResult<Option<Row>> {
        let ts = self.state(table);
        let Some(payload) = ts.pk.read().get_first(key) else {
            return Ok(None);
        };
        self.fetch_row(&ts, table, RowId::from_packed(payload))
            .map(Some)
    }

    /// Range scan over a secondary index, returning matching rows in key
    /// order.
    pub fn index_range(
        &self,
        table: &str,
        index_name: &str,
        lo: &Key,
        hi: &Key,
    ) -> DbResult<Vec<Row>> {
        let tid = self.table_id(table)?;
        let ts = self.state(tid);
        let secs = ts.secondaries.read();
        let idx = secs
            .iter()
            .find(|s| s.name == index_name)
            .ok_or_else(|| DbError::NoSuchIndex(index_name.into()))?;
        let hits = idx.tree.range(lo, hi);
        drop(secs);
        hits.into_iter()
            .map(|(_, p)| self.fetch_row(&ts, tid, RowId::from_packed(p)))
            .collect()
    }

    /// The at-rest error for a row whose stored CRC failed. Reads *never*
    /// decode rotted bytes into a served row: better a loud
    /// [`DbError::DataCorruption`] than plausible-looking garbage.
    fn rotted(&self, ts: &TableState, rid: RowId) -> DbError {
        self.stats.rot_detected.inc();
        DbError::DataCorruption(format!(
            "stored row {rid:?} of table {} failed its CRC; scrub and repair required",
            ts.schema().name
        ))
    }

    fn fetch_row(&self, ts: &TableState, table: TableId, rid: RowId) -> DbResult<Row> {
        self.cache
            .note_read((table, rid.page()), self.farm.device(StorageRole::Data));
        let heap = ts.heap.lock();
        let bytes = match heap.get_checked(rid) {
            None => return Err(DbError::Protocol(format!("dangling row id {rid:?}"))),
            Some(Err(())) => return Err(self.rotted(ts, rid)),
            Some(Ok(b)) => b,
        };
        let mut slice = bytes;
        decode_row(&mut slice)
    }

    /// As [`Engine::fetch_row`], but a dangling id — a row removed by a
    /// concurrent rollback between the index read and the heap fetch — is
    /// `None` rather than an error. (A quarantined row is also simply gone:
    /// the scrubber de-indexes before the index probe, or the probe's stale
    /// payload dangles here — either way the reader never sees rot.)
    fn fetch_row_opt(&self, ts: &TableState, table: TableId, rid: RowId) -> DbResult<Option<Row>> {
        self.cache
            .note_read((table, rid.page()), self.farm.device(StorageRole::Data));
        let heap = ts.heap.lock();
        let bytes = match heap.get_checked(rid) {
            None => return Ok(None),
            Some(Err(())) => return Err(self.rotted(ts, rid)),
            Some(Ok(b)) => b,
        };
        let mut slice = bytes;
        decode_row(&mut slice).map(Some)
    }

    // ------------------------------------------------ read-committed query

    /// Full scan at read-committed isolation: rows inserted by still-active
    /// transactions (an in-flight loader flush, a future rollback) are
    /// invisible. This is what the serving tier runs while the nightly bulk
    /// load is in progress.
    pub fn scan_where_committed(
        &self,
        table: TableId,
        filter: Option<&Expr>,
    ) -> DbResult<QueryOutcome> {
        let hidden = self.txns.uncommitted_inserts(table);
        let ts = self.state(table);
        let heap = ts.heap.lock();
        let data_dev = self.farm.device(StorageRole::Data);
        let mut rows = Vec::new();
        let mut examined = 0u64;
        let mut last_page = u32::MAX;
        for (rid, bytes) in heap.scan_checked() {
            if rid.page() != last_page {
                last_page = rid.page();
                self.stats.scan_pages.inc();
                self.cache.note_read((table, rid.page()), data_dev);
            }
            examined += 1;
            if hidden.contains(&rid.packed()) {
                continue;
            }
            let bytes = bytes.map_err(|()| self.rotted(&ts, rid))?;
            let mut slice = bytes;
            let row = decode_row(&mut slice)?;
            let keep = match filter {
                Some(f) => f.eval_truth(&row)?.selects(),
                None => true,
            };
            if keep {
                rows.push(row);
            }
        }
        Ok(QueryOutcome { rows, examined })
    }

    /// Read-committed scan addressed by table *name*, with the name
    /// resolution and the scan inside one catalog read-guard.
    ///
    /// This is the **season pin** behind [`Engine::swap_tables`]'
    /// atomicity promise to readers: `swap_tables` rebinds names under
    /// `catalog.write()`, so holding `catalog.read()` across resolve +
    /// scan means every named scan executes entirely against one
    /// binding generation — it can never resolve the pre-swap season and
    /// read the post-swap (or mid-purge) heap. A two-step client
    /// (`table_id` then [`Engine::scan_where_committed`]) cannot make
    /// that promise.
    pub fn scan_named_committed(
        &self,
        table: &str,
        filter: Option<&Expr>,
    ) -> DbResult<QueryOutcome> {
        let catalog = self.catalog.read();
        let tid = catalog
            .table_id(table)
            .ok_or_else(|| DbError::NoSuchTable(table.into()))?;
        // Scan while the guard is live (heap/tables locks order fine:
        // everything orders after `catalog`, same as `create_table`).
        self.scan_where_committed(tid, filter)
    }

    /// Point lookup by primary key at read-committed isolation.
    pub fn pk_get_committed(&self, table: TableId, key: &Key) -> DbResult<Option<Row>> {
        let ts = self.state(table);
        let Some(payload) = ts.pk.read().get_first(key) else {
            return Ok(None);
        };
        // Hidden set is taken *after* the index probe: an entry that
        // committed in between is visible (read-committed allows it), and
        // one that rolled back either shows up hidden or is already gone
        // from the heap (`fetch_row_opt` tolerates the latter).
        if self.txns.uncommitted_inserts(table).contains(&payload) {
            return Ok(None);
        }
        self.fetch_row_opt(&ts, table, RowId::from_packed(payload))
    }

    /// Range scan over a secondary index at read-committed isolation,
    /// returning visible rows in key order plus the candidate count
    /// examined (the serving tier charges per-row scan CPU for it).
    pub fn index_range_committed(
        &self,
        table: &str,
        index_name: &str,
        lo: &Key,
        hi: &Key,
    ) -> DbResult<QueryOutcome> {
        let tid = self.table_id(table)?;
        let ts = self.state(tid);
        let secs = ts.secondaries.read();
        let idx = secs
            .iter()
            .find(|s| s.name == index_name)
            .ok_or_else(|| DbError::NoSuchIndex(index_name.into()))?;
        let hits = idx.tree.range(lo, hi);
        drop(secs);
        let hidden = self.txns.uncommitted_inserts(tid);
        let examined = hits.len() as u64;
        let mut rows = Vec::with_capacity(hits.len());
        for (_, p) in hits {
            if hidden.contains(&p) {
                continue;
            }
            if let Some(row) = self.fetch_row_opt(&ts, tid, RowId::from_packed(p))? {
                rows.push(row);
            }
        }
        Ok(QueryOutcome { rows, examined })
    }

    /// `true` if `table` refers to an existing table. Wire requests carry
    /// raw table ids that must be validated before indexing engine state.
    pub fn table_exists(&self, table: TableId) -> bool {
        table.index() < self.tables.read().len()
    }

    /// The table's name, if the id is valid.
    pub fn table_name(&self, table: TableId) -> Option<String> {
        self.tables
            .read()
            .get(table.index())
            .map(|ts| ts.schema().name.clone())
    }

    /// Every table name currently bound in the catalog, in name order
    /// (the scrubber's default walk order).
    pub fn table_names(&self) -> Vec<String> {
        let catalog = self.catalog.read();
        let mut names: Vec<String> = catalog.iter().map(|(_, s)| s.name.clone()).collect();
        names.sort();
        names
    }

    /// Live row count of a table.
    pub fn row_count(&self, table: TableId) -> u64 {
        self.state(table).heap.lock().row_count()
    }

    /// Allocated heap pages of a table.
    pub fn page_count(&self, table: TableId) -> usize {
        self.state(table).heap.lock().page_count()
    }

    /// Height of the table's primary-key B+-tree (Fig. 9's log factor).
    pub fn pk_height(&self, table: TableId) -> usize {
        self.state(table).pk.read().height()
    }

    // ----------------------------------------------------------- integrity

    /// One scrub pass over a single table (the worker behind
    /// [`crate::scrub::run_scrub`]).
    ///
    /// Holds the table's heap mutex across verify **and** quarantine, so a
    /// racing committed scan — which takes the same mutex for its whole
    /// pass — observes each rotted row either as a loud
    /// [`DbError::DataCorruption`] (before this pass) or not at all (after
    /// quarantine). Never as data. Rows staged by still-open transactions
    /// are skipped: their fate belongs to their transaction.
    pub fn scrub_table(
        &self,
        table: &str,
    ) -> DbResult<(crate::scrub::TableScrub, Vec<crate::scrub::QuarantinedRow>)> {
        let tid = self.table_id(table)?;
        let ts = self.state(tid);
        let hidden = self.txns.uncommitted_inserts(tid);
        let mut quarantined = Vec::new();
        let mut rows = 0u64;
        let pages;
        {
            let mut heap = ts.heap.lock();
            pages = heap.page_count() as u64;
            let mut bad = Vec::new();
            for (rid, check) in heap.scan_checked() {
                if hidden.contains(&rid.packed()) {
                    continue;
                }
                rows += 1;
                if check.is_err() {
                    bad.push(rid);
                }
            }
            for rid in bad {
                let payload = rid.packed();
                heap.delete(rid);
                // The heap bytes are rotted, so the row's identity comes
                // from the PK index: its entry mapping key → this payload is
                // the only trustworthy record of which key the row carried.
                let pk_key = ts.pk.write().remove_payload(payload);
                for u in &ts.uniques {
                    u.write().remove_payload(payload);
                }
                for s in ts.secondaries.write().iter_mut() {
                    s.tree.remove_payload(payload);
                }
                self.stats.rows_quarantined.inc();
                quarantined.push(crate::scrub::QuarantinedRow {
                    table: table.to_string(),
                    row_id: payload,
                    pk: pk_key.map(|k| k.0).unwrap_or_default(),
                });
            }
        }
        let mut bad_nodes = 0u64;
        if ts.pk.read().validate().is_err() {
            bad_nodes += 1;
        }
        for u in &ts.uniques {
            if u.read().validate().is_err() {
                bad_nodes += 1;
            }
        }
        for s in ts.secondaries.read().iter() {
            if s.tree.validate().is_err() {
                bad_nodes += 1;
            }
        }
        Ok((
            crate::scrub::TableScrub {
                table: table.to_string(),
                pages,
                rows,
                bad_records: quarantined.len() as u64,
                bad_nodes,
            },
            quarantined,
        ))
    }

    /// Chaos hook: flip one seed-deterministic bit in one committed row of
    /// `table`. Returns the damaged row id, or `None` when the table has no
    /// committed rows. The flip lands in the stored payload, never the CRC
    /// prefix — either damage is detected identically, but payload damage is
    /// the interesting repro (the checksum is *right* and the data wrong).
    pub fn rot_heap_row(&self, table: &str, salt: u64) -> Option<RowId> {
        let tid = self.table_id(table).ok()?;
        let ts = self.state(tid);
        let hidden = self.txns.uncommitted_inserts(tid);
        let mut heap = ts.heap.lock();
        let live: Vec<RowId> = heap
            .scan()
            .map(|(rid, _)| rid)
            .filter(|rid| !hidden.contains(&rid.packed()))
            .collect();
        if live.is_empty() {
            return None;
        }
        let mut rng = SplitMix64::new(salt);
        let rid = live[(rng.next_u64() % live.len() as u64) as usize];
        let byte = rng.next_u64() as usize;
        let bit = (rng.next_u64() & 7) as u8;
        heap.corrupt_row(rid, byte, bit).then_some(rid)
    }

    /// Chaos hook: flip one seed-deterministic bit somewhere in the durable
    /// WAL image. Recovery replay must then stop at the first record whose
    /// CRC fails instead of trusting length framing into garbage. Returns
    /// the damaged byte offset, or `None` when no bytes are durable yet.
    pub fn rot_wal_bit(&self, salt: u64) -> Option<usize> {
        let len = self.wal.durable_len();
        if len == 0 {
            return None;
        }
        let mut rng = SplitMix64::new(salt);
        let byte = (rng.next_u64() % len as u64) as usize;
        let bit = (rng.next_u64() & 7) as u8;
        self.wal.rot_durable_bit(byte, bit).then_some(byte)
    }

    // ----------------------------------------------------- cost model hooks

    /// Modeled CPU to maintain all indexes of `table` for one row: the
    /// per-entry cost scales with key width, so the 3-float composite index
    /// costs more than the 1-int index (Fig. 8).
    pub fn maintenance_cost(&self, table: TableId) -> Duration {
        let ts = self.state(table);
        let schema = ts.schema();
        let per8_nanos = self.cfg.per_index_entry_cpu.as_nanos() as u64;
        let key_width = |cols: &[usize]| -> u64 {
            cols.iter()
                .map(|&c| schema.columns[c].dtype.width_hint() as u64 + 1)
                .sum()
        };
        // Cost scales continuously with key width (per 8 bytes), so a
        // 3-float composite key really costs ~3x a single-int key.
        let mut width_bytes = key_width(&schema.primary_key);
        for u in &schema.uniques {
            width_bytes += key_width(&u.columns);
        }
        for s in ts.secondaries.read().iter() {
            width_bytes += key_width(&s.columns);
        }
        Duration::from_nanos(per8_nanos * width_bytes / 8)
    }

    // ------------------------------------------------------------ recovery

    /// Rebuild an engine from a crashed one's durable log. The catalog is
    /// re-created from `schema_source` (DDL is assumed re-runnable, as with
    /// any deployment's schema scripts); committed inserts are replayed in
    /// log order.
    pub fn recover_from_log(
        cfg: DbConfig,
        schemas: Vec<TableSchema>,
        log: &[u8],
    ) -> DbResult<Engine> {
        Self::recover_from_log_checked(cfg, schemas, log).map(|(engine, _)| engine)
    }

    /// As [`Engine::recover_from_log`], but also reports whether replay
    /// stopped early because a log record failed its CRC. The tail past the
    /// first bad record is discarded exactly like a torn write — the
    /// difference is the caller *knows*, and can widen its repair scope to
    /// everything the log might have held.
    pub fn recover_from_log_checked(
        cfg: DbConfig,
        schemas: Vec<TableSchema>,
        log: &[u8],
    ) -> DbResult<(Engine, bool)> {
        let engine = Engine::new(cfg);
        for s in schemas {
            engine.create_table(s)?;
        }
        let (ops, corrupt) = recover_checked(log);
        let txn = engine.begin();
        for op in ops {
            match op {
                crate::wal::RecoveredOp::Insert { table, row, .. } => {
                    let mut slice = &row[..];
                    let row = decode_row(&mut slice)?;
                    // Replay bypasses nothing: constraints re-checked. A redo
                    // record that now violates indicates corruption; surface it.
                    engine.insert_row(txn, table, &row)?;
                }
                crate::wal::RecoveredOp::Delete { table, pk, .. } => {
                    let mut slice = &pk[..];
                    let key = Key(decode_row(&mut slice)?);
                    engine.delete_by_pk_unlogged(table, &key);
                }
            }
        }
        engine.commit(txn)?;
        Ok((engine, corrupt))
    }

    /// The durable log bytes (what a crash preserves).
    pub fn durable_log(&self) -> Vec<u8> {
        self.wal.durable_log()
    }

    // ------------------------------------------------------------- metrics

    /// Engine counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The block cache.
    pub fn cache(&self) -> &BufferPool {
        &self.cache
    }

    /// The WAL.
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// The disk farm.
    pub fn farm(&self) -> &DiskFarm {
        &self.farm
    }

    /// Transaction manager metrics.
    pub fn txn_manager(&self) -> &TxnManager {
        &self.txns
    }

    /// Lock waits observed on table insert slots.
    pub fn lock_waits(&self) -> u64 {
        self.locks.read().waits()
    }

    /// Total modeled lock-wait time.
    pub fn lock_wait_time(&self) -> Duration {
        self.locks.read().wait_time()
    }

    /// The engine's time scale.
    pub fn scale(&self) -> TimeScale {
        self.cfg.scale
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("tables", &self.table_count())
            .field("rows_inserted", &self.stats.rows_inserted.get())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::schema::TableBuilder;
    use crate::value::DataType;

    fn two_table_engine() -> (Engine, TableId, TableId) {
        let e = Engine::for_tests();
        let frames = TableBuilder::new("frames")
            .col("frame_id", DataType::Int)
            .col("exposure", DataType::Float)
            .pk(&["frame_id"])
            .build()
            .unwrap();
        let objects = TableBuilder::new("objects")
            .col("object_id", DataType::Int)
            .col("frame_id", DataType::Int)
            .col_null("mag", DataType::Float)
            .pk(&["object_id"])
            .fk("fk_objects_frame", &["frame_id"], "frames")
            .check("chk_mag", Expr::between(2, -5.0f64, 40.0f64))
            .build()
            .unwrap();
        let f = e.create_table(frames).unwrap();
        let o = e.create_table(objects).unwrap();
        (e, f, o)
    }

    fn frame(id: i64) -> Row {
        vec![Value::Int(id), Value::Float(30.0)]
    }

    /// Clone `frames`/`objects` as a shadow pair (FKs pointing within the
    /// shadow set), as a reprocessing campaign does.
    fn add_shadow_pair(e: &Engine) -> (TableId, TableId) {
        let frames = TableBuilder::new("frames__s1")
            .col("frame_id", DataType::Int)
            .col("exposure", DataType::Float)
            .pk(&["frame_id"])
            .build()
            .unwrap();
        let objects = TableBuilder::new("objects__s1")
            .col("object_id", DataType::Int)
            .col("frame_id", DataType::Int)
            .col_null("mag", DataType::Float)
            .pk(&["object_id"])
            .fk("fk_objects_frame", &["frame_id"], "frames__s1")
            .build()
            .unwrap();
        let f = e.create_table(frames).unwrap();
        let o = e.create_table(objects).unwrap();
        (f, o)
    }

    fn object(id: i64, frame: i64, mag: f64) -> Row {
        vec![Value::Int(id), Value::Int(frame), Value::Float(mag)]
    }

    #[test]
    fn insert_and_count() {
        let (e, f, o) = two_table_engine();
        let txn = e.begin();
        e.insert_row(txn, f, &frame(1)).unwrap();
        e.insert_row(txn, o, &object(10, 1, 18.5)).unwrap();
        e.commit(txn).unwrap();
        assert_eq!(e.row_count(f), 1);
        assert_eq!(e.row_count(o), 1);
        assert_eq!(e.stats().snapshot().rows_inserted, 2);
    }

    #[test]
    fn pk_violation_leaves_no_residue() {
        let (e, f, _) = two_table_engine();
        let txn = e.begin();
        e.insert_row(txn, f, &frame(1)).unwrap();
        let err = e.insert_row(txn, f, &frame(1)).unwrap_err();
        assert_eq!(err.constraint_kind(), Some(ConstraintKind::PrimaryKey));
        assert_eq!(e.row_count(f), 1);
        assert_eq!(e.scan_where(f, None).unwrap().len(), 1);
        assert_eq!(e.stats().snapshot().pk_violations, 1);
    }

    #[test]
    fn fk_violation_detected() {
        let (e, _, o) = two_table_engine();
        let txn = e.begin();
        let err = e.insert_row(txn, o, &object(1, 99, 10.0)).unwrap_err();
        assert_eq!(err.constraint_kind(), Some(ConstraintKind::ForeignKey));
        assert_eq!(e.row_count(o), 0);
    }

    #[test]
    fn check_violation_detected() {
        let (e, f, o) = two_table_engine();
        let txn = e.begin();
        e.insert_row(txn, f, &frame(1)).unwrap();
        let err = e.insert_row(txn, o, &object(1, 1, 99.0)).unwrap_err();
        assert_eq!(err.constraint_kind(), Some(ConstraintKind::Check));
    }

    #[test]
    fn null_fk_passes_null_pk_rejected() {
        let (e, f, o) = two_table_engine();
        let txn = e.begin();
        e.insert_row(txn, f, &frame(1)).unwrap();
        // NULL mag is fine (nullable), NULL PK is not.
        let bad_pk = vec![Value::Null, Value::Int(1), Value::Null];
        let err = e.insert_row(txn, o, &bad_pk).unwrap_err();
        assert_eq!(err.constraint_kind(), Some(ConstraintKind::NotNull));
        e.insert_row(txn, o, &[Value::Int(5), Value::Int(1), Value::Null])
            .unwrap();
    }

    #[test]
    fn arity_and_type_rejected() {
        let (e, f, _) = two_table_engine();
        let txn = e.begin();
        assert!(matches!(
            e.insert_row(txn, f, &[Value::Int(1)]),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            e.insert_row(txn, f, &[Value::Text("x".into()), Value::Float(1.0)]),
            Err(DbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn batch_stops_at_first_error_keeping_prefix() {
        let (e, f, o) = two_table_engine();
        let txn = e.begin();
        e.insert_row(txn, f, &frame(1)).unwrap();
        let rows: Vec<Row> = vec![
            object(1, 1, 10.0),
            object(2, 1, 11.0),
            object(2, 1, 12.0), // duplicate PK → fails
            object(3, 1, 13.0), // never attempted
        ];
        let out = e.apply_batch(txn, o, &rows);
        assert_eq!(out.applied, 2);
        let (off, err) = out.failed.unwrap();
        assert_eq!(off, 2);
        assert_eq!(err.constraint_kind(), Some(ConstraintKind::PrimaryKey));
        assert_eq!(e.row_count(o), 2, "rows before the error persist");
    }

    #[test]
    fn rollback_reverses_everything() {
        let (e, f, o) = two_table_engine();
        let t1 = e.begin();
        e.insert_row(t1, f, &frame(1)).unwrap();
        e.commit(t1).unwrap();
        let t2 = e.begin();
        e.insert_row(t2, o, &object(1, 1, 10.0)).unwrap();
        e.insert_row(t2, o, &object(2, 1, 11.0)).unwrap();
        e.rollback(t2).unwrap();
        assert_eq!(e.row_count(o), 0);
        // PK is reusable after rollback.
        let t3 = e.begin();
        e.insert_row(t3, o, &object(1, 1, 12.0)).unwrap();
        e.commit(t3).unwrap();
        assert_eq!(e.row_count(o), 1);
    }

    #[test]
    fn collision_with_staged_row_is_a_write_conflict_not_a_duplicate() {
        // The lease-takeover race: txn A stages a key but has not
        // resolved; txn B inserting the same key must get a *retryable*
        // write conflict — calling it a duplicate would let a bulk loader
        // skip the row, which is lost forever if A then rolls back.
        let (e, f, _) = two_table_engine();
        let a = e.begin();
        e.insert_row(a, f, &frame(1)).unwrap();

        let b = e.begin();
        let err = e.insert_row(b, f, &frame(1)).unwrap_err();
        assert!(
            matches!(err, DbError::WriteConflict(_)),
            "expected a write conflict against A's staged row, got {err}"
        );
        assert_eq!(e.stats().snapshot().write_conflicts, 1);
        assert_eq!(e.stats().snapshot().pk_violations, 0);

        // A rolls back: the key is free and B's retry succeeds.
        e.rollback(a).unwrap();
        e.insert_row(b, f, &frame(1)).unwrap();
        e.commit(b).unwrap();
        assert_eq!(e.row_count(f), 1);

        // Against a *committed* incumbent the same insert is a proven
        // duplicate — the skippable kind.
        let c = e.begin();
        let err = e.insert_row(c, f, &frame(1)).unwrap_err();
        assert_eq!(err.constraint_kind(), Some(ConstraintKind::PrimaryKey));
        e.rollback(c).unwrap();

        // A transaction colliding with its *own* staged row is also a
        // plain duplicate: nothing to wait for.
        let d = e.begin();
        e.insert_row(d, f, &frame(2)).unwrap();
        let err = e.insert_row(d, f, &frame(2)).unwrap_err();
        assert_eq!(err.constraint_kind(), Some(ConstraintKind::PrimaryKey));
        e.rollback(d).unwrap();
    }

    #[test]
    fn scan_filter_and_pk_get() {
        let (e, f, o) = two_table_engine();
        let txn = e.begin();
        e.insert_row(txn, f, &frame(1)).unwrap();
        for i in 0..20 {
            e.insert_row(txn, o, &object(i, 1, i as f64)).unwrap();
        }
        e.commit(txn).unwrap();
        let bright = e
            .scan_where(o, Some(&Expr::cmp(2, CmpOp::Lt, 5.0f64)))
            .unwrap();
        assert_eq!(bright.len(), 5);
        let row = e
            .pk_get(o, &Key(vec![Value::Int(7)]))
            .unwrap()
            .expect("row 7 exists");
        assert_eq!(row[2], Value::Float(7.0));
        assert!(e.pk_get(o, &Key(vec![Value::Int(999)])).unwrap().is_none());
    }

    #[test]
    fn secondary_index_lifecycle() {
        let (e, f, o) = two_table_engine();
        let txn = e.begin();
        e.insert_row(txn, f, &frame(1)).unwrap();
        for i in 0..50 {
            e.insert_row(txn, o, &object(i, 1, (i % 10) as f64))
                .unwrap();
        }
        e.commit(txn).unwrap();
        // Create after load (the delayed-index path).
        e.create_index("objects", "idx_mag", &["mag"], false)
            .unwrap();
        assert_eq!(e.index_names("objects").unwrap(), vec!["idx_mag"]);
        let hits = e
            .index_range(
                "objects",
                "idx_mag",
                &Key(vec![Value::Float(3.0)]),
                &Key(vec![Value::Float(4.0)]),
            )
            .unwrap();
        assert_eq!(hits.len(), 10);
        // New inserts maintain it.
        let t2 = e.begin();
        e.insert_row(t2, o, &object(100, 1, 3.5)).unwrap();
        e.commit(t2).unwrap();
        let hits = e
            .index_range(
                "objects",
                "idx_mag",
                &Key(vec![Value::Float(3.0)]),
                &Key(vec![Value::Float(4.0)]),
            )
            .unwrap();
        assert_eq!(hits.len(), 11);
        e.drop_index("objects", "idx_mag").unwrap();
        assert!(e
            .index_range("objects", "idx_mag", &Key(vec![]), &Key(vec![]))
            .is_err());
        assert!(matches!(
            e.drop_index("objects", "idx_mag"),
            Err(DbError::NoSuchIndex(_))
        ));
    }

    #[test]
    fn unique_index_build_rejects_duplicates() {
        let (e, f, _) = two_table_engine();
        let txn = e.begin();
        e.insert_row(txn, f, &frame(1)).unwrap();
        e.insert_row(txn, f, &frame(2)).unwrap();
        e.commit(txn).unwrap();
        // exposure is 30.0 in both rows → unique build must fail.
        let err = e
            .create_index("frames", "u_exposure", &["exposure"], true)
            .unwrap_err();
        assert_eq!(err.constraint_kind(), Some(ConstraintKind::Unique));
    }

    #[test]
    fn crash_recovery_replays_committed_only() {
        let schemas = || {
            vec![TableBuilder::new("frames")
                .col("frame_id", DataType::Int)
                .col("exposure", DataType::Float)
                .pk(&["frame_id"])
                .build()
                .unwrap()]
        };
        let e = Engine::for_tests();
        for s in schemas() {
            e.create_table(s).unwrap();
        }
        let f = e.table_id("frames").unwrap();
        let t1 = e.begin();
        e.insert_row(t1, f, &frame(1)).unwrap();
        e.insert_row(t1, f, &frame(2)).unwrap();
        e.commit(t1).unwrap();
        let t2 = e.begin();
        e.insert_row(t2, f, &frame(3)).unwrap();
        // CRASH: t2 never commits; grab the durable log.
        let log = e.durable_log();
        drop(e);
        let recovered = Engine::recover_from_log(DbConfig::test(), schemas(), &log).unwrap();
        let f2 = recovered.table_id("frames").unwrap();
        assert_eq!(recovered.row_count(f2), 2);
        assert!(recovered
            .pk_get(f2, &Key(vec![Value::Int(3)]))
            .unwrap()
            .is_none());
    }

    #[test]
    fn maintenance_cost_grows_with_indexes_and_width() {
        let (e, _, o) = two_table_engine();
        let base = e.maintenance_cost(o);
        e.create_index("objects", "idx_mag", &["mag"], false)
            .unwrap();
        let one = e.maintenance_cost(o);
        assert!(one >= base);
        // With a nonzero per-entry cost the composite is strictly pricier.
        let cfg = DbConfig {
            per_index_entry_cpu: Duration::from_micros(3),
            ..DbConfig::test()
        };
        let e2 = Engine::new(cfg);
        let t = TableBuilder::new("t")
            .col("a", DataType::Int)
            .col("x", DataType::Float)
            .col("y", DataType::Float)
            .col("z", DataType::Float)
            .pk(&["a"])
            .build()
            .unwrap();
        let tid = e2.create_table(t).unwrap();
        let pk_only = e2.maintenance_cost(tid);
        e2.create_index("t", "i1", &["a"], false).unwrap();
        let with_int = e2.maintenance_cost(tid);
        e2.drop_index("t", "i1").unwrap();
        e2.create_index("t", "i3", &["x", "y", "z"], false).unwrap();
        let with_composite = e2.maintenance_cost(tid);
        assert!(with_int > pk_only);
        assert!(
            with_composite > with_int,
            "3-float composite {with_composite:?} should exceed 1-int {with_int:?}"
        );
    }

    #[test]
    fn concurrent_batches_from_many_threads() {
        let (e, f, o) = two_table_engine();
        let e = Arc::new(e);
        let txn = e.begin();
        e.insert_row(txn, f, &frame(1)).unwrap();
        e.commit(txn).unwrap();
        std::thread::scope(|s| {
            for t in 0..8i64 {
                let e = e.clone();
                s.spawn(move || {
                    let txn = e.begin();
                    let rows: Vec<Row> = (0..500).map(|i| object(t * 1000 + i, 1, 10.0)).collect();
                    for chunk in rows.chunks(40) {
                        let out = e.apply_batch(txn, o, chunk);
                        assert!(out.is_complete(), "{:?}", out.failed);
                    }
                    e.commit(txn).unwrap();
                });
            }
        });
        assert_eq!(e.row_count(o), 4000);
        assert_eq!(e.stats().snapshot().rows_inserted, 4001);
    }

    #[test]
    fn commit_without_txn_errors() {
        let (e, _, _) = two_table_engine();
        let t = e.begin();
        e.commit(t).unwrap();
        assert_eq!(e.commit(t), Err(DbError::NoTransaction));
        assert_eq!(e.rollback(t), Err(DbError::NoTransaction));
    }

    #[test]
    fn writer_cycles_triggered_by_page_allocations() {
        let cfg = DbConfig {
            writer_interval_pages: 4,
            ..DbConfig::test()
        };
        let e = Engine::new(cfg);
        let t = TableBuilder::new("wide")
            .col("id", DataType::Int)
            .col("pad", DataType::Text(4000))
            .pk(&["id"])
            .build()
            .unwrap();
        let tid = e.create_table(t).unwrap();
        let txn = e.begin();
        let pad = "x".repeat(3000);
        for i in 0..40 {
            e.insert_row(txn, tid, &[Value::Int(i), Value::Text(pad.clone())])
                .unwrap();
        }
        e.commit(txn).unwrap();
        assert!(e.cache().writer_cycles() >= 2, "writer should have cycled");
    }

    #[test]
    fn delete_where_removes_matching_rows_and_indexes() {
        let (e, f, o) = two_table_engine();
        let txn = e.begin();
        e.insert_row(txn, f, &frame(1)).unwrap();
        for i in 0..20 {
            e.insert_row(txn, o, &object(i, 1, i as f64)).unwrap();
        }
        e.commit(txn).unwrap();
        e.create_index("objects", "idx_mag", &["mag"], false)
            .unwrap();

        let t2 = e.begin();
        let n = e
            .delete_where(t2, o, Some(&Expr::cmp(2, CmpOp::Lt, 10.0f64)))
            .unwrap();
        e.commit(t2).unwrap();
        assert_eq!(n, 10);
        assert_eq!(e.row_count(o), 10);
        assert_eq!(e.stats().snapshot().rows_deleted, 10);
        // PK and secondary index agree with the heap.
        assert!(e.pk_get(o, &Key(vec![Value::Int(3)])).unwrap().is_none());
        assert!(e.pk_get(o, &Key(vec![Value::Int(15)])).unwrap().is_some());
        let hits = e
            .index_range(
                "objects",
                "idx_mag",
                &Key(vec![Value::Float(0.0)]),
                &Key(vec![Value::Float(9.5)]),
            )
            .unwrap();
        assert!(hits.is_empty(), "deleted rows must leave the index");
        // Deleted PKs are reusable.
        let t3 = e.begin();
        e.insert_row(t3, o, &object(3, 1, 30.0)).unwrap();
        e.commit(t3).unwrap();
    }

    #[test]
    fn delete_restricts_on_referencing_children() {
        let (e, f, o) = two_table_engine();
        let txn = e.begin();
        e.insert_row(txn, f, &frame(1)).unwrap();
        e.insert_row(txn, f, &frame(2)).unwrap();
        e.insert_row(txn, o, &object(10, 1, 5.0)).unwrap();
        e.commit(txn).unwrap();

        // Frame 1 has a child object: deleting all frames must fail whole.
        let t2 = e.begin();
        let err = e.delete_where(t2, f, None).unwrap_err();
        assert_eq!(err.constraint_kind(), Some(ConstraintKind::ForeignKey));
        assert_eq!(e.row_count(f), 2, "RESTRICT is atomic");
        // Deleting only the childless frame 2 succeeds.
        let n = e
            .delete_where(t2, f, Some(&Expr::cmp(0, CmpOp::Eq, 2i64)))
            .unwrap();
        assert_eq!(n, 1);
        e.commit(t2).unwrap();
        assert_eq!(e.row_count(f), 1);
    }

    #[test]
    fn delete_rolls_back_cleanly() {
        let (e, f, o) = two_table_engine();
        let txn = e.begin();
        e.insert_row(txn, f, &frame(1)).unwrap();
        for i in 0..5 {
            e.insert_row(txn, o, &object(i, 1, 10.0)).unwrap();
        }
        e.commit(txn).unwrap();

        let t2 = e.begin();
        assert_eq!(e.delete_where(t2, o, None).unwrap(), 5);
        assert_eq!(e.row_count(o), 0);
        e.rollback(t2).unwrap();
        assert_eq!(e.row_count(o), 5, "rollback restores deleted rows");
        for i in 0..5 {
            assert!(e.pk_get(o, &Key(vec![Value::Int(i)])).unwrap().is_some());
        }
    }

    #[test]
    fn committed_deletes_survive_recovery() {
        let schemas = || {
            vec![TableBuilder::new("frames")
                .col("frame_id", DataType::Int)
                .col("exposure", DataType::Float)
                .pk(&["frame_id"])
                .build()
                .unwrap()]
        };
        let e = Engine::for_tests();
        for s in schemas() {
            e.create_table(s).unwrap();
        }
        let f = e.table_id("frames").unwrap();
        let t1 = e.begin();
        for i in 0..10 {
            e.insert_row(t1, f, &frame(i)).unwrap();
        }
        e.commit(t1).unwrap();
        let t2 = e.begin();
        e.delete_where(t2, f, Some(&Expr::cmp(0, CmpOp::Lt, 4i64)))
            .unwrap();
        e.commit(t2).unwrap();
        // Uncommitted delete: must NOT survive.
        let t3 = e.begin();
        e.delete_where(t3, f, Some(&Expr::cmp(0, CmpOp::Eq, 9i64)))
            .unwrap();
        let log = e.durable_log();
        drop(e);
        let recovered = Engine::recover_from_log(DbConfig::test(), schemas(), &log).unwrap();
        let f2 = recovered.table_id("frames").unwrap();
        assert_eq!(recovered.row_count(f2), 6, "4 committed deletes applied");
        assert!(recovered
            .pk_get(f2, &Key(vec![Value::Int(2)]))
            .unwrap()
            .is_none());
        assert!(
            recovered
                .pk_get(f2, &Key(vec![Value::Int(9)]))
                .unwrap()
                .is_some(),
            "uncommitted delete must not replay"
        );
    }

    #[test]
    fn delete_where_empty_match_is_zero() {
        let (e, f, _) = two_table_engine();
        let txn = e.begin();
        e.insert_row(txn, f, &frame(1)).unwrap();
        let n = e
            .delete_where(txn, f, Some(&Expr::cmp(0, CmpOp::Eq, 999i64)))
            .unwrap();
        assert_eq!(n, 0);
        e.commit(txn).unwrap();
    }

    #[test]
    fn swap_tables_rebinds_names_and_refreshes_fk_resolution() {
        let (e, f, o) = two_table_engine();
        let txn = e.begin();
        e.insert_row(txn, f, &frame(1)).unwrap();
        e.insert_row(txn, o, &object(10, 1, 18.5)).unwrap();
        e.commit(txn).unwrap();

        // Load the shadow season: different frame ids, two objects.
        let (sf, so) = add_shadow_pair(&e);
        let txn = e.begin();
        e.insert_row(txn, sf, &frame(2)).unwrap();
        e.insert_row(txn, so, &object(20, 2, 19.0)).unwrap();
        e.insert_row(txn, so, &object(21, 2, 20.0)).unwrap();
        e.commit(txn).unwrap();

        let ids = e
            .swap_tables(&[
                ("frames".into(), "frames__s1".into()),
                ("objects".into(), "objects__s1".into()),
            ])
            .unwrap();
        assert_eq!(ids, vec![(f, sf), (o, so)]);
        // The live names now resolve to the shadow physical tables.
        assert_eq!(e.table_id("frames").unwrap(), sf);
        assert_eq!(e.table_id("objects").unwrap(), so);
        assert_eq!(e.row_count(e.table_id("objects").unwrap()), 2);
        assert_eq!(e.row_count(e.table_id("objects__s1").unwrap()), 1);
        assert_eq!(e.table_name(sf).as_deref(), Some("frames"));
        assert_eq!(e.stats().snapshot().table_swaps, 1);

        // FK resolution after the swap: inserting into the promoted
        // objects table must check the promoted frames table (id sf), and
        // a row referencing the *demoted* season's frame id 1 must fail.
        let txn = e.begin();
        e.insert_row(txn, so, &object(22, 2, 21.0)).unwrap();
        let err = e.insert_row(txn, so, &object(23, 1, 21.0)).unwrap_err();
        assert_eq!(err.constraint_kind(), Some(ConstraintKind::ForeignKey));
        e.commit(txn).unwrap();

        // Topological order stays parent-before-child for both seasons.
        let order = e.tables_topological();
        let pos = |id: TableId| order.iter().position(|x| *x == id).unwrap();
        assert!(pos(f) < pos(o));
        assert!(pos(sf) < pos(so));
    }

    #[test]
    fn wal_replay_by_id_is_swap_oblivious() {
        // Rows written before AND after a swap replay into the same
        // physical ids: a recovered engine (always fresh-unswapped) holds
        // each season's rows under its original creation-time id, and the
        // campaign manifest decides whether to re-apply the rebind.
        let (e, f, o) = two_table_engine();
        let (sf, so) = add_shadow_pair(&e);
        let txn = e.begin();
        e.insert_row(txn, f, &frame(1)).unwrap();
        e.insert_row(txn, sf, &frame(2)).unwrap();
        e.insert_row(txn, so, &object(20, 2, 19.0)).unwrap();
        e.commit(txn).unwrap();
        e.swap_tables(&[
            ("frames".into(), "frames__s1".into()),
            ("objects".into(), "objects__s1".into()),
        ])
        .unwrap();
        // Post-swap insert through the *live* name lands in the promoted
        // physical table.
        let txn = e.begin();
        let live_objects = e.table_id("objects").unwrap();
        e.insert_row(txn, live_objects, &object(21, 2, 20.0))
            .unwrap();
        e.commit(txn).unwrap();

        let schemas: Vec<TableSchema> = e
            .tables_topological()
            .iter()
            .map(|&id| {
                // Recreate creation-order schemas with creation-time names:
                // ids 0..4 were created as frames, objects, frames__s1,
                // objects__s1 regardless of the current binding.
                (*e.schema(id)).clone()
            })
            .collect();
        // tables_topological is definition-order here (0,1,2,3) but names
        // were swapped; swap them back for the DDL script the recovery
        // runs (the campaign manifest records exactly this).
        let mut schemas = schemas;
        for s in &mut schemas {
            let n = match s.name.as_str() {
                "frames" => "frames__s1",
                "frames__s1" => "frames",
                "objects" => "objects__s1",
                "objects__s1" => "objects",
                other => other,
            };
            s.name = n.to_string();
            for fk in &mut s.foreign_keys {
                fk.parent_table = match fk.parent_table.as_str() {
                    "frames" => "frames__s1".into(),
                    "frames__s1" => "frames".into(),
                    other => other.into(),
                };
            }
        }
        let r = Engine::recover_from_log(DbConfig::test(), schemas, &e.durable_log()).unwrap();
        // Recovered engine is unswapped: id `so` (shadow objects) holds
        // both shadow-season rows, including the one inserted post-swap.
        assert_eq!(r.row_count(so), 2);
        assert_eq!(r.row_count(o), 0);
        assert_eq!(r.row_count(sf), 1);
        assert_eq!(r.row_count(f), 1);
    }
}
