//! Redo/undo write-ahead log.
//!
//! §4.5.2: *"A commit command in data loading permanently writes the loaded
//! data to the database. The RDBMS must perform a considerable amount of
//! processing when a transaction commits, but infrequent commits can lead to
//! large redo and undo logs…"*
//!
//! Every insert appends a redo record to an in-memory log buffer; the buffer
//! is flushed to the log device when it fills and — synchronously, with a
//! barrier — on every commit. That makes commit frequency a real cost knob
//! (ablation A3) and gives crash recovery something honest to replay:
//! [`recover`] scans the durable log and returns the inserts of committed
//! transactions, in order.

use bytes::{Buf, BufMut, BytesMut};
use parking_lot::Mutex;

use skyobs::{CounterHandle, Registry};
use skysim::disk::{Access, DiskDevice};

use crate::crc::crc32;
use crate::error::{DbError, DbResult};
use crate::heap::PAGE_BYTES;
use crate::schema::TableId;

/// Transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

/// One log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// Transaction start.
    Begin(TxnId),
    /// A row insert: the encoded row destined for `table`.
    Insert {
        /// Owning transaction.
        txn: TxnId,
        /// Destination table.
        table: TableId,
        /// Encoded row payload (same format as the wire/page encoding).
        row: Box<[u8]>,
    },
    /// A row delete, identified by its encoded primary-key values.
    Delete {
        /// Owning transaction.
        txn: TxnId,
        /// Table deleted from.
        table: TableId,
        /// Encoded primary-key values (as a row).
        pk: Box<[u8]>,
    },
    /// Transaction commit (durability point).
    Commit(TxnId),
    /// Transaction rollback.
    Rollback(TxnId),
}

impl LogRecord {
    /// Encode the record followed by a 4-byte CRC-32 trailer over its bytes.
    /// The trailer means a redo scan never has to trust the length framing:
    /// a flipped bit anywhere in the record (including the length field)
    /// fails the CRC and replay stops at the last intact prefix.
    fn encode(&self, buf: &mut BytesMut) {
        let start = buf.len();
        self.encode_body(buf);
        let crc = crc32(&buf[start..]);
        buf.put_u32_le(crc);
    }

    fn encode_body(&self, buf: &mut BytesMut) {
        match self {
            LogRecord::Begin(t) => {
                buf.put_u8(1);
                buf.put_u64_le(t.0);
            }
            LogRecord::Insert { txn, table, row } => {
                buf.put_u8(2);
                buf.put_u64_le(txn.0);
                buf.put_u32_le(table.0);
                buf.put_u32_le(row.len() as u32);
                buf.put_slice(row);
            }
            LogRecord::Commit(t) => {
                buf.put_u8(3);
                buf.put_u64_le(t.0);
            }
            LogRecord::Rollback(t) => {
                buf.put_u8(4);
                buf.put_u64_le(t.0);
            }
            LogRecord::Delete { txn, table, pk } => {
                buf.put_u8(5);
                buf.put_u64_le(txn.0);
                buf.put_u32_le(table.0);
                buf.put_u32_le(pk.len() as u32);
                buf.put_slice(pk);
            }
        }
    }

    /// Decode one record and verify its CRC trailer. Truncation (not enough
    /// bytes left) is a [`DbError::Protocol`] — the normal torn-tail case; a
    /// present-but-wrong CRC is [`DbError::DataCorruption`] — rot.
    fn decode(buf: &mut &[u8]) -> DbResult<LogRecord> {
        let start: &[u8] = buf;
        let rec = Self::decode_body(buf)?;
        let consumed = start.len() - buf.len();
        if buf.remaining() < 4 {
            return Err(DbError::Protocol("truncated log record crc".into()));
        }
        let stored = buf.get_u32_le();
        let computed = crc32(&start[..consumed]);
        if stored != computed {
            return Err(DbError::DataCorruption(format!(
                "wal record crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
        Ok(rec)
    }

    fn decode_body(buf: &mut impl Buf) -> DbResult<LogRecord> {
        if buf.remaining() < 9 {
            return Err(DbError::Protocol("truncated log record".into()));
        }
        let tag = buf.get_u8();
        let txn = TxnId(buf.get_u64_le());
        match tag {
            1 => Ok(LogRecord::Begin(txn)),
            2 => {
                if buf.remaining() < 8 {
                    return Err(DbError::Protocol("truncated insert record".into()));
                }
                let table = TableId(buf.get_u32_le());
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(DbError::Protocol("truncated insert payload".into()));
                }
                let mut row = vec![0u8; len];
                buf.copy_to_slice(&mut row);
                Ok(LogRecord::Insert {
                    txn,
                    table,
                    row: row.into_boxed_slice(),
                })
            }
            3 => Ok(LogRecord::Commit(txn)),
            4 => Ok(LogRecord::Rollback(txn)),
            5 => {
                if buf.remaining() < 8 {
                    return Err(DbError::Protocol("truncated delete record".into()));
                }
                let table = TableId(buf.get_u32_le());
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(DbError::Protocol("truncated delete payload".into()));
                }
                let mut pk = vec![0u8; len];
                buf.copy_to_slice(&mut pk);
                Ok(LogRecord::Delete {
                    txn,
                    table,
                    pk: pk.into_boxed_slice(),
                })
            }
            t => Err(DbError::Protocol(format!("unknown log tag {t}"))),
        }
    }
}

#[derive(Debug, Default)]
struct WalBuffers {
    /// Records not yet on the log device.
    pending: BytesMut,
    /// The durable log (what survives a crash).
    durable: Vec<u8>,
}

/// The write-ahead log of one engine.
#[derive(Debug)]
pub struct Wal {
    buffers: Mutex<WalBuffers>,
    buffer_capacity: usize,
    flushes: CounterHandle,
    bytes_flushed: CounterHandle,
    records: CounterHandle,
    fsyncs: CounterHandle,
}

impl Wal {
    /// A WAL whose in-memory buffer holds `buffer_capacity` bytes before an
    /// automatic background flush. Counters are registered in `obs` under
    /// `wal.*`.
    pub fn new(buffer_capacity: usize, obs: &Registry) -> Self {
        Wal {
            buffers: Mutex::new(WalBuffers::default()),
            buffer_capacity: buffer_capacity.max(PAGE_BYTES),
            flushes: obs.counter("wal.flushes"),
            bytes_flushed: obs.counter("wal.bytes_flushed"),
            records: obs.counter("wal.records"),
            fsyncs: obs.counter("wal.fsyncs"),
        }
    }

    /// Append a record; flushes to `log_dev` if the buffer is full.
    pub fn append(&self, rec: &LogRecord, log_dev: &DiskDevice) {
        let mut bufs = self.buffers.lock();
        rec.encode(&mut bufs.pending);
        self.records.inc();
        if bufs.pending.len() >= self.buffer_capacity {
            self.flush_locked(&mut bufs, log_dev, false);
        }
    }

    /// Synchronously flush the buffer with a barrier (commit path).
    pub fn flush_sync(&self, log_dev: &DiskDevice) {
        let mut bufs = self.buffers.lock();
        self.flush_locked(&mut bufs, log_dev, true);
    }

    fn flush_locked(&self, bufs: &mut WalBuffers, log_dev: &DiskDevice, barrier: bool) {
        let pending = bufs.pending.split();
        if !pending.is_empty() {
            let pages = pending.len().div_ceil(PAGE_BYTES) as u64;
            log_dev.write_run(pages, Access::Sequential);
            self.flushes.inc();
            self.bytes_flushed.add(pending.len() as u64);
            bufs.durable.extend_from_slice(&pending);
        }
        if barrier {
            self.fsyncs.inc();
            log_dev.sync();
        }
    }

    /// A flush interrupted by a crash: only a prefix of the buffered bytes
    /// reaches the device — the final `torn_tail` bytes are lost, typically
    /// cutting the last record mid-encode. [`decode_log`] discards the
    /// truncated record on recovery, exactly as a real redo scan does.
    ///
    /// No barrier is issued: the crash happens before the sync completes.
    pub fn flush_torn(&self, log_dev: &DiskDevice, torn_tail: usize) {
        let mut bufs = self.buffers.lock();
        let pending = bufs.pending.split();
        if pending.is_empty() {
            return;
        }
        let keep = pending.len().saturating_sub(torn_tail);
        let pages = pending.len().div_ceil(PAGE_BYTES) as u64;
        log_dev.write_run(pages, Access::Sequential);
        self.flushes.inc();
        self.bytes_flushed.add(keep as u64);
        bufs.durable.extend_from_slice(&pending[..keep]);
    }

    /// The durable portion of the log — what a crash would preserve.
    /// Unflushed buffer contents are intentionally *not* included.
    pub fn durable_log(&self) -> Vec<u8> {
        self.buffers.lock().durable.clone()
    }

    /// Chaos hook: flip one bit of the *durable* log in place — the modeled
    /// equivalent of media rot on the log device after the write barrier
    /// completed. Returns `false` (no-op) when `byte` is out of range.
    /// [`decode_log`] will stop at the damaged record on the next recovery.
    pub fn rot_durable_bit(&self, byte: usize, bit: u8) -> bool {
        let mut bufs = self.buffers.lock();
        match bufs.durable.get_mut(byte) {
            Some(b) => {
                *b ^= 1 << (bit & 7);
                true
            }
            None => false,
        }
    }

    /// Bytes currently durable (for seeding a rot offset).
    pub fn durable_len(&self) -> usize {
        self.buffers.lock().durable.len()
    }

    /// Log flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes.get()
    }

    /// Bytes made durable.
    pub fn bytes_flushed(&self) -> u64 {
        self.bytes_flushed.get()
    }

    /// Records appended (durable or not).
    pub fn records(&self) -> u64 {
        self.records.get()
    }

    /// Commit-path barriers issued.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.get()
    }
}

/// Decode a durable log into records, stopping cleanly at any truncated tail
/// (a crash mid-flush leaves a partial record; it is discarded, as in real
/// recovery) or at the first record whose CRC trailer fails (bit-rot: the
/// intact prefix is all that can be trusted).
pub fn decode_log(log: &[u8]) -> Vec<LogRecord> {
    decode_log_checked(log).0
}

/// Like [`decode_log`], but also reports whether the scan stopped because a
/// record's CRC failed (as opposed to reaching the end or a torn tail).
/// `true` means the durable log has *rotted* — the replayed prefix is
/// trustworthy but committed work after the bad record is lost and must be
/// re-derived from source files.
pub fn decode_log_checked(mut log: &[u8]) -> (Vec<LogRecord>, bool) {
    let mut out = Vec::new();
    let mut corrupt = false;
    while !log.is_empty() {
        match LogRecord::decode(&mut log) {
            Ok(rec) => out.push(rec),
            Err(e) => {
                corrupt = matches!(e, DbError::DataCorruption(_));
                break;
            }
        }
    }
    (out, corrupt)
}

/// One committed operation recovered from the log, in log order.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveredOp {
    /// Re-apply an insert of the encoded row.
    Insert {
        /// Originating transaction.
        txn: TxnId,
        /// Destination table.
        table: TableId,
        /// Encoded row.
        row: Box<[u8]>,
    },
    /// Re-apply a delete by primary key.
    Delete {
        /// Originating transaction.
        txn: TxnId,
        /// Table deleted from.
        table: TableId,
        /// Encoded primary-key values.
        pk: Box<[u8]>,
    },
}

/// Redo scan: the committed operations of a durable log, in log order.
pub fn recover(log: &[u8]) -> Vec<RecoveredOp> {
    recover_checked(log).0
}

/// Redo scan that also reports whether the log was cut short by a CRC
/// failure (see [`decode_log_checked`]). Repair uses the flag to widen the
/// re-load set to every journalled file: with a rotted log, any file's tail
/// rows may be missing from the replayed state.
pub fn recover_checked(log: &[u8]) -> (Vec<RecoveredOp>, bool) {
    let (records, corrupt) = decode_log_checked(log);
    let committed: std::collections::HashSet<TxnId> = records
        .iter()
        .filter_map(|r| match r {
            LogRecord::Commit(t) => Some(*t),
            _ => None,
        })
        .collect();
    let ops = records
        .into_iter()
        .filter_map(|r| match r {
            LogRecord::Insert { txn, table, row } if committed.contains(&txn) => {
                Some(RecoveredOp::Insert { txn, table, row })
            }
            LogRecord::Delete { txn, table, pk } if committed.contains(&txn) => {
                Some(RecoveredOp::Delete { txn, table, pk })
            }
            _ => None,
        })
        .collect();
    (ops, corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysim::disk::DiskModel;
    use skysim::time::TimeScale;

    fn dev() -> DiskDevice {
        DiskDevice::new("log", DiskModel::raided_sata(), TimeScale::ZERO)
    }

    fn insert(txn: u64, table: u32, payload: &[u8]) -> LogRecord {
        LogRecord::Insert {
            txn: TxnId(txn),
            table: TableId(table),
            row: payload.to_vec().into_boxed_slice(),
        }
    }

    #[test]
    fn record_roundtrip() {
        let recs = vec![
            LogRecord::Begin(TxnId(1)),
            insert(1, 5, b"hello"),
            LogRecord::Commit(TxnId(1)),
            LogRecord::Rollback(TxnId(2)),
        ];
        let mut buf = BytesMut::new();
        for r in &recs {
            r.encode(&mut buf);
        }
        assert_eq!(decode_log(&buf), recs);
    }

    #[test]
    fn truncated_tail_discarded() {
        let mut buf = BytesMut::new();
        LogRecord::Commit(TxnId(9)).encode(&mut buf);
        insert(1, 2, b"abcdef").encode(&mut buf);
        let cut = buf.len() - 3;
        let recs = decode_log(&buf[..cut]);
        assert_eq!(recs, vec![LogRecord::Commit(TxnId(9))]);
    }

    #[test]
    fn commit_makes_inserts_durable() {
        let wal = Wal::new(1 << 20, &Registry::new());
        let d = dev();
        wal.append(&LogRecord::Begin(TxnId(1)), &d);
        wal.append(&insert(1, 0, b"row1"), &d);
        // Not yet flushed: a crash now loses everything.
        assert!(wal.durable_log().is_empty());
        wal.append(&LogRecord::Commit(TxnId(1)), &d);
        wal.flush_sync(&d);
        let rec = recover(&wal.durable_log());
        assert_eq!(rec.len(), 1);
        match &rec[0] {
            RecoveredOp::Insert { row, .. } => assert_eq!(&**row, b"row1"),
            other => panic!("expected insert, got {other:?}"),
        }
        assert_eq!(d.syncs(), 1);
    }

    #[test]
    fn uncommitted_inserts_not_recovered() {
        let wal = Wal::new(1 << 20, &Registry::new());
        let d = dev();
        wal.append(&insert(1, 0, b"committed"), &d);
        wal.append(&LogRecord::Commit(TxnId(1)), &d);
        wal.append(&insert(2, 0, b"in-flight"), &d);
        wal.flush_sync(&d);
        let rec = recover(&wal.durable_log());
        assert_eq!(rec.len(), 1);
        match &rec[0] {
            RecoveredOp::Insert { txn, .. } => assert_eq!(*txn, TxnId(1)),
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn rolled_back_inserts_not_recovered() {
        let wal = Wal::new(1 << 20, &Registry::new());
        let d = dev();
        wal.append(&insert(3, 1, b"undone"), &d);
        wal.append(&LogRecord::Rollback(TxnId(3)), &d);
        wal.flush_sync(&d);
        assert!(recover(&wal.durable_log()).is_empty());
    }

    #[test]
    fn buffer_fills_trigger_background_flush() {
        let wal = Wal::new(PAGE_BYTES, &Registry::new()); // minimum capacity
        let d = dev();
        let big = vec![0u8; 3000];
        for _ in 0..4 {
            wal.append(&insert(1, 0, &big), &d);
        }
        assert!(wal.flushes() >= 1, "buffer should have flushed");
        assert!(d.writes() >= 1);
        assert_eq!(d.syncs(), 0, "background flush has no barrier");
    }

    #[test]
    fn torn_flush_loses_the_tail_record_only() {
        let wal = Wal::new(1 << 20, &Registry::new());
        let d = dev();
        wal.append(&insert(1, 0, b"first"), &d);
        wal.append(&LogRecord::Commit(TxnId(1)), &d);
        wal.append(&insert(2, 0, b"second"), &d);
        wal.append(&LogRecord::Commit(TxnId(2)), &d);
        // Tear 4 bytes off the second commit record (13 bytes encoded:
        // 9-byte body + 4-byte CRC trailer).
        wal.flush_torn(&d, 4);
        let recs = decode_log(&wal.durable_log());
        assert_eq!(recs.len(), 3, "torn commit record must be discarded");
        let rec = recover(&wal.durable_log());
        assert_eq!(rec.len(), 1, "only txn 1 committed durably");
        match &rec[0] {
            RecoveredOp::Insert { txn, .. } => assert_eq!(*txn, TxnId(1)),
            other => panic!("expected insert, got {other:?}"),
        }
        assert_eq!(d.syncs(), 0, "a torn flush never completes its barrier");
    }

    #[test]
    fn torn_flush_of_empty_buffer_is_a_noop() {
        let wal = Wal::new(1 << 20, &Registry::new());
        let d = dev();
        wal.flush_torn(&d, 5);
        assert!(wal.durable_log().is_empty());
        assert_eq!(d.writes(), 0);
    }

    #[test]
    fn crc_failure_stops_replay_at_last_intact_prefix() {
        let mut buf = BytesMut::new();
        LogRecord::Begin(TxnId(1)).encode(&mut buf);
        insert(1, 0, b"good").encode(&mut buf);
        let damage_from = buf.len();
        insert(1, 0, b"rotten").encode(&mut buf);
        LogRecord::Commit(TxnId(1)).encode(&mut buf);
        let mut log = buf.to_vec();
        // Flip one bit inside the second insert's payload (record layout:
        // tag 1 + txn 8 + table 4 + len 4 = 17 bytes of header).
        log[damage_from + 18] ^= 0x04;
        let (recs, corrupt) = decode_log_checked(&log);
        assert!(corrupt, "bit flip must be classified as corruption");
        assert_eq!(
            recs,
            vec![LogRecord::Begin(TxnId(1)), insert(1, 0, b"good")],
            "replay must stop at the first bad record, not skip it"
        );
        // The commit after the bad record is unreachable, so nothing is
        // recovered: better to lose the tail than apply rotten bytes.
        assert!(recover(&log).is_empty());
    }

    #[test]
    fn flipped_length_field_fails_crc_not_framing() {
        let mut buf = BytesMut::new();
        insert(1, 0, b"abcdefgh").encode(&mut buf);
        LogRecord::Commit(TxnId(1)).encode(&mut buf);
        let mut log = buf.to_vec();
        // Byte 13 is the low byte of the insert's length field; shrink it so
        // length framing alone would "successfully" mis-parse the log.
        log[13] ^= 0x04;
        let (recs, corrupt) = decode_log_checked(&log);
        assert!(recs.is_empty(), "mis-framed record must not decode");
        assert!(corrupt || recs.is_empty());
    }

    #[test]
    fn rot_durable_bit_hits_only_durable_bytes() {
        let wal = Wal::new(1 << 20, &Registry::new());
        let d = dev();
        wal.append(&insert(1, 0, b"row"), &d);
        wal.append(&LogRecord::Commit(TxnId(1)), &d);
        wal.flush_sync(&d);
        let len = wal.durable_len();
        assert!(len > 0);
        assert!(!wal.rot_durable_bit(len, 0), "out of range is a no-op");
        assert!(wal.rot_durable_bit(5, 3));
        let (_, corrupt) = decode_log_checked(&wal.durable_log());
        assert!(corrupt);
        // Flip the same bit back: the log is whole again.
        assert!(wal.rot_durable_bit(5, 3));
        let (recs, corrupt) = decode_log_checked(&wal.durable_log());
        assert!(!corrupt);
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn flush_counters_track_bytes() {
        let wal = Wal::new(1 << 20, &Registry::new());
        let d = dev();
        wal.append(&insert(1, 0, b"abc"), &d);
        wal.flush_sync(&d);
        assert!(wal.bytes_flushed() > 0);
        assert_eq!(wal.records(), 1);
        // Idempotent flush of empty buffer: no extra device writes.
        let w = d.writes();
        wal.flush_sync(&d);
        assert_eq!(d.writes(), w);
    }
}
