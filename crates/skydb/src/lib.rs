//! # skydb — the relational database substrate for the SkyLoader reproduction
//!
//! The SC 2005 paper loads the Palomar-Quest sky survey into Oracle 10g.
//! This crate is the Oracle stand-in: an embedded, thread-safe, multi-table
//! relational engine with everything the paper's measurements exercise —
//!
//! * typed values and a 23-table-capable schema catalog with primary-key,
//!   foreign-key, unique, CHECK and NOT NULL constraints ([`schema`],
//!   [`value`], [`expr`]);
//! * from-scratch B+-tree indexes with honest maintenance cost and bulk
//!   build for delayed index creation ([`btree`]);
//! * slotted-page heap storage through a block cache whose writer scans the
//!   whole cache per cycle — the §4.5.5 tuning effect ([`heap`], [`cache`]);
//! * a redo/undo WAL with synchronous flush on commit and crash recovery
//!   ([`wal`]);
//! * a transaction manager with a concurrent-transaction limit and
//!   per-table insert slots that produce the paper's lock stalls at high
//!   parallelism ([`txn`]);
//! * a binary wire protocol and a server that admits each call through an
//!   8-permit CPU gate and charges network round trips per call ([`wire`],
//!   [`server`]);
//! * a seed-deterministic fault-plan engine injecting connection resets,
//!   busy rejections, latency spikes, disk-full commits, torn-write
//!   crashes and corrupt batches, for exercising loader recovery
//!   ([`fault`]).
//!
//! ## Quick start
//!
//! ```
//! use skydb::prelude::*;
//!
//! let server = Server::start(DbConfig::test());
//! let schema = TableBuilder::new("frames")
//!     .col("frame_id", DataType::Int)
//!     .col("exposure", DataType::Float)
//!     .pk(&["frame_id"])
//!     .build()
//!     .unwrap();
//! server.engine().create_table(schema).unwrap();
//!
//! let session = server.connect();
//! let stmt = session.prepare_insert("frames").unwrap();
//! let result = session
//!     .execute_batch(&stmt, &[vec![Value::Int(1), Value::Float(30.0)]])
//!     .unwrap();
//! assert!(result.is_complete());
//! session.commit().unwrap();
//! ```

#![warn(missing_docs)]

pub mod btree;
pub mod cache;
pub mod config;
pub mod crc;
pub mod engine;
pub mod error;
pub mod expr;
pub mod fault;
pub mod heap;
pub mod schema;
pub mod scrub;
pub mod serve;
pub mod server;
pub mod shard;
pub mod stats;
pub mod txn;
pub mod value;
pub mod wal;
pub mod wire;

/// Convenient re-exports of the commonly used types.
pub mod prelude {
    pub use crate::config::DbConfig;
    pub use crate::engine::{BatchOutcome, Engine};
    pub use crate::error::{ConstraintKind, DbError, DbResult};
    pub use crate::expr::{CmpOp, Expr};
    pub use crate::fault::{
        CallClass, FaultDecision, FaultKind, FaultPlan, FaultPlanConfig, FAULT_KINDS,
    };
    pub use crate::schema::{Catalog, TableBuilder, TableId, TableSchema};
    pub use crate::scrub::{run_scrub, QuarantinedRow, ScrubConfig, ScrubReport, TableScrub};
    pub use crate::serve::{
        FastOutcome, JobId, JobState, Query, QueryResult, QueryService, ServeConfig, ServeError,
    };
    pub use crate::server::{BatchResult, PreparedInsert, QueryReply, Server, Session};
    pub use crate::shard::{shard_fence_key, GatherPolicy, GatherResult, ShardGroup, ZoneMap};
    pub use crate::stats::StatsSnapshot;
    pub use crate::value::{DataType, Key, Row, Value};
    pub use crate::wal::TxnId;
    pub use crate::wire::Fence;
}

pub use prelude::*;
