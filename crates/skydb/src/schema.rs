//! Table schemas, constraints, and the database catalog.
//!
//! The Palomar-Quest repository's data model (paper Fig. 1) is a graph of 23
//! tables related by primary/foreign keys: "A primary key is defined in each
//! table to force data uniqueness. Most tables have one or more foreign keys
//! to maintain parent-child relationships." The catalog validates that graph
//! and exposes the **parent-before-child topological order** that the
//! bulk-loading algorithm must follow (paper Fig. 2).

use std::collections::HashMap;

use crate::error::{DbError, DbResult};
use crate::expr::Expr;
use crate::value::DataType;

/// One column definition.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// `false` adds an implicit NOT NULL constraint.
    pub nullable: bool,
}

impl ColumnDef {
    /// A NOT NULL column.
    pub fn required(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }
}

/// A foreign-key constraint: `columns` on this table reference the primary
/// key of `parent_table`.
#[derive(Debug, Clone)]
pub struct ForeignKeyDef {
    /// Constraint name (e.g. `fk_objects_frame`).
    pub name: String,
    /// Referencing column positions on the child table.
    pub columns: Vec<usize>,
    /// Referenced (parent) table name.
    pub parent_table: String,
}

/// A named CHECK constraint.
#[derive(Debug, Clone)]
pub struct CheckDef {
    /// Constraint name.
    pub name: String,
    /// Expression that must not evaluate to FALSE (SQL semantics: NULL passes).
    pub expr: Expr,
}

/// A named UNIQUE constraint over a set of columns.
#[derive(Debug, Clone)]
pub struct UniqueDef {
    /// Constraint name.
    pub name: String,
    /// Column positions.
    pub columns: Vec<usize>,
}

/// A full table definition.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns, in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Primary-key column positions (non-empty).
    pub primary_key: Vec<usize>,
    /// Foreign keys to parent tables.
    pub foreign_keys: Vec<ForeignKeyDef>,
    /// Additional unique constraints.
    pub uniques: Vec<UniqueDef>,
    /// CHECK constraints.
    pub checks: Vec<CheckDef>,
}

/// Builder for [`TableSchema`] with by-name column references.
#[derive(Debug)]
pub struct TableBuilder {
    schema: TableSchema,
}

impl TableBuilder {
    /// Start a table named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            schema: TableSchema {
                name: name.into(),
                columns: Vec::new(),
                primary_key: Vec::new(),
                foreign_keys: Vec::new(),
                uniques: Vec::new(),
                checks: Vec::new(),
            },
        }
    }

    /// Add a NOT NULL column.
    pub fn col(mut self, name: &str, dtype: DataType) -> Self {
        self.schema.columns.push(ColumnDef::required(name, dtype));
        self
    }

    /// Add a nullable column.
    pub fn col_null(mut self, name: &str, dtype: DataType) -> Self {
        self.schema.columns.push(ColumnDef::nullable(name, dtype));
        self
    }

    fn col_index(&self, name: &str) -> usize {
        self.schema
            .columns
            .iter()
            .position(|c| c.name == name)
            .unwrap_or_else(|| panic!("table {}: unknown column {name}", self.schema.name))
    }

    /// Declare the primary key over the named columns.
    pub fn pk(mut self, cols: &[&str]) -> Self {
        self.schema.primary_key = cols.iter().map(|c| self.col_index(c)).collect();
        self
    }

    /// Declare a foreign key: named columns reference `parent`'s primary key.
    pub fn fk(mut self, name: &str, cols: &[&str], parent: &str) -> Self {
        let columns = cols.iter().map(|c| self.col_index(c)).collect();
        self.schema.foreign_keys.push(ForeignKeyDef {
            name: name.into(),
            columns,
            parent_table: parent.into(),
        });
        self
    }

    /// Declare a unique constraint over the named columns.
    pub fn unique(mut self, name: &str, cols: &[&str]) -> Self {
        let columns = cols.iter().map(|c| self.col_index(c)).collect();
        self.schema.uniques.push(UniqueDef {
            name: name.into(),
            columns,
        });
        self
    }

    /// Declare a CHECK constraint.
    pub fn check(mut self, name: &str, expr: Expr) -> Self {
        self.schema.checks.push(CheckDef {
            name: name.into(),
            expr,
        });
        self
    }

    /// Finish, validating the definition.
    pub fn build(self) -> DbResult<TableSchema> {
        let s = self.schema;
        if s.columns.is_empty() {
            return Err(DbError::InvalidSchema(format!(
                "table {} has no columns",
                s.name
            )));
        }
        if s.primary_key.is_empty() {
            return Err(DbError::InvalidSchema(format!(
                "table {} has no primary key (every repository table declares one)",
                s.name
            )));
        }
        let ncols = s.columns.len();
        let mut names = std::collections::HashSet::new();
        for c in &s.columns {
            if !names.insert(c.name.as_str()) {
                return Err(DbError::InvalidSchema(format!(
                    "table {}: duplicate column {}",
                    s.name, c.name
                )));
            }
        }
        for &i in s.primary_key.iter().chain(
            s.foreign_keys
                .iter()
                .flat_map(|f| f.columns.iter())
                .chain(s.uniques.iter().flat_map(|u| u.columns.iter())),
        ) {
            if i >= ncols {
                return Err(DbError::InvalidSchema(format!(
                    "table {}: constraint references column index {i} out of range",
                    s.name
                )));
            }
        }
        for chk in &s.checks {
            if let Some(max) = chk.expr.max_column() {
                if max >= ncols {
                    return Err(DbError::InvalidSchema(format!(
                        "table {}: check {} references column index {max} out of range",
                        s.name, chk.name
                    )));
                }
            }
        }
        // Primary-key columns are implicitly NOT NULL.
        Ok(s)
    }
}

impl TableSchema {
    /// Find a column position by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Approximate row width in bytes, used for sizing decisions.
    pub fn row_width_hint(&self) -> usize {
        self.columns.iter().map(|c| c.dtype.width_hint() + 1).sum()
    }
}

/// A complete database schema: a set of tables whose FK graph must be acyclic.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<TableSchema>,
    by_name: HashMap<String, usize>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Add a table. Parent tables referenced by its foreign keys must
    /// already be present (this enforces definition in topological order,
    /// matching how DDL scripts are written).
    pub fn add_table(&mut self, table: TableSchema) -> DbResult<TableId> {
        if self.by_name.contains_key(&table.name) {
            return Err(DbError::AlreadyExists(table.name));
        }
        for fk in &table.foreign_keys {
            let parent = self.table_by_name(&fk.parent_table).ok_or_else(|| {
                DbError::InvalidSchema(format!(
                    "table {}: foreign key {} references unknown table {} (define parents first)",
                    table.name, fk.name, fk.parent_table
                ))
            })?;
            if parent.primary_key.len() != fk.columns.len() {
                return Err(DbError::InvalidSchema(format!(
                    "table {}: foreign key {} has {} columns but {}'s primary key has {}",
                    table.name,
                    fk.name,
                    fk.columns.len(),
                    fk.parent_table,
                    parent.primary_key.len()
                )));
            }
            for (child_col, parent_col) in fk.columns.iter().zip(parent.primary_key.iter()) {
                let ct = table.columns[*child_col].dtype;
                let pt = parent.columns[*parent_col].dtype;
                if ct != pt {
                    return Err(DbError::InvalidSchema(format!(
                        "table {}: foreign key {} column type {ct} does not match parent type {pt}",
                        table.name, fk.name
                    )));
                }
            }
        }
        let id = TableId(self.tables.len() as u32);
        self.by_name.insert(table.name.clone(), self.tables.len());
        self.tables.push(table);
        Ok(id)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` if the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Look up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).map(|&i| TableId(i as u32))
    }

    /// Look up a table schema by name.
    pub fn table_by_name(&self, name: &str) -> Option<&TableSchema> {
        self.by_name.get(name).map(|&i| &self.tables[i])
    }

    /// Look up a table schema by id.
    pub fn table(&self, id: TableId) -> &TableSchema {
        &self.tables[id.0 as usize]
    }

    /// Iterate over `(id, schema)` pairs in definition order.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &TableSchema)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }

    /// The **parent-before-child** topological order of all tables.
    ///
    /// This is the loading order of paper Fig. 2: "Loading must be in the
    /// order: Parent, Child, Grandchild." Because `add_table` requires
    /// parents to be defined first, definition order is already topological;
    /// this method additionally verifies it (defense against future schema
    /// manipulation) and returns the ids.
    pub fn topological_order(&self) -> Vec<TableId> {
        let mut seen = vec![false; self.tables.len()];
        for (i, t) in self.tables.iter().enumerate() {
            for fk in &t.foreign_keys {
                let p = self.by_name[&fk.parent_table];
                // Self-references (rare, e.g. hierarchies) are exempt.
                assert!(
                    p == i || seen[p],
                    "catalog not in topological order: {} before its parent {}",
                    t.name,
                    fk.parent_table
                );
            }
            seen[i] = true;
        }
        (0..self.tables.len() as u32).map(TableId).collect()
    }

    /// Depth of each table in the FK DAG (parents = 0, children = 1 + max
    /// parent depth). Used by tests and reports.
    pub fn fk_depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.tables.len()];
        for (i, t) in self.tables.iter().enumerate() {
            for fk in &t.foreign_keys {
                let p = self.by_name[&fk.parent_table];
                if p != i {
                    depth[i] = depth[i].max(depth[p] + 1);
                }
            }
        }
        depth
    }
}

/// Identifier of a table within a catalog / engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl TableId {
    /// The id as a usize for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    fn frames() -> TableSchema {
        TableBuilder::new("frames")
            .col("frame_id", DataType::Int)
            .col("exposure", DataType::Float)
            .pk(&["frame_id"])
            .build()
            .unwrap()
    }

    fn objects() -> TableSchema {
        TableBuilder::new("objects")
            .col("object_id", DataType::Int)
            .col("frame_id", DataType::Int)
            .col_null("mag", DataType::Float)
            .pk(&["object_id"])
            .fk("fk_objects_frame", &["frame_id"], "frames")
            .check("chk_mag", Expr::between(2, -5.0f64, 40.0f64))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_valid_schema() {
        let t = objects();
        assert_eq!(t.columns.len(), 3);
        assert_eq!(t.primary_key, vec![0]);
        assert_eq!(t.foreign_keys[0].columns, vec![1]);
        assert_eq!(t.column_index("mag"), Some(2));
        assert_eq!(t.column_index("nope"), None);
    }

    #[test]
    fn missing_pk_rejected() {
        let r = TableBuilder::new("t").col("a", DataType::Int).build();
        assert!(matches!(r, Err(DbError::InvalidSchema(_))));
    }

    #[test]
    fn duplicate_column_rejected() {
        let r = TableBuilder::new("t")
            .col("a", DataType::Int)
            .col("a", DataType::Int)
            .pk(&["a"])
            .build();
        assert!(matches!(r, Err(DbError::InvalidSchema(_))));
    }

    #[test]
    fn check_referencing_missing_column_rejected() {
        let r = TableBuilder::new("t")
            .col("a", DataType::Int)
            .pk(&["a"])
            .check("c", Expr::cmp(5, CmpOp::Gt, 0i64))
            .build();
        assert!(matches!(r, Err(DbError::InvalidSchema(_))));
    }

    #[test]
    fn catalog_requires_parents_first() {
        let mut cat = Catalog::new();
        let err = cat.add_table(objects());
        assert!(matches!(err, Err(DbError::InvalidSchema(_))));
        cat.add_table(frames()).unwrap();
        cat.add_table(objects()).unwrap();
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn fk_arity_and_type_checked() {
        let mut cat = Catalog::new();
        cat.add_table(frames()).unwrap();
        let bad = TableBuilder::new("bad")
            .col("id", DataType::Int)
            .col("fref", DataType::Float) // frames.frame_id is Int
            .pk(&["id"])
            .fk("fk_bad", &["fref"], "frames")
            .build()
            .unwrap();
        assert!(matches!(cat.add_table(bad), Err(DbError::InvalidSchema(_))));
    }

    #[test]
    fn topological_order_and_depths() {
        let mut cat = Catalog::new();
        cat.add_table(frames()).unwrap();
        cat.add_table(objects()).unwrap();
        let fingers = TableBuilder::new("fingers")
            .col("finger_id", DataType::Int)
            .col("object_id", DataType::Int)
            .pk(&["finger_id"])
            .fk("fk_fingers_object", &["object_id"], "objects")
            .build()
            .unwrap();
        cat.add_table(fingers).unwrap();
        let order = cat.topological_order();
        assert_eq!(order.len(), 3);
        assert_eq!(cat.fk_depths(), vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.add_table(frames()).unwrap();
        assert!(matches!(
            cat.add_table(frames()),
            Err(DbError::AlreadyExists(_))
        ));
    }

    #[test]
    fn row_width_hint_reasonable() {
        let t = frames();
        assert!(t.row_width_hint() >= 16);
    }
}
